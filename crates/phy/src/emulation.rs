//! The EmuBee cross-technology emulation attack (paper §II.A, Eqs. 1–2).
//!
//! A Wi-Fi transmitter cannot emit arbitrary waveforms: every 64-sample
//! window it sends is the IFFT of a spectrum whose 48 data bins must be
//! 64-QAM constellation points (pilots fixed, guard/DC nulled). Emulating
//! a ZigBee waveform therefore means, per window:
//!
//! 1. FFT the designed (ZigBee) window — the "inverse Wi-Fi PHY" of Fig. 1;
//! 2. quantize each data bin onto the 64-QAM grid;
//! 3. IFFT the quantized spectrum to get the waveform that the Wi-Fi radio
//!    will actually emit.
//!
//! The paper's contribution at this layer is to scale the QAM grid by a
//! real factor `α` before quantizing, choosing `α` to minimize the total
//! quantization error
//!
//! ```text
//! E(α) = Σⱼ minᵢ |α·Pᵢ − Pⱼ|²      (Eq. 1)
//! α*   = argmin E(α)               (Eq. 2)
//! ```
//!
//! `E` is convex in `α` (the paper shows `E'' > 0`), so a bracketing search
//! finds the global minimum; [`optimize_alpha`] runs in `O(M log M)`-style
//! iterations exactly as claimed.

use crate::complex::{energy, Complex64};
use crate::qam::Qam64;
use crate::wifi::ofdm::{OfdmModulator, DATA_SUBCARRIERS, FFT_SIZE};

/// Frequency-shifts a baseband waveform by `bins` OFDM subcarrier spacings
/// (312.5 kHz each at 20 Msps), i.e. multiplies sample `j` by
/// `e^{2πi·bins·j/64}`.
///
/// A real EmuBee attack synthesizes the victim's ZigBee channel at an
/// offset inside the 20 MHz Wi-Fi band (never at DC, which OFDM cannot
/// drive); shift the designed waveform up before [`Emulator::emulate`] and
/// shift the result back down to view it from the victim's perspective.
///
/// ```
/// use ctjam_phy::emulation::frequency_shift;
/// use ctjam_phy::Complex64;
///
/// let x = vec![Complex64::ONE; 4];
/// let up = frequency_shift(&x, 16); // quarter of the sample rate
/// let back = frequency_shift(&up, -16);
/// assert!((back[3] - x[3]).norm() < 1e-12);
/// ```
pub fn frequency_shift(samples: &[Complex64], bins: i32) -> Vec<Complex64> {
    let step = 2.0 * std::f64::consts::PI * f64::from(bins) / FFT_SIZE as f64;
    samples
        .iter()
        .enumerate()
        .map(|(j, &z)| z * Complex64::cis(step * j as f64))
        .collect()
}

/// Total quantization error `E(α)` of Eq. (1): for every target point the
/// squared distance to its nearest α-scaled 64-QAM point, summed.
///
/// ```
/// use ctjam_phy::emulation::quantization_error;
/// use ctjam_phy::qam::Qam64;
/// use ctjam_phy::Complex64;
///
/// let qam = Qam64::new();
/// // A target exactly on the (unscaled) grid has zero error at α = 1.
/// let targets = [qam.point(5), qam.point(60)];
/// assert!(quantization_error(&qam, &targets, 1.0) < 1e-24);
/// ```
pub fn quantization_error(qam: &Qam64, targets: &[Complex64], alpha: f64) -> f64 {
    targets
        .iter()
        .map(|&t| qam.nearest_scaled(t, alpha).1)
        .sum()
}

/// Result of the Eq. (2) optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaSolution {
    /// The minimizing scale factor `α*`.
    pub alpha: f64,
    /// The residual error `E(α*)`.
    pub error: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Finds the `α` minimizing [`quantization_error`] by golden-section search
/// over a bracket derived from the target magnitudes.
///
/// `E(α)` is convex (paper §II.A.1), so the search converges to the global
/// minimum. Each iteration costs one `O(M)` error evaluation with the
/// per-point nearest lookup in `O(1)`, matching the paper's
/// `O(M log M)` bound.
///
/// Returns `α = 1` with the corresponding error when `targets` is empty.
pub fn optimize_alpha(qam: &Qam64, targets: &[Complex64]) -> AlphaSolution {
    if targets.is_empty() {
        return AlphaSolution {
            alpha: 1.0,
            error: 0.0,
            evaluations: 0,
        };
    }
    // Bracket: α larger than max|t| / min|P| can only move every grid point
    // past every target, so the optimum lies below it.
    let max_target = targets.iter().map(|t| t.norm()).fold(0.0, f64::max);
    let min_point = qam
        .points()
        .iter()
        .map(|p| p.norm())
        .fold(f64::INFINITY, f64::min);
    let upper = (max_target / min_point).max(1.0) * 1.5 + 1e-9;

    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut evaluations = 0;
    let eval = |alpha: f64, evals: &mut usize| {
        *evals += 1;
        quantization_error(qam, targets, alpha)
    };

    // E(α) is convex in the paper's idealized analysis, but in practice
    // the inner `min` introduces kinks, so a single bracketing search can
    // stall in a shallow local dip. A grid scan locates candidate basins;
    // golden-section then refines every local minimum of the grid and the
    // best refined point wins.
    const GRID: usize = 128;
    let grid_err: Vec<f64> = (0..=GRID)
        .map(|i| eval(upper * i as f64 / GRID as f64, &mut evaluations))
        .collect();

    let mut best_alpha = 0.0;
    let mut best_err = f64::INFINITY;
    for i in 0..=GRID {
        let is_local_min = (i == 0 || grid_err[i] <= grid_err[i - 1])
            && (i == GRID || grid_err[i] <= grid_err[i + 1]);
        if !is_local_min {
            continue;
        }
        let mut lo = upper * i.saturating_sub(1) as f64 / GRID as f64;
        let mut hi = upper * (i + 1).min(GRID) as f64 / GRID as f64;
        let mut x1 = hi - (hi - lo) * INV_PHI;
        let mut x2 = lo + (hi - lo) * INV_PHI;
        let mut f1 = eval(x1, &mut evaluations);
        let mut f2 = eval(x2, &mut evaluations);
        for _ in 0..80 {
            if hi - lo < 1e-10 {
                break;
            }
            if f1 <= f2 {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - (hi - lo) * INV_PHI;
                f1 = eval(x1, &mut evaluations);
            } else {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + (hi - lo) * INV_PHI;
                f2 = eval(x2, &mut evaluations);
            }
        }
        let candidate = 0.5 * (lo + hi);
        let cand_err = eval(candidate, &mut evaluations);
        // The refined point can only improve on the grid sample; keep
        // whichever of the two is better for this basin.
        let (a, e) = if cand_err <= grid_err[i] {
            (candidate, cand_err)
        } else {
            (upper * i as f64 / GRID as f64, grid_err[i])
        };
        if e < best_err {
            best_err = e;
            best_alpha = a;
        }
    }
    AlphaSolution {
        alpha: best_alpha,
        error: best_err,
        evaluations,
    }
}

/// Configuration of the emulation pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmulationConfig {
    /// Optimize the QAM scale per Eq. (2). When `false`, quantization uses
    /// the fixed `α` in [`EmulationConfig::fixed_alpha`] — the "existing
    /// designs" baseline the paper improves upon.
    pub optimize_alpha: bool,
    /// Scale factor used when `optimize_alpha` is `false`.
    pub fixed_alpha: f64,
    /// Constrain the spectrum to the Wi-Fi transmitter's degrees of
    /// freedom (guard/DC nulled, pilots fixed). Disabling this gives the
    /// idealized all-64-bins quantizer, useful for isolating the α gain.
    pub respect_ofdm_mask: bool,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            optimize_alpha: true,
            fixed_alpha: 1.0,
            respect_ofdm_mask: true,
        }
    }
}

/// Outcome of emulating a target waveform.
#[derive(Debug, Clone)]
pub struct EmulationReport {
    emulated: Vec<Complex64>,
    alpha_per_window: Vec<f64>,
    quantization_error: f64,
    target_energy: f64,
}

impl EmulationReport {
    /// The waveform the Wi-Fi transmitter will emit.
    pub fn emulated(&self) -> &[Complex64] {
        &self.emulated
    }

    /// Consumes the report, returning the emitted waveform.
    pub fn into_emulated(self) -> Vec<Complex64> {
        self.emulated
    }

    /// The optimal `α` chosen for each 64-sample window.
    pub fn alpha_per_window(&self) -> &[f64] {
        &self.alpha_per_window
    }

    /// Total spectral quantization error across all windows.
    pub fn quantization_error(&self) -> f64 {
        self.quantization_error
    }

    /// Error-vector magnitude: RMS emulation error relative to RMS target
    /// amplitude. Lower is a more faithful emulation.
    pub fn evm(&self) -> f64 {
        if self.target_energy == 0.0 {
            return 0.0;
        }
        // Parseval: spectral squared error / FFT size = time-domain energy.
        let time_error = self.quantization_error / FFT_SIZE as f64;
        (time_error / self.target_energy).sqrt()
    }
}

/// The EmuBee emulator: drives a Wi-Fi OFDM front end to reproduce an
/// arbitrary target waveform.
///
/// # Example
///
/// ```
/// use ctjam_phy::emulation::{Emulator, EmulationConfig};
/// use ctjam_phy::zigbee::oqpsk::OqpskModulator;
///
/// let target = OqpskModulator::with_oversampling(10).modulate_symbols(&[0x7, 0x2]);
/// let optimized = Emulator::new(EmulationConfig::default()).emulate(&target);
/// let naive = Emulator::new(EmulationConfig {
///     optimize_alpha: false,
///     ..EmulationConfig::default()
/// })
/// .emulate(&target);
/// assert!(optimized.evm() <= naive.evm() + 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Emulator {
    config: EmulationConfig,
    qam: Qam64,
    ofdm: OfdmModulator,
}

impl Emulator {
    /// Creates an emulator with the given configuration.
    pub fn new(config: EmulationConfig) -> Self {
        Emulator {
            config,
            qam: Qam64::new(),
            ofdm: OfdmModulator::with_cyclic_prefix(false),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EmulationConfig {
        &self.config
    }

    /// Emulates `target` (complex baseband at 20 Msps), returning the
    /// waveform the Wi-Fi radio will actually transmit plus fidelity
    /// metrics. The target is processed in 64-sample windows; a trailing
    /// partial window is zero-padded.
    pub fn emulate(&self, target: &[Complex64]) -> EmulationReport {
        let mut emulated = Vec::with_capacity(target.len());
        let mut alphas = Vec::new();
        let mut total_error = 0.0;

        for window_start in (0..target.len()).step_by(FFT_SIZE) {
            let mut window = [Complex64::ZERO; FFT_SIZE];
            let end = (window_start + FFT_SIZE).min(target.len());
            window[..end - window_start].copy_from_slice(&target[window_start..end]);

            let spectrum = self.ofdm.analyze_window(&window);
            let (quantized, alpha, err) = self.quantize_spectrum(&spectrum);
            total_error += err;
            alphas.push(alpha);

            let time = self.ofdm.synthesize_window(&quantized);
            let keep = end - window_start;
            emulated.extend_from_slice(&time[..keep]);
        }

        EmulationReport {
            emulated,
            alpha_per_window: alphas,
            quantization_error: total_error,
            target_energy: energy(target),
        }
    }

    /// Quantizes one 64-bin spectrum onto the transmitter's constraint
    /// set, returning `(spectrum, α, error)`.
    #[allow(clippy::needless_range_loop)] // bin indexes two parallel arrays
    fn quantize_spectrum(&self, spectrum: &[Complex64]) -> (Vec<Complex64>, f64, f64) {
        let drivable: Vec<usize> = if self.config.respect_ofdm_mask {
            self.ofdm.data_bins().to_vec()
        } else {
            (0..FFT_SIZE).collect()
        };

        let targets: Vec<Complex64> = drivable.iter().map(|&b| spectrum[b]).collect();
        let alpha = if self.config.optimize_alpha {
            optimize_alpha(&self.qam, &targets).alpha
        } else {
            self.config.fixed_alpha
        };

        let mut quantized = vec![Complex64::ZERO; FFT_SIZE];
        let mut error = 0.0;
        for &bin in &drivable {
            let (idx, d) = self.qam.nearest_scaled(spectrum[bin], alpha);
            quantized[bin] = self.qam.point(idx).scale(alpha);
            error += d;
        }
        // Undrivable bins are forced to zero; their target energy is
        // unavoidable error.
        if self.config.respect_ofdm_mask {
            for bin in 0..FFT_SIZE {
                if !drivable.contains(&bin) {
                    error += spectrum[bin].norm_sqr();
                }
            }
        }
        (quantized, alpha, error)
    }

    /// Number of data subcarriers the emulation can drive per window.
    pub fn degrees_of_freedom(&self) -> usize {
        if self.config.respect_ofdm_mask {
            DATA_SUBCARRIERS
        } else {
            FFT_SIZE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zigbee::oqpsk::OqpskModulator;

    fn zigbee_waveform() -> Vec<Complex64> {
        OqpskModulator::with_oversampling(10).modulate_symbols(&[0x3, 0xA, 0x5, 0xC])
    }

    #[test]
    fn optimal_alpha_beats_fixed_alpha() {
        let target = zigbee_waveform();
        let optimized = Emulator::new(EmulationConfig::default()).emulate(&target);
        let fixed = Emulator::new(EmulationConfig {
            optimize_alpha: false,
            fixed_alpha: 1.0,
            respect_ofdm_mask: true,
        })
        .emulate(&target);
        assert!(
            optimized.quantization_error() < fixed.quantization_error(),
            "optimized {} !< fixed {}",
            optimized.quantization_error(),
            fixed.quantization_error()
        );
    }

    #[test]
    fn alpha_is_exact_for_on_grid_targets() {
        let qam = Qam64::new();
        let scale = 2.7;
        let targets: Vec<Complex64> = (0..32).map(|i| qam.point(i * 2).scale(scale)).collect();
        let sol = optimize_alpha(&qam, &targets);
        assert!((sol.alpha - scale).abs() < 1e-4, "alpha={}", sol.alpha);
        assert!(sol.error < 1e-7);
    }

    #[test]
    fn alpha_for_empty_input() {
        let sol = optimize_alpha(&Qam64::new(), &[]);
        assert_eq!(sol.alpha, 1.0);
        assert_eq!(sol.error, 0.0);
    }

    #[test]
    fn error_function_is_convexish_around_optimum() {
        let target = zigbee_waveform();
        let qam = Qam64::new();
        let spectrum = OfdmModulator::with_cyclic_prefix(false).analyze_window(&target[..64]);
        let sol = optimize_alpha(&qam, &spectrum);
        for delta in [0.05, 0.1, 0.3] {
            assert!(quantization_error(&qam, &spectrum, sol.alpha + delta) >= sol.error - 1e-9);
            let below = (sol.alpha - delta).max(1e-6);
            assert!(quantization_error(&qam, &spectrum, below) >= sol.error - 1e-9);
        }
    }

    #[test]
    fn emulated_length_matches_target() {
        let target = zigbee_waveform();
        let report = Emulator::new(EmulationConfig::default()).emulate(&target);
        assert_eq!(report.emulated().len(), target.len());
        assert_eq!(
            report.alpha_per_window().len(),
            target.len().div_ceil(FFT_SIZE)
        );
    }

    #[test]
    fn unmasked_emulation_is_more_faithful() {
        let target = zigbee_waveform();
        let masked = Emulator::new(EmulationConfig::default()).emulate(&target);
        let unmasked = Emulator::new(EmulationConfig {
            respect_ofdm_mask: false,
            ..EmulationConfig::default()
        })
        .emulate(&target);
        assert!(unmasked.evm() <= masked.evm() + 1e-12);
    }

    #[test]
    fn emulated_waveform_still_decodes_as_zigbee() {
        // The whole point of EmuBee: after the Wi-Fi constraint set, the
        // victim's O-QPSK receiver still recovers the designed symbols.
        // The attack places the ZigBee channel at a +5 MHz offset (bin 16)
        // inside the Wi-Fi band, since OFDM cannot drive DC.
        let modulator = OqpskModulator::with_oversampling(10);
        let symbols = vec![0x3, 0xA, 0x5, 0xC, 0x0, 0xF, 0x8, 0x1];
        let designed = modulator.modulate_symbols(&symbols);
        let target = frequency_shift(&designed, 16);
        let report = Emulator::new(EmulationConfig::default()).emulate(&target);
        let victim_view = frequency_shift(report.emulated(), -16);
        let decoded = modulator.demodulate(&victim_view);
        assert_eq!(decoded, symbols, "EmuBee must decode as the designed chips");
    }

    #[test]
    fn frequency_shift_roundtrip() {
        let x = zigbee_waveform();
        let back = frequency_shift(&frequency_shift(&x, 12), -12);
        for (a, b) in back.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn evm_zero_for_zero_target() {
        let report = Emulator::new(EmulationConfig::default()).emulate(&[]);
        assert_eq!(report.evm(), 0.0);
    }

    #[test]
    fn degrees_of_freedom() {
        assert_eq!(
            Emulator::new(EmulationConfig::default()).degrees_of_freedom(),
            48
        );
        assert_eq!(
            Emulator::new(EmulationConfig {
                respect_ofdm_mask: false,
                ..EmulationConfig::default()
            })
            .degrees_of_freedom(),
            64
        );
    }
}
