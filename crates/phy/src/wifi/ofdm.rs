//! The 802.11a/g OFDM symbol chain (64-point IFFT, 48 data subcarriers,
//! cyclic prefix).
//!
//! The emulation attack constrains which subcarriers a Wi-Fi transmitter
//! can actually drive: only the 48 data subcarriers accept arbitrary QAM
//! points, the 4 pilots are fixed, and the 11 guard bins plus DC are null.
//! [`OfdmModulator`] models exactly that constraint set.

use crate::complex::Complex64;
use crate::fft::Fft;

/// FFT size of the 20 MHz OFDM PHY.
pub const FFT_SIZE: usize = 64;

/// Number of data subcarriers per OFDM symbol.
pub const DATA_SUBCARRIERS: usize = 48;

/// Number of pilot subcarriers per OFDM symbol.
pub const PILOT_SUBCARRIERS: usize = 4;

/// Cyclic-prefix length in samples (800 ns at 20 MHz).
pub const CP_LEN: usize = 16;

/// Logical subcarrier indices (−26..=26 excluding 0 and pilots) used for
/// data, in increasing frequency order.
pub fn data_subcarrier_indices() -> Vec<i32> {
    let pilots = [-21, -7, 7, 21];
    (-26..=26)
        .filter(|&k| k != 0 && !pilots.contains(&k))
        .collect()
}

/// Pilot subcarrier logical indices.
pub const PILOT_INDICES: [i32; PILOT_SUBCARRIERS] = [-21, -7, 7, 21];

/// Converts a logical subcarrier index (−32..32) to its FFT bin (0..64).
pub fn logical_to_bin(k: i32) -> usize {
    ((k + FFT_SIZE as i32) % FFT_SIZE as i32) as usize
}

/// Error for payload slices of the wrong length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolLenError {
    got: usize,
}

impl std::fmt::Display for SymbolLenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ofdm symbol needs exactly {DATA_SUBCARRIERS} data points, got {}",
            self.got
        )
    }
}

impl std::error::Error for SymbolLenError {}

/// OFDM modulator/demodulator over 64 subcarriers with cyclic prefix.
///
/// # Example
///
/// ```
/// use ctjam_phy::wifi::ofdm::{OfdmModulator, DATA_SUBCARRIERS};
/// use ctjam_phy::Complex64;
///
/// let ofdm = OfdmModulator::new();
/// let data = vec![Complex64::new(0.5, -0.5); DATA_SUBCARRIERS];
/// let samples = ofdm.modulate(&data)?;
/// let recovered = ofdm.demodulate(&samples)?;
/// assert!((recovered[0] - data[0]).norm() < 1e-9);
/// # Ok::<(), ctjam_phy::wifi::ofdm::SymbolLenError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OfdmModulator {
    fft: Fft,
    data_bins: Vec<usize>,
    pilot_bins: [usize; PILOT_SUBCARRIERS],
    cyclic_prefix: bool,
}

impl Default for OfdmModulator {
    fn default() -> Self {
        Self::new()
    }
}

impl OfdmModulator {
    /// Creates the standard 64-point modulator with cyclic prefix enabled.
    pub fn new() -> Self {
        Self::with_cyclic_prefix(true)
    }

    /// Creates a modulator, optionally omitting the cyclic prefix (the
    /// emulation path drops it since the jammer controls its own timing).
    pub fn with_cyclic_prefix(cyclic_prefix: bool) -> Self {
        let fft = Fft::new(FFT_SIZE).expect("64 is a power of two");
        let data_bins = data_subcarrier_indices()
            .into_iter()
            .map(logical_to_bin)
            .collect();
        let pilot_bins = [
            logical_to_bin(PILOT_INDICES[0]),
            logical_to_bin(PILOT_INDICES[1]),
            logical_to_bin(PILOT_INDICES[2]),
            logical_to_bin(PILOT_INDICES[3]),
        ];
        OfdmModulator {
            fft,
            data_bins,
            pilot_bins,
            cyclic_prefix,
        }
    }

    /// Samples produced per OFDM symbol.
    pub fn samples_per_symbol(&self) -> usize {
        if self.cyclic_prefix {
            FFT_SIZE + CP_LEN
        } else {
            FFT_SIZE
        }
    }

    /// FFT bins carrying data, in logical frequency order.
    pub fn data_bins(&self) -> &[usize] {
        &self.data_bins
    }

    /// Builds one OFDM symbol from 48 data-subcarrier values.
    ///
    /// Pilots are driven with the standard BPSK `+1,+1,+1,−1` pattern and
    /// guard/DC bins are nulled.
    ///
    /// # Errors
    ///
    /// Returns [`SymbolLenError`] unless exactly 48 points are supplied.
    pub fn modulate(&self, data: &[Complex64]) -> Result<Vec<Complex64>, SymbolLenError> {
        if data.len() != DATA_SUBCARRIERS {
            return Err(SymbolLenError { got: data.len() });
        }
        let mut freq = vec![Complex64::ZERO; FFT_SIZE];
        for (&bin, &value) in self.data_bins.iter().zip(data) {
            freq[bin] = value;
        }
        let pilot_values = [1.0, 1.0, 1.0, -1.0];
        for (&bin, &p) in self.pilot_bins.iter().zip(&pilot_values) {
            freq[bin] = Complex64::new(p, 0.0);
        }
        self.fft.inverse(&mut freq).expect("length fixed at 64");
        if self.cyclic_prefix {
            let mut out = Vec::with_capacity(FFT_SIZE + CP_LEN);
            out.extend_from_slice(&freq[FFT_SIZE - CP_LEN..]);
            out.extend_from_slice(&freq);
            Ok(out)
        } else {
            Ok(freq)
        }
    }

    /// Recovers the 48 data-subcarrier values from one symbol's samples.
    ///
    /// # Errors
    ///
    /// Returns [`SymbolLenError`] when the sample count does not match
    /// [`OfdmModulator::samples_per_symbol`].
    pub fn demodulate(&self, samples: &[Complex64]) -> Result<Vec<Complex64>, SymbolLenError> {
        if samples.len() != self.samples_per_symbol() {
            return Err(SymbolLenError { got: samples.len() });
        }
        let body = if self.cyclic_prefix {
            &samples[CP_LEN..]
        } else {
            samples
        };
        let mut freq = body.to_vec();
        self.fft.forward(&mut freq).expect("length fixed at 64");
        Ok(self.data_bins.iter().map(|&b| freq[b]).collect())
    }

    /// Transforms arbitrary 64 time-domain samples to the frequency domain
    /// (the first step of the emulation's inverse path).
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != 64`.
    pub fn analyze_window(&self, window: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(window.len(), FFT_SIZE, "analysis window must be 64 samples");
        let mut freq = window.to_vec();
        self.fft.forward(&mut freq).expect("length fixed at 64");
        freq
    }

    /// Synthesizes 64 time-domain samples from a full 64-bin spectrum
    /// (the last step of the emulation's inverse path).
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != 64`.
    pub fn synthesize_window(&self, spectrum: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(spectrum.len(), FFT_SIZE, "spectrum must have 64 bins");
        let mut time = spectrum.to_vec();
        self.fft.inverse(&mut time).expect("length fixed at 64");
        time
    }

    /// Returns `true` when `bin` is a data bin the transmitter can drive
    /// with an arbitrary constellation point.
    pub fn is_data_bin(&self, bin: usize) -> bool {
        self.data_bins.contains(&bin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_eight_data_subcarriers() {
        assert_eq!(data_subcarrier_indices().len(), DATA_SUBCARRIERS);
    }

    #[test]
    fn pilots_and_data_disjoint() {
        let data = data_subcarrier_indices();
        for p in PILOT_INDICES {
            assert!(!data.contains(&p));
        }
    }

    #[test]
    fn logical_bin_mapping() {
        assert_eq!(logical_to_bin(0), 0);
        assert_eq!(logical_to_bin(1), 1);
        assert_eq!(logical_to_bin(26), 26);
        assert_eq!(logical_to_bin(-1), 63);
        assert_eq!(logical_to_bin(-26), 38);
    }

    #[test]
    fn modulate_demodulate_roundtrip() {
        let ofdm = OfdmModulator::new();
        let data: Vec<Complex64> = (0..DATA_SUBCARRIERS)
            .map(|i| Complex64::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let samples = ofdm.modulate(&data).unwrap();
        assert_eq!(samples.len(), FFT_SIZE + CP_LEN);
        let recovered = ofdm.demodulate(&samples).unwrap();
        for (a, b) in recovered.iter().zip(&data) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn cyclic_prefix_repeats_tail() {
        let ofdm = OfdmModulator::new();
        let data = vec![Complex64::new(1.0, 0.0); DATA_SUBCARRIERS];
        let samples = ofdm.modulate(&data).unwrap();
        for i in 0..CP_LEN {
            assert_eq!(samples[i], samples[FFT_SIZE + i]);
        }
    }

    #[test]
    fn no_cp_variant_is_plain_ifft_window() {
        let ofdm = OfdmModulator::with_cyclic_prefix(false);
        let data = vec![Complex64::new(0.0, 1.0); DATA_SUBCARRIERS];
        let samples = ofdm.modulate(&data).unwrap();
        assert_eq!(samples.len(), FFT_SIZE);
        let rec = ofdm.demodulate(&samples).unwrap();
        for (a, b) in rec.iter().zip(&data) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let ofdm = OfdmModulator::new();
        assert!(ofdm.modulate(&[Complex64::ZERO; 47]).is_err());
        assert!(ofdm.demodulate(&[Complex64::ZERO; 10]).is_err());
    }

    #[test]
    fn analyze_synthesize_roundtrip() {
        let ofdm = OfdmModulator::with_cyclic_prefix(false);
        let window: Vec<Complex64> = (0..FFT_SIZE)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let spectrum = ofdm.analyze_window(&window);
        let back = ofdm.synthesize_window(&spectrum);
        for (a, b) in back.iter().zip(&window) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn data_bin_membership() {
        let ofdm = OfdmModulator::new();
        assert!(ofdm.is_data_bin(logical_to_bin(1)));
        assert!(!ofdm.is_data_bin(logical_to_bin(0))); // DC
        assert!(!ofdm.is_data_bin(logical_to_bin(7))); // pilot
        assert!(!ofdm.is_data_bin(logical_to_bin(30))); // guard
    }
}
