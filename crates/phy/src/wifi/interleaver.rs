//! The 802.11 block interleaver for 64-QAM OFDM symbols (and the
//! "Deinterleaving" box of the paper's Fig. 1 inverse chain).
//!
//! Each OFDM symbol carries `N_CBPS = 288` coded bits (48 data
//! subcarriers × 6 bits). The standard's two-permutation interleaver
//! spreads adjacent coded bits across subcarriers (first permutation) and
//! across constellation bit significance (second permutation).

/// Coded bits per 64-QAM OFDM symbol: 48 subcarriers × 6 bits.
pub const N_CBPS: usize = 288;

/// Coded bits per subcarrier for 64-QAM.
pub const N_BPSC: usize = 6;

/// `s = max(N_BPSC / 2, 1)` from the standard.
const S: usize = N_BPSC / 2;

/// Computes the interleaver's output position for input index `k`.
fn permute(k: usize) -> usize {
    // First permutation: write row-wise into 16 columns.
    let i = (N_CBPS / 16) * (k % 16) + k / 16;
    // Second permutation: rotate within groups of `s`.
    S * (i / S) + (i + N_CBPS - (16 * i) / N_CBPS) % S
}

/// The interleaver's output position for input (coded-bit) index `k` —
/// exposed so soft-metric consumers can route per-bit costs without
/// materializing bit vectors.
///
/// # Panics
///
/// Panics if `k >= N_CBPS`.
pub fn output_position(k: usize) -> usize {
    assert!(k < N_CBPS, "interleaver index out of range");
    permute(k)
}

/// Interleaves one OFDM symbol's worth of coded bits.
///
/// # Panics
///
/// Panics unless exactly [`N_CBPS`] bits are supplied.
///
/// ```
/// use ctjam_phy::wifi::interleaver::{deinterleave, interleave, N_CBPS};
///
/// let bits: Vec<u8> = (0..N_CBPS).map(|i| (i % 2) as u8).collect();
/// assert_eq!(deinterleave(&interleave(&bits)), bits);
/// ```
pub fn interleave(bits: &[u8]) -> Vec<u8> {
    assert_eq!(
        bits.len(),
        N_CBPS,
        "interleaver works on {N_CBPS}-bit symbols"
    );
    let mut out = vec![0u8; N_CBPS];
    for (k, &b) in bits.iter().enumerate() {
        out[permute(k)] = b;
    }
    out
}

/// Inverts [`interleave`].
///
/// # Panics
///
/// Panics unless exactly [`N_CBPS`] bits are supplied.
pub fn deinterleave(bits: &[u8]) -> Vec<u8> {
    assert_eq!(
        bits.len(),
        N_CBPS,
        "deinterleaver works on {N_CBPS}-bit symbols"
    );
    let mut out = vec![0u8; N_CBPS];
    for (k, slot) in out.iter_mut().enumerate() {
        *slot = bits[permute(k)];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_bijection() {
        let mut seen = [false; N_CBPS];
        for k in 0..N_CBPS {
            let p = permute(k);
            assert!(p < N_CBPS);
            assert!(!seen[p], "collision at {p}");
            seen[p] = true;
        }
    }

    #[test]
    fn roundtrip() {
        let bits: Vec<u8> = (0..N_CBPS).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        assert_eq!(deinterleave(&interleave(&bits)), bits);
        assert_eq!(interleave(&deinterleave(&bits)), bits);
    }

    #[test]
    fn interleaving_actually_moves_bits() {
        let mut bits = vec![0u8; N_CBPS];
        bits[0] = 1;
        bits[1] = 1;
        let inter = interleave(&bits);
        // The two adjacent ones must land far apart (different columns).
        let positions: Vec<usize> = inter
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == 1)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 2);
        assert!(
            positions[1].abs_diff(positions[0]) >= N_CBPS / 16 - S,
            "adjacent bits not spread: {positions:?}"
        );
    }

    #[test]
    fn burst_errors_become_scattered() {
        // The interleaver's whole point: a burst in the channel turns
        // into isolated errors after deinterleaving, which Viterbi fixes.
        let bits: Vec<u8> = (0..N_CBPS).map(|i| (i % 2) as u8).collect();
        let mut on_air = interleave(&bits);
        for bit in on_air.iter_mut().skip(100).take(6) {
            *bit ^= 1; // 6-bit channel burst
        }
        let received = deinterleave(&on_air);
        // Find the error positions relative to the original bits.
        let errors: Vec<usize> = received
            .iter()
            .zip(&bits)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(errors.len(), 6);
        for pair in errors.windows(2) {
            assert!(pair[1] - pair[0] > 2, "errors still adjacent: {errors:?}");
        }
    }

    #[test]
    #[should_panic]
    fn wrong_length_rejected() {
        interleave(&[0u8; 10]);
    }
}
