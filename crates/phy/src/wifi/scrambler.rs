//! The 802.11 data scrambler (and, run backwards, the *descrambler* of
//! the paper's Fig. 1 inverse chain).
//!
//! A 7-bit LFSR with polynomial `x⁷ + x⁴ + 1` generates a 127-bit
//! pseudo-random sequence that is XORed onto the data bits. Scrambling is
//! an involution: applying it twice with the same seed restores the
//! input, which is exactly how the emulation's inverse path recovers the
//! bits a Wi-Fi NIC must be fed.

/// The 802.11 scrambler.
///
/// # Example
///
/// ```
/// use ctjam_phy::wifi::scrambler::Scrambler;
///
/// let bits = vec![1, 0, 1, 1, 0, 0, 1, 0];
/// let scrambled = Scrambler::new(0x5D).scramble(&bits);
/// let restored = Scrambler::new(0x5D).scramble(&scrambled);
/// assert_eq!(restored, bits);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scrambler {
    state: u8,
}

impl Scrambler {
    /// Creates a scrambler with a 7-bit seed.
    ///
    /// # Panics
    ///
    /// Panics if `seed` is zero or wider than 7 bits (an all-zero LFSR
    /// never leaves the zero state).
    pub fn new(seed: u8) -> Self {
        assert!(seed != 0, "scrambler seed must be nonzero");
        assert!(seed < 0x80, "scrambler seed is 7 bits");
        Scrambler { state: seed }
    }

    /// Produces the next pseudo-random bit and advances the LFSR.
    pub fn next_bit(&mut self) -> u8 {
        // Feedback = x7 XOR x4 (bits 6 and 3 of the state).
        let feedback = ((self.state >> 6) ^ (self.state >> 3)) & 1;
        self.state = ((self.state << 1) | feedback) & 0x7F;
        feedback
    }

    /// Scrambles (or descrambles — the operation is an involution) a bit
    /// slice, consuming this scrambler's sequence.
    pub fn scramble(mut self, bits: &[u8]) -> Vec<u8> {
        bits.iter().map(|&b| b ^ self.next_bit()).collect()
    }

    /// The LFSR period (the sequence repeats after this many bits).
    pub const PERIOD: usize = 127;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let bits: Vec<u8> = (0..300).map(|i| (i % 3 == 0) as u8).collect();
        for seed in [0x01, 0x5D, 0x7F] {
            let once = Scrambler::new(seed).scramble(&bits);
            let twice = Scrambler::new(seed).scramble(&once);
            assert_eq!(twice, bits, "seed {seed:#04x}");
            assert_ne!(once, bits, "scrambling must change something");
        }
    }

    #[test]
    fn sequence_has_full_period() {
        let mut s = Scrambler::new(0x7F);
        let first: Vec<u8> = (0..Scrambler::PERIOD).map(|_| s.next_bit()).collect();
        let second: Vec<u8> = (0..Scrambler::PERIOD).map(|_| s.next_bit()).collect();
        assert_eq!(first, second, "sequence must repeat with period 127");
        // And it is balanced: 64 ones, 63 zeros per period (m-sequence).
        let ones: u32 = first.iter().map(|&b| u32::from(b)).sum();
        assert_eq!(ones, 64);
    }

    #[test]
    fn different_seeds_differ() {
        let bits = vec![0u8; 64];
        let a = Scrambler::new(0x01).scramble(&bits);
        let b = Scrambler::new(0x5D).scramble(&bits);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_seed_rejected() {
        Scrambler::new(0);
    }
}
