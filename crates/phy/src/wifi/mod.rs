//! IEEE 802.11 (Wi-Fi) OFDM PHY pieces needed by the emulation attack.
//!
//! The full Fig. 1 chain: [`scrambler`], rate-1/2 [`convolutional`]
//! coding with Viterbi decoding, the 288-bit [`interleaver`], the
//! 64-subcarrier [`ofdm`] symbol chain, and [`txchain`] tying them all
//! together forwards (what a NIC does to a payload) and backwards (what
//! the jammer does to a designed waveform to recover the payload *bits*
//! it must inject). The symbol-level emulation shortcut — quantizing a
//! spectrum straight onto the constellation — lives in
//! [`crate::emulation`].

pub mod convolutional;
pub mod interleaver;
pub mod ofdm;
pub mod scrambler;
pub mod txchain;

/// Wi-Fi channel bandwidth in Hz (20 MHz).
pub const CHANNEL_BANDWIDTH_HZ: f64 = 20.0e6;

/// OFDM sample rate (equals the channel bandwidth for 802.11a/g).
pub const SAMPLE_RATE: f64 = 20.0e6;

/// Number of ZigBee channels fully covered by one Wi-Fi channel.
///
/// A 20 MHz Wi-Fi channel overlaps four 5 MHz-spaced ZigBee channels —
/// the paper's "jam up to 4 consecutive ZigBee channels at a time".
pub const ZIGBEE_CHANNELS_COVERED: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ratio_is_ten() {
        assert_eq!(
            CHANNEL_BANDWIDTH_HZ / crate::zigbee::CHANNEL_BANDWIDTH_HZ,
            10.0
        );
    }

    #[test]
    fn coverage_matches_spectral_overlap() {
        // 20 MHz span / 5 MHz ZigBee grid = 4 channels.
        assert_eq!(ZIGBEE_CHANNELS_COVERED, 4);
    }
}
