//! The 802.11 rate-1/2 convolutional code (K = 7, generators 133/171
//! octal) and a hard-decision Viterbi decoder — the "Conv. Decoding" box
//! of the paper's Fig. 1 inverse chain.

/// Constraint length of the code.
pub const CONSTRAINT: usize = 7;

/// Number of trellis states (2^(K−1)).
pub const STATES: usize = 64;

/// Generator polynomial A (octal 133).
pub const GEN_A: u8 = 0o133;

/// Generator polynomial B (octal 171).
pub const GEN_B: u8 = 0o171;

#[inline]
fn parity(x: u8) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Encodes a bit slice at rate 1/2, appending `K − 1` zero tail bits to
/// terminate the trellis. Output length is `2·(bits.len() + 6)`.
///
/// # Example
///
/// ```
/// use ctjam_phy::wifi::convolutional::{encode, viterbi_decode};
///
/// let data = vec![1, 0, 1, 1, 0, 0, 1, 0, 1, 1];
/// let coded = encode(&data);
/// assert_eq!(coded.len(), 2 * (data.len() + 6));
/// assert_eq!(viterbi_decode(&coded), data);
/// ```
pub fn encode(bits: &[u8]) -> Vec<u8> {
    let mut state: u8 = 0;
    let mut out = Vec::with_capacity(2 * (bits.len() + CONSTRAINT - 1));
    for &bit in bits.iter().chain(std::iter::repeat_n(&0u8, CONSTRAINT - 1)) {
        debug_assert!(bit <= 1, "bits must be 0/1");
        let register = (bit << 6) | state;
        out.push(parity(register & GEN_A));
        out.push(parity(register & GEN_B));
        state = register >> 1;
    }
    out
}

/// Hard-decision Viterbi decoding of [`encode`] output (tail-terminated).
///
/// Returns the information bits (tail stripped). Corrects up to
/// `⌊(d_free − 1)/2⌋ = 4` channel bit errors in any short window
/// (the code's free distance is 10).
///
/// # Panics
///
/// Panics if `coded.len()` is odd or shorter than the tail.
#[allow(clippy::needless_range_loop)] // trellis state index drives arithmetic
pub fn viterbi_decode(coded: &[u8]) -> Vec<u8> {
    assert!(
        coded.len().is_multiple_of(2),
        "rate-1/2 stream must have even length"
    );
    let steps = coded.len() / 2;
    assert!(
        steps >= CONSTRAINT - 1,
        "coded stream shorter than the terminating tail"
    );

    const INF: u32 = u32::MAX / 2;
    let mut metric = [INF; STATES];
    metric[0] = 0;
    // survivors[t][s] = (previous state, input bit) for best path into s.
    let mut survivors: Vec<[(u8, u8); STATES]> = Vec::with_capacity(steps);

    // Precompute per-(state, input) outputs.
    let mut outputs = [[0u8; 2]; STATES * 2];
    for state in 0..STATES as u8 {
        for input in 0..2u8 {
            let register = (input << 6) | state;
            outputs[state as usize * 2 + input as usize] =
                [parity(register & GEN_A) * 2 + parity(register & GEN_B), 0];
        }
    }

    for t in 0..steps {
        let observed = coded[2 * t] * 2 + coded[2 * t + 1];
        let mut next = [INF; STATES];
        let mut surv = [(0u8, 0u8); STATES];
        for state in 0..STATES {
            if metric[state] >= INF {
                continue;
            }
            for input in 0..2u8 {
                let register = ((input as usize) << 6) | state;
                let out_pair = outputs[state * 2 + input as usize][0];
                let hamming = (out_pair ^ observed).count_ones();
                let to = register >> 1;
                let candidate = metric[state] + hamming;
                if candidate < next[to] {
                    next[to] = candidate;
                    surv[to] = (state as u8, input);
                }
            }
        }
        metric = next;
        survivors.push(surv);
    }

    // Tail termination: the path ends in state 0.
    let mut state = 0usize;
    let mut decoded = vec![0u8; steps];
    for t in (0..steps).rev() {
        let (prev, input) = survivors[t][state];
        decoded[t] = input;
        state = prev as usize;
    }
    decoded.truncate(steps - (CONSTRAINT - 1));
    decoded
}

/// Soft-decision Viterbi: instead of Hamming distance against received
/// bits, each coded bit position carries a pair of *costs*
/// `(cost_of_sending_0, cost_of_sending_1)`, and the decoder finds the
/// codeword minimizing the total cost.
///
/// This is how the optimal emulation attacker chooses its payload: the
/// costs are per-bit quantization errors against the designed waveform
/// (BICM metrics), and the minimum-cost codeword is the closest waveform
/// a real (coded) Wi-Fi NIC can emit.
///
/// Returns the information bits (tail stripped).
///
/// # Panics
///
/// Panics if `costs.len()` is odd or shorter than the terminating tail.
#[allow(clippy::needless_range_loop)] // trellis state index drives arithmetic
pub fn viterbi_decode_soft(costs: &[(f64, f64)]) -> Vec<u8> {
    assert!(
        costs.len().is_multiple_of(2),
        "rate-1/2 stream must have even length"
    );
    let steps = costs.len() / 2;
    assert!(
        steps >= CONSTRAINT - 1,
        "coded stream shorter than the terminating tail"
    );

    const INF: f64 = f64::INFINITY;
    let mut metric = [INF; STATES];
    metric[0] = 0.0;
    let mut survivors: Vec<[(u8, u8); STATES]> = Vec::with_capacity(steps);

    for t in 0..steps {
        let (a_costs, b_costs) = (costs[2 * t], costs[2 * t + 1]);
        let mut next = [INF; STATES];
        let mut surv = [(0u8, 0u8); STATES];
        for state in 0..STATES {
            if !metric[state].is_finite() {
                continue;
            }
            for input in 0..2u8 {
                let register = ((input as usize) << 6) | state;
                let out_a = parity(register as u8 & GEN_A);
                let out_b = parity(register as u8 & GEN_B);
                let branch = if out_a == 0 { a_costs.0 } else { a_costs.1 }
                    + if out_b == 0 { b_costs.0 } else { b_costs.1 };
                let to = register >> 1;
                let candidate = metric[state] + branch;
                if candidate < next[to] {
                    next[to] = candidate;
                    surv[to] = (state as u8, input);
                }
            }
        }
        metric = next;
        survivors.push(surv);
    }

    let mut state = 0usize;
    let mut decoded = vec![0u8; steps];
    for t in (0..steps).rev() {
        let (prev, input) = survivors[t][state];
        decoded[t] = input;
        state = prev as usize;
    }
    decoded.truncate(steps - (CONSTRAINT - 1));
    decoded
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 62) & 1) as u8
            })
            .collect()
    }

    #[test]
    fn clean_roundtrip() {
        for len in [1usize, 7, 48, 144, 500] {
            let data = pseudo_bits(len, len as u64);
            assert_eq!(viterbi_decode(&encode(&data)), data, "len {len}");
        }
    }

    #[test]
    fn known_impulse_response() {
        // A single 1 followed by zeros produces the generator pattern.
        let coded = encode(&[1]);
        // First output pair: register = 1000000 → gA = bit6 of 133? Both
        // generators have the x^6 tap, so the first pair is (1, 1).
        assert_eq!(&coded[..2], &[1, 1]);
        assert_eq!(coded.len(), 2 * 7);
    }

    #[test]
    fn corrects_scattered_errors() {
        let data = pseudo_bits(120, 9);
        let mut coded = encode(&data);
        // Flip 4 bits far apart — within the code's correction power.
        for &idx in &[5usize, 60, 130, 200] {
            coded[idx] ^= 1;
        }
        assert_eq!(viterbi_decode(&coded), data);
    }

    #[test]
    fn corrects_one_error_per_window_everywhere() {
        let data = pseudo_bits(64, 3);
        let coded = encode(&data);
        for idx in 0..coded.len() {
            let mut corrupted = coded.clone();
            corrupted[idx] ^= 1;
            assert_eq!(viterbi_decode(&corrupted), data, "flip at {idx}");
        }
    }

    #[test]
    fn burst_beyond_capacity_fails_gracefully() {
        // 12 consecutive flipped bits exceed d_free; the decoder must
        // still return *something* of the right length.
        let data = pseudo_bits(64, 4);
        let mut coded = encode(&data);
        for bit in coded.iter_mut().skip(20).take(12) {
            *bit ^= 1;
        }
        let decoded = viterbi_decode(&coded);
        assert_eq!(decoded.len(), data.len());
    }

    #[test]
    #[should_panic]
    fn odd_length_rejected() {
        viterbi_decode(&[1, 0, 1]);
    }

    #[test]
    fn soft_decoder_matches_hard_decoder_on_crisp_costs() {
        let data = pseudo_bits(80, 6);
        let coded = encode(&data);
        let costs: Vec<(f64, f64)> = coded
            .iter()
            .map(|&b| if b == 0 { (0.0, 1.0) } else { (1.0, 0.0) })
            .collect();
        assert_eq!(viterbi_decode_soft(&costs), data);
    }

    #[test]
    fn soft_decoder_uses_confidence() {
        // One position is received "wrong" but with low confidence;
        // another correct bit is highly confident. Soft decoding recovers
        // the data where a hard decision on the flipped bit alone might
        // not be penalized appropriately.
        let data = pseudo_bits(40, 8);
        let coded = encode(&data);
        let mut costs: Vec<(f64, f64)> = coded
            .iter()
            .map(|&b| if b == 0 { (0.0, 2.0) } else { (2.0, 0.0) })
            .collect();
        // Weakly contradict position 11 (true bit stays cheaper overall).
        let true_bit = coded[11];
        costs[11] = if true_bit == 0 {
            (0.6, 0.5)
        } else {
            (0.5, 0.6)
        };
        assert_eq!(viterbi_decode_soft(&costs), data);
    }

    #[test]
    fn rate_is_half() {
        let data = pseudo_bits(100, 5);
        assert_eq!(encode(&data).len(), 2 * (100 + 6));
    }
}
