//! The complete 802.11 transmit chain and its inverse — the paper's
//! Fig. 1 in full.
//!
//! Forward (what a Wi-Fi NIC does to a payload):
//!
//! ```text
//! payload bits → scramble → convolutional encode (r=1/2) →
//!   interleave (288 bits/symbol) → 64-QAM map → IFFT → waveform
//! ```
//!
//! Inverse (what the *jammer* must do to a designed ZigBee waveform —
//! Fig. 1's "FFT → Quantization → Deinterleaving → Conv. Decoding →
//! Descrambling"):
//!
//! ```text
//! waveform → FFT → quantize to α*-scaled 64-QAM → bits →
//!   deinterleave → Viterbi decode → descramble → payload bits
//! ```
//!
//! The inverse path surfaces a constraint the quantizer alone hides: a
//! NIC can only emit *codewords* of the convolutional code, so the
//! recovered payload's re-transmission ([`RecoveredPayload::predicted`])
//! is the waveform the attack can actually put on the air.

use crate::complex::Complex64;
use crate::emulation::optimize_alpha;
use crate::qam::Qam64;
use crate::wifi::convolutional::{encode, viterbi_decode, viterbi_decode_soft, CONSTRAINT};
use crate::wifi::interleaver::{deinterleave, interleave, output_position, N_BPSC, N_CBPS};
use crate::wifi::ofdm::{OfdmModulator, DATA_SUBCARRIERS, FFT_SIZE};
use crate::wifi::scrambler::Scrambler;

/// Payload (information) bits carried per OFDM symbol at rate 1/2:
/// `N_CBPS / 2 = 144`.
pub const N_DBPS: usize = N_CBPS / 2;

/// Maps 6 bits (MSB first) to a 64-QAM constellation index.
pub fn bits_to_index(bits: &[u8]) -> u8 {
    debug_assert_eq!(bits.len(), N_BPSC);
    bits.iter().fold(0u8, |acc, &b| (acc << 1) | (b & 1))
}

/// Inverse of [`bits_to_index`].
pub fn index_to_bits(index: u8) -> [u8; N_BPSC] {
    let mut out = [0u8; N_BPSC];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = (index >> (N_BPSC - 1 - i)) & 1;
    }
    out
}

/// The forward 802.11 transmit chain (no cyclic prefix — the emulation
/// path controls its own timing).
///
/// # Example
///
/// ```
/// use ctjam_phy::wifi::txchain::TxChain;
///
/// let chain = TxChain::new(0x5D);
/// let payload = vec![1u8, 0, 1, 1, 0, 0, 1, 0];
/// let wave = chain.transmit(&payload);
/// assert_eq!(chain.receive(&wave, payload.len()), payload);
/// ```
#[derive(Debug, Clone)]
pub struct TxChain {
    seed: u8,
    qam: Qam64,
    ofdm: OfdmModulator,
}

impl TxChain {
    /// Creates a chain with a scrambler seed.
    ///
    /// # Panics
    ///
    /// Panics on an invalid scrambler seed (zero or > 7 bits).
    pub fn new(seed: u8) -> Self {
        let _ = Scrambler::new(seed); // validate
        TxChain {
            seed,
            qam: Qam64::new(),
            ofdm: OfdmModulator::with_cyclic_prefix(false),
        }
    }

    /// Number of OFDM symbols needed for a payload of `bits` bits
    /// (scrambled, tail-terminated, zero-padded to a symbol boundary).
    pub fn symbols_for(&self, bits: usize) -> usize {
        (2 * (bits + CONSTRAINT - 1)).div_ceil(N_CBPS)
    }

    /// Runs the forward chain, producing `symbols_for(bits) · 64`
    /// time-domain samples.
    ///
    /// # Panics
    ///
    /// Panics if any bit is not 0/1.
    pub fn transmit(&self, payload_bits: &[u8]) -> Vec<Complex64> {
        assert!(payload_bits.iter().all(|&b| b <= 1), "bits must be 0/1");
        let scrambled = Scrambler::new(self.seed).scramble(payload_bits);
        let mut coded = encode(&scrambled);
        coded.resize(self.symbols_for(payload_bits.len()) * N_CBPS, 0);

        let mut samples = Vec::with_capacity(coded.len() / N_CBPS * FFT_SIZE);
        for symbol_bits in coded.chunks(N_CBPS) {
            let interleaved = interleave(symbol_bits);
            let points: Vec<Complex64> = interleaved
                .chunks(N_BPSC)
                .map(|chunk| self.qam.modulate(bits_to_index(chunk)))
                .collect();
            debug_assert_eq!(points.len(), DATA_SUBCARRIERS);
            samples.extend(self.ofdm.modulate(&points).expect("48 points"));
        }
        samples
    }

    /// Inverts [`TxChain::transmit`]: recovers `payload_len` payload
    /// bits from the waveform (hard-decision demap, deinterleave,
    /// Viterbi, descramble).
    ///
    /// # Panics
    ///
    /// Panics if the sample count is not a whole number of OFDM symbols
    /// or is too short for the payload length.
    pub fn receive(&self, samples: &[Complex64], payload_len: usize) -> Vec<u8> {
        assert_eq!(
            samples.len() % FFT_SIZE,
            0,
            "waveform must be whole OFDM symbols"
        );
        let mut coded = Vec::with_capacity(samples.len() / FFT_SIZE * N_CBPS);
        for window in samples.chunks(FFT_SIZE) {
            let points = self.ofdm.demodulate(window).expect("64 samples");
            let mut symbol_bits = Vec::with_capacity(N_CBPS);
            for p in points {
                symbol_bits.extend_from_slice(&index_to_bits(self.qam.demodulate(p)));
            }
            coded.extend(deinterleave(&symbol_bits));
        }
        let needed = 2 * (payload_len + CONSTRAINT - 1);
        assert!(
            coded.len() >= needed,
            "waveform too short for payload length"
        );
        coded.truncate(needed);
        let mut decoded = viterbi_decode(&coded);
        decoded.truncate(payload_len);
        Scrambler::new(self.seed).scramble(&decoded)
    }
}

/// Result of the Fig. 1 inverse chain on a target waveform.
#[derive(Debug, Clone)]
pub struct RecoveredPayload {
    /// The payload bits the attacker must hand to the Wi-Fi NIC.
    pub payload_bits: Vec<u8>,
    /// The per-window optimal QAM scale factors found during
    /// quantization (Eq. 2).
    pub alphas: Vec<f64>,
    /// The waveform the NIC will actually emit for
    /// [`RecoveredPayload::payload_bits`] (per-window α re-applied) —
    /// i.e. the *achievable* emulation including the codeword constraint.
    pub predicted: Vec<Complex64>,
}

/// Runs the full Fig. 1 inverse chain: FFT → α-optimal quantization →
/// deinterleaving → Viterbi decoding → descrambling.
///
/// The decoding step is *soft*: each coded bit position carries the
/// quantization cost of sending a 0 vs a 1 at its (subcarrier, bit)
/// slot (the BICM metric `min over points with that bit |α·P − T|²`),
/// and the Viterbi search returns the minimum-cost *codeword* — the
/// closest waveform a real, coded Wi-Fi NIC can emit. Hard
/// quantize-then-decode is strictly worse: the quantized bits are
/// generally far from any codeword and the projection destroys the
/// waveform.
///
/// The target is processed in 64-sample windows (zero-padded at the
/// tail); the recovered payload spans all windows, and
/// [`RecoveredPayload::predicted`] re-runs the forward chain so callers
/// can measure the end-to-end (codeword-constrained) emulation error.
pub fn recover_payload(chain: &TxChain, target: &[Complex64]) -> RecoveredPayload {
    let windows = target.len().div_ceil(FFT_SIZE).max(1);
    let mut costs: Vec<(f64, f64)> = Vec::with_capacity(windows * N_CBPS);
    let mut alphas = Vec::with_capacity(windows);

    for w in 0..windows {
        let mut window = [Complex64::ZERO; FFT_SIZE];
        let start = w * FFT_SIZE;
        let end = ((w + 1) * FFT_SIZE).min(target.len());
        if start < target.len() {
            window[..end - start].copy_from_slice(&target[start..end]);
        }
        let spectrum = chain.ofdm.analyze_window(&window);
        let targets: Vec<Complex64> = chain
            .ofdm
            .data_bins()
            .iter()
            .map(|&b| spectrum[b])
            .collect();
        let alpha = optimize_alpha(&chain.qam, &targets).alpha;
        alphas.push(alpha);

        // Per-(subcarrier, bit-position) BICM costs.
        let mut bit_costs = [(0.0f64, 0.0f64); N_CBPS];
        for (sc, t) in targets.iter().enumerate() {
            let distances: Vec<f64> = (0..64)
                .map(|idx| (chain.qam.point(idx).scale(alpha) - *t).norm_sqr())
                .collect();
            for j in 0..N_BPSC {
                let mut c0 = f64::INFINITY;
                let mut c1 = f64::INFINITY;
                for (idx, &d) in distances.iter().enumerate() {
                    let bit = (idx >> (N_BPSC - 1 - j)) & 1;
                    if bit == 0 {
                        c0 = c0.min(d);
                    } else {
                        c1 = c1.min(d);
                    }
                }
                bit_costs[sc * N_BPSC + j] = (c0, c1);
            }
        }
        // Route interleaved positions back to coded-bit order.
        for k in 0..N_CBPS {
            costs.push(bit_costs[output_position(k)]);
        }
    }

    // The minimum-cost codeword — the best waveform a coded NIC can emit.
    let decoded = viterbi_decode_soft(&costs);
    let payload_len = decoded.len();
    let payload_bits = Scrambler::new(chain.seed).scramble(&decoded);

    // Re-run the forward chain and re-apply the per-window gains to see
    // what actually goes on the air.
    let mut predicted = chain.transmit(&payload_bits);
    for (w, alpha) in alphas.iter().enumerate() {
        let start = w * FFT_SIZE;
        let end = ((w + 1) * FFT_SIZE).min(predicted.len());
        for sample in &mut predicted[start..end] {
            *sample = sample.scale(*alpha);
        }
    }
    let _ = payload_len;
    RecoveredPayload {
        payload_bits,
        alphas,
        predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::energy;
    use crate::emulation::frequency_shift;
    use crate::metrics::waveform_evm;
    use crate::zigbee::oqpsk::OqpskModulator;

    fn pseudo_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 62) & 1) as u8
            })
            .collect()
    }

    #[test]
    fn forward_chain_roundtrip() {
        let chain = TxChain::new(0x5D);
        for len in [8usize, 100, 144, 288, 700] {
            let payload = pseudo_bits(len, len as u64);
            let wave = chain.transmit(&payload);
            assert_eq!(wave.len() % FFT_SIZE, 0);
            assert_eq!(chain.receive(&wave, len), payload, "len {len}");
        }
    }

    #[test]
    fn bit_index_roundtrip() {
        for idx in 0..64u8 {
            assert_eq!(bits_to_index(&index_to_bits(idx)), idx);
        }
    }

    #[test]
    fn symbols_for_matches_transmit_length() {
        let chain = TxChain::new(0x01);
        for len in [1usize, 143, 144, 145, 1000] {
            let wave = chain.transmit(&pseudo_bits(len, 7));
            assert_eq!(wave.len(), chain.symbols_for(len) * FFT_SIZE);
        }
    }

    #[test]
    fn inverse_chain_is_consistent_with_forward() {
        // Recovering a waveform that IS a codeword must reproduce it
        // exactly (α = 1 case up to scale).
        let chain = TxChain::new(0x5D);
        let payload = pseudo_bits(2 * N_DBPS - 6, 3);
        let wave = chain.transmit(&payload);
        let recovered = recover_payload(&chain, &wave);
        // The recovered payload starts with the original bits.
        assert_eq!(&recovered.payload_bits[..payload.len()], &payload[..]);
        // And the prediction matches the original waveform per window up
        // to the recovered per-window scale.
        let evm = waveform_evm(
            &wave,
            &normalize_windows(&recovered.predicted, &recovered.alphas),
        );
        assert!(evm < 1e-6, "self-recovery EVM {evm}");
    }

    fn normalize_windows(wave: &[Complex64], alphas: &[f64]) -> Vec<Complex64> {
        let mut out = wave.to_vec();
        for (w, alpha) in alphas.iter().enumerate() {
            let start = w * FFT_SIZE;
            let end = ((w + 1) * FFT_SIZE).min(out.len());
            for s in &mut out[start..end] {
                *s = s.scale(1.0 / alpha);
            }
        }
        out
    }

    #[test]
    fn zigbee_emulation_through_the_real_nic_constraints() {
        // The headline Fig. 1 workflow: designed ZigBee waveform → bits →
        // forward chain → achievable waveform. The codeword constraint
        // costs fidelity relative to free quantization, but the result
        // must still carry most of the target's energy shape.
        let modulator = OqpskModulator::with_oversampling(10);
        let designed = modulator.modulate_symbols(&[0x3, 0xA, 0x5, 0xC]);
        let target = frequency_shift(&designed, 16);
        let chain = TxChain::new(0x5D);
        let recovered = recover_payload(&chain, &target);

        assert_eq!(recovered.predicted.len() % FFT_SIZE, 0);
        assert!(!recovered.payload_bits.is_empty());
        let n = target.len().min(recovered.predicted.len());
        let evm = waveform_evm(&target[..n], &recovered.predicted[..n]);
        assert!(
            evm < 1.05,
            "codeword-constrained emulation should not exceed the all-zero error: {evm}"
        );
        assert!(energy(&recovered.predicted) > 0.0);
    }

    #[test]
    fn different_seeds_give_different_payloads_same_waveform_class() {
        let chain_a = TxChain::new(0x11);
        let chain_b = TxChain::new(0x6B);
        let modulator = OqpskModulator::with_oversampling(10);
        let target = frequency_shift(&modulator.modulate_symbols(&[0x1, 0x2]), 16);
        let ra = recover_payload(&chain_a, &target);
        let rb = recover_payload(&chain_b, &target);
        assert_ne!(
            ra.payload_bits, rb.payload_bits,
            "scrambler seed must matter"
        );
    }
}
