//! PHY-layer digital-signal-processing substrate for the CTJam suite.
//!
//! This crate implements, from scratch, every piece of signal-processing
//! machinery that the cross-technology jamming attack of *“Defending against
//! Cross-Technology Jamming in Heterogeneous IoT Systems”* (ICDCS 2022)
//! depends on:
//!
//! * [`complex`] — a minimal complex-number type, [`Complex64`].
//! * [`fft`] — an iterative radix-2 FFT/IFFT pair.
//! * [`qam`] — the Gray-coded 64-QAM constellation used by 802.11 OFDM.
//! * [`zigbee`] — IEEE 802.15.4 (2.4 GHz) O-QPSK with 32-chip DSSS
//!   spreading, half-sine pulse shaping, and the ZigBee PHY frame format.
//! * [`wifi`] — the 802.11 OFDM symbol chain (64 subcarriers, cyclic
//!   prefix) driven forwards (modulation) and backwards (emulation).
//! * [`emulation`] — the *EmuBee* attack: emulating a ZigBee waveform with
//!   a Wi-Fi transmitter, including the paper's Eq. (1)–(2) quantization
//!   optimizer that scales the 64-QAM grid to minimize emulation error.
//! * [`metrics`] — EVM, correlation, and chip-error-rate measurements used
//!   to quantify emulation fidelity.
//!
//! # Example
//!
//! Emulate one ZigBee symbol with a Wi-Fi front end and measure the error:
//!
//! ```
//! use ctjam_phy::emulation::{Emulator, EmulationConfig};
//! use ctjam_phy::zigbee::oqpsk::OqpskModulator;
//!
//! let modulator = OqpskModulator::with_oversampling(10);
//! let target = modulator.modulate_symbols(&[0x3, 0xA, 0x5]);
//! let emulator = Emulator::new(EmulationConfig::default());
//! let report = emulator.emulate(&target);
//! assert!(report.evm() < 1.0, "EmuBee should track the designed waveform");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod emulation;
pub mod fft;
pub mod metrics;
pub mod qam;
pub mod wifi;
pub mod zigbee;

pub use complex::Complex64;
