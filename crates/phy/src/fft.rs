//! Iterative radix-2 Cooley–Tukey FFT and inverse FFT.
//!
//! The Wi-Fi OFDM chain operates on 64-point blocks, and the EmuBee
//! emulation path runs the same transform backwards, so a power-of-two FFT
//! is all the suite needs. The implementation is allocation-free once the
//! plan is built: twiddle factors are precomputed per size.

use crate::complex::Complex64;
use std::f64::consts::PI;

/// Error returned when a transform is requested for an unsupported length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftSizeError {
    len: usize,
}

impl FftSizeError {
    /// The offending buffer length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the offending length was zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Display for FftSizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fft length {} is not a power of two", self.len)
    }
}

impl std::error::Error for FftSizeError {}

/// A reusable FFT plan for a fixed power-of-two size.
///
/// Building a plan precomputes the bit-reversal permutation and twiddle
/// factors; [`Fft::forward`] and [`Fft::inverse`] then run in `O(n log n)`
/// with no allocation.
///
/// # Example
///
/// ```
/// use ctjam_phy::fft::Fft;
/// use ctjam_phy::Complex64;
///
/// let fft = Fft::new(8).unwrap();
/// let mut buf = vec![Complex64::ONE; 8];
/// fft.forward(&mut buf).unwrap();
/// // DC bin holds the sum, every other bin is zero.
/// assert!((buf[0].re - 8.0).abs() < 1e-12);
/// assert!(buf[1].norm() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    reversed: Vec<u32>,
    /// Forward twiddles: `e^{-2πik/n}` for `k` in `0..n/2`.
    twiddles: Vec<Complex64>,
}

impl Fft {
    /// Creates a plan for `n`-point transforms.
    ///
    /// # Errors
    ///
    /// Returns [`FftSizeError`] when `n` is zero or not a power of two.
    pub fn new(n: usize) -> Result<Self, FftSizeError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(FftSizeError { len: n });
        }
        let bits = n.trailing_zeros();
        let reversed = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        let twiddles = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / n as f64))
            .collect();
        Ok(Fft {
            n,
            reversed: if n == 1 { vec![0] } else { reversed },
            twiddles,
        })
    }

    /// The transform size this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate 1-point plan.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn check(&self, buf: &[Complex64]) -> Result<(), FftSizeError> {
        if buf.len() == self.n {
            Ok(())
        } else {
            Err(FftSizeError { len: buf.len() })
        }
    }

    fn permute(&self, buf: &mut [Complex64]) {
        for (i, &r) in self.reversed.iter().enumerate() {
            let r = r as usize;
            if i < r {
                buf.swap(i, r);
            }
        }
    }

    fn butterflies(&self, buf: &mut [Complex64], conjugate: bool) {
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if conjugate {
                        w = w.conj();
                    }
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }

    /// In-place forward DFT: `X[k] = Σ_j x[j]·e^{-2πijk/n}`.
    ///
    /// # Errors
    ///
    /// Returns [`FftSizeError`] when `buf.len()` differs from the plan size.
    pub fn forward(&self, buf: &mut [Complex64]) -> Result<(), FftSizeError> {
        self.check(buf)?;
        self.permute(buf);
        self.butterflies(buf, false);
        Ok(())
    }

    /// In-place inverse DFT, normalized by `1/n` so that
    /// `inverse(forward(x)) == x`.
    ///
    /// # Errors
    ///
    /// Returns [`FftSizeError`] when `buf.len()` differs from the plan size.
    pub fn inverse(&self, buf: &mut [Complex64]) -> Result<(), FftSizeError> {
        self.check(buf)?;
        self.permute(buf);
        self.butterflies(buf, true);
        let scale = 1.0 / self.n as f64;
        for z in buf.iter_mut() {
            *z = z.scale(scale);
        }
        Ok(())
    }
}

/// One-shot forward FFT returning a new buffer.
///
/// # Errors
///
/// Returns [`FftSizeError`] when the input length is not a power of two.
pub fn fft(input: &[Complex64]) -> Result<Vec<Complex64>, FftSizeError> {
    let plan = Fft::new(input.len())?;
    let mut buf = input.to_vec();
    plan.forward(&mut buf)?;
    Ok(buf)
}

/// One-shot inverse FFT returning a new buffer.
///
/// # Errors
///
/// Returns [`FftSizeError`] when the input length is not a power of two.
pub fn ifft(input: &[Complex64]) -> Result<Vec<Complex64>, FftSizeError> {
    let plan = Fft::new(input.len())?;
    let mut buf = input.to_vec();
    plan.inverse(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::energy;

    fn naive_dft(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|j| x[j] * Complex64::cis(-2.0 * PI * (j * k) as f64 / n as f64))
                    .sum()
            })
            .collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).norm())
            .fold(0.0, f64::max)
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(Fft::new(0).is_err());
        assert!(Fft::new(3).is_err());
        assert!(Fft::new(12).is_err());
        assert!(Fft::new(64).is_ok());
    }

    #[test]
    fn rejects_mismatched_buffer() {
        let plan = Fft::new(8).unwrap();
        let mut buf = vec![Complex64::ZERO; 4];
        assert!(plan.forward(&mut buf).is_err());
        assert!(plan.inverse(&mut buf).is_err());
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()))
                .collect();
            let fast = fft(&x).unwrap();
            let slow = naive_dft(&x);
            assert!(max_err(&fast, &slow) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Complex64> = (0..128)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let back = ifft(&fft(&x).unwrap()).unwrap();
        assert!(max_err(&x, &back) < 1e-10);
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64 * 1.3).cos(), (i as f64 * 0.7).sin()))
            .collect();
        let spectrum = fft(&x).unwrap();
        let time_energy = energy(&x);
        let freq_energy = energy(&spectrum) / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        let spectrum = fft(&x).unwrap();
        for bin in spectrum {
            assert!((bin - Complex64::ONE).norm() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let k = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * PI * (j * k) as f64 / n as f64))
            .collect();
        let spectrum = fft(&x).unwrap();
        for (bin, z) in spectrum.iter().enumerate() {
            if bin == k {
                assert!((z.norm() - n as f64).abs() < 1e-9);
            } else {
                assert!(z.norm() < 1e-9, "bin {bin} leaked {}", z.norm());
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(0.0, (n - i) as f64))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a).unwrap();
        let fb = fft(&b).unwrap();
        let fsum = fft(&sum).unwrap();
        let combined: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert!(max_err(&fsum, &combined) < 1e-9);
    }
}
