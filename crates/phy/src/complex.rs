//! A minimal double-precision complex-number type.
//!
//! The suite deliberately avoids external numerics crates, so this module
//! provides the handful of complex operations the PHY chain needs: the four
//! arithmetic operators, conjugation, magnitude, and polar construction.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number backed by two `f64` components.
///
/// # Example
///
/// ```
/// use ctjam_phy::Complex64;
///
/// let a = Complex64::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a * Complex64::I, Complex64::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from polar components.
    ///
    /// ```
    /// use ctjam_phy::Complex64;
    /// use std::f64::consts::FRAC_PI_2;
    ///
    /// let z = Complex64::from_polar(2.0, FRAC_PI_2);
    /// assert!((z - Complex64::new(0.0, 2.0)).norm() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{i·theta}`, a unit phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::from_polar(1.0, theta)
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Returns the magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the squared magnitude `|z|²`, cheaper than [`Complex64::norm`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64::new(self.re * s, self.im * s)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Complex64 {
        Complex64::new(re, 0.0)
    }
}

impl From<(f64, f64)> for Complex64 {
    #[inline]
    fn from((re, im): (f64, f64)) -> Complex64 {
        Complex64::new(re, im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Returns the total energy `Σ|z|²` of a sample buffer.
///
/// ```
/// use ctjam_phy::complex::{energy, Complex64};
/// let buf = [Complex64::new(3.0, 4.0), Complex64::ONE];
/// assert_eq!(energy(&buf), 26.0);
/// ```
pub fn energy(samples: &[Complex64]) -> f64 {
    samples.iter().map(|z| z.norm_sqr()).sum()
}

/// Returns the average power `Σ|z|²/N` of a sample buffer (0 for empty input).
pub fn mean_power(samples: &[Complex64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        energy(samples) / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(2.5, -1.5);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert!(close(z / z, Complex64::ONE));
        assert_eq!(-(-z), z);
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i - 8i² = 11 + 2i
        assert_eq!(a * b, Complex64::new(11.0, 2.0));
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex64::new(1.0, -2.0));
        assert_eq!((z * z.conj()).re, z.norm_sqr());
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::new(-3.0, 4.0);
        let back = Complex64::from_polar(z.norm(), z.arg());
        assert!(close(z, back));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            assert!((Complex64::cis(theta).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(0.7, -0.3);
        let b = Complex64::new(-1.1, 2.2);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn sum_accumulates() {
        let v = vec![Complex64::ONE; 5];
        let s: Complex64 = v.into_iter().sum();
        assert_eq!(s, Complex64::new(5.0, 0.0));
    }

    #[test]
    fn energy_and_mean_power() {
        let buf = [Complex64::new(1.0, 1.0); 4];
        assert_eq!(energy(&buf), 8.0);
        assert_eq!(mean_power(&buf), 2.0);
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
