//! Gray-coded 64-QAM constellation used by the 802.11 OFDM PHY.
//!
//! The emulation attack (see [`crate::emulation`]) works by quantizing an
//! arbitrary target spectrum onto this constellation; the paper's key
//! observation is that the constellation can be *scaled* by a real factor α
//! before quantization, and that choosing α optimally (Eqs. 1–2) shrinks
//! the emulation error.

use crate::complex::Complex64;

/// Number of points in the 64-QAM constellation.
pub const QAM64_POINTS: usize = 64;

/// Per-axis amplitude levels of unnormalized 64-QAM.
const LEVELS: [f64; 8] = [-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0];

/// 3-bit Gray code, indexed by axis level `0..8` (as used by 802.11a/g).
const GRAY3: [u8; 8] = [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100];

/// The Gray-coded 64-QAM constellation.
///
/// Points are normalized so that the *average* symbol energy is 1
/// (the 802.11 normalization factor `1/√42`).
///
/// # Example
///
/// ```
/// use ctjam_phy::qam::Qam64;
///
/// let qam = Qam64::new();
/// let symbol = qam.modulate(0b101_011);
/// let (index, _dist) = qam.nearest(symbol);
/// assert_eq!(qam.demodulate(symbol), 0b101_011);
/// assert_eq!(index as u8, qam.demodulate(qam.point(index)));
/// ```
#[derive(Debug, Clone)]
pub struct Qam64 {
    points: [Complex64; QAM64_POINTS],
}

impl Default for Qam64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Qam64 {
    /// 802.11 64-QAM normalization: `1/√42` makes mean symbol energy 1.
    pub const NORMALIZATION: f64 = 0.154_303_349_962_091_9; // 1/sqrt(42)

    /// Builds the normalized constellation table.
    pub fn new() -> Self {
        let mut points = [Complex64::ZERO; QAM64_POINTS];
        for (index, point) in points.iter_mut().enumerate() {
            let sym = index as u8;
            // Bits b5 b4 b3 select I, b2 b1 b0 select Q (Gray mapping).
            let i_bits = (sym >> 3) & 0b111;
            let q_bits = sym & 0b111;
            let i_level = LEVELS[gray_to_level(i_bits)];
            let q_level = LEVELS[gray_to_level(q_bits)];
            *point = Complex64::new(i_level, q_level).scale(Self::NORMALIZATION);
        }
        Qam64 { points }
    }

    /// Returns the constellation point for a constellation index `0..64`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    #[inline]
    pub fn point(&self, index: usize) -> Complex64 {
        self.points[index]
    }

    /// All 64 constellation points, in symbol order.
    pub fn points(&self) -> &[Complex64; QAM64_POINTS] {
        &self.points
    }

    /// Maps a 6-bit symbol to its constellation point.
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= 64`.
    #[inline]
    pub fn modulate(&self, symbol: u8) -> Complex64 {
        assert!(symbol < 64, "64-QAM symbol must be 6 bits, got {symbol}");
        self.points[symbol as usize]
    }

    /// Hard-decision demodulation: returns the 6-bit symbol whose point is
    /// nearest to `received`.
    pub fn demodulate(&self, received: Complex64) -> u8 {
        self.nearest(received).0 as u8
    }

    /// Returns `(index, squared_distance)` of the nearest constellation
    /// point to `z`.
    pub fn nearest(&self, z: Complex64) -> (usize, f64) {
        self.nearest_scaled(z, 1.0)
    }

    /// Returns `(index, squared_distance)` of the nearest *α-scaled*
    /// constellation point to `z`, i.e. minimizes `|α·Pᵢ − z|²` over `i`.
    ///
    /// This is the inner `min` of the paper's Eq. (1). Because the
    /// constellation is a rectangular grid the search is done per axis in
    /// `O(1)` rather than scanning all 64 points.
    pub fn nearest_scaled(&self, z: Complex64, alpha: f64) -> (usize, f64) {
        if alpha <= 0.0 || !alpha.is_finite() {
            // Degenerate scaling collapses the grid onto the origin; fall
            // back to an exhaustive scan for a well-defined answer.
            return self.nearest_exhaustive(z, alpha.max(0.0));
        }
        let step = alpha * Self::NORMALIZATION;
        let i_idx = quantize_axis(z.re / step);
        let q_idx = quantize_axis(z.im / step);
        let i_bits = GRAY3[i_idx];
        let q_bits = GRAY3[q_idx];
        let index = ((i_bits << 3) | q_bits) as usize;
        let d = (self.points[index].scale(alpha) - z).norm_sqr();
        (index, d)
    }

    /// Exhaustive nearest-point search; reference implementation used by
    /// tests and by degenerate scalings.
    pub fn nearest_exhaustive(&self, z: Complex64, alpha: f64) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, p) in self.points.iter().enumerate() {
            let d = (p.scale(alpha) - z).norm_sqr();
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }

    /// Mean symbol energy of the constellation (≈ 1 after normalization).
    pub fn mean_energy(&self) -> f64 {
        self.points.iter().map(|p| p.norm_sqr()).sum::<f64>() / QAM64_POINTS as f64
    }
}

/// Maps Gray bits back to an axis level index.
fn gray_to_level(bits: u8) -> usize {
    GRAY3
        .iter()
        .position(|&g| g == bits)
        .expect("all 3-bit patterns appear in GRAY3")
}

/// Snaps a normalized coordinate (in units of the level spacing half-step)
/// to the nearest of the 8 QAM levels, returning the level index.
fn quantize_axis(value: f64) -> usize {
    // Levels are -7,-5,…,7: nearest level index is round((v+7)/2) clamped.
    let idx = ((value + 7.0) / 2.0).round();
    idx.clamp(0.0, 7.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constellation_has_unit_mean_energy() {
        let qam = Qam64::new();
        assert!((qam.mean_energy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_points_distinct() {
        let qam = Qam64::new();
        for i in 0..QAM64_POINTS {
            for j in (i + 1)..QAM64_POINTS {
                assert!((qam.point(i) - qam.point(j)).norm() > 1e-9);
            }
        }
    }

    #[test]
    fn modulate_demodulate_roundtrip() {
        let qam = Qam64::new();
        for sym in 0..64u8 {
            assert_eq!(qam.demodulate(qam.modulate(sym)), sym);
        }
    }

    #[test]
    fn gray_neighbours_differ_by_one_bit() {
        for w in GRAY3.windows(2) {
            assert_eq!((w[0] ^ w[1]).count_ones(), 1);
        }
    }

    #[test]
    fn fast_nearest_matches_exhaustive() {
        let qam = Qam64::new();
        let mut k = 0u32;
        for alpha in [0.5, 1.0, 1.7, 3.2] {
            for _ in 0..200 {
                // Cheap deterministic pseudo-random points.
                k = k.wrapping_mul(1664525).wrapping_add(1013904223);
                let re = (k >> 16) as f64 / 65536.0 * 4.0 - 2.0;
                k = k.wrapping_mul(1664525).wrapping_add(1013904223);
                let im = (k >> 16) as f64 / 65536.0 * 4.0 - 2.0;
                let z = Complex64::new(re, im);
                let fast = qam.nearest_scaled(z, alpha);
                let slow = qam.nearest_exhaustive(z, alpha);
                assert!(
                    (fast.1 - slow.1).abs() < 1e-12,
                    "alpha={alpha} z={z} fast={fast:?} slow={slow:?}"
                );
            }
        }
    }

    #[test]
    fn degenerate_alpha_still_returns() {
        let qam = Qam64::new();
        let z = Complex64::new(0.3, -0.2);
        let (_, d) = qam.nearest_scaled(z, 0.0);
        assert!((d - z.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn modulate_rejects_out_of_range() {
        Qam64::new().modulate(64);
    }

    #[test]
    fn noise_tolerance_within_half_step() {
        let qam = Qam64::new();
        let half_step = Qam64::NORMALIZATION * 0.99;
        for sym in [0u8, 17, 42, 63] {
            let noisy = qam.modulate(sym) + Complex64::new(half_step * 0.9, -half_step * 0.9);
            assert_eq!(qam.demodulate(noisy), sym);
        }
    }
}
