//! Fidelity metrics for emulated waveforms: EVM, correlation, and chip
//! error rate at the victim receiver.

use crate::complex::{energy, Complex64};
use crate::zigbee::oqpsk::OqpskModulator;

/// Root-mean-square error between two waveforms, normalized by the RMS
/// amplitude of `reference` (an error-vector-magnitude style measure).
///
/// Returns 0 when the reference carries no energy.
///
/// # Panics
///
/// Panics if the buffers differ in length.
///
/// ```
/// use ctjam_phy::metrics::waveform_evm;
/// use ctjam_phy::Complex64;
///
/// let a = vec![Complex64::ONE; 8];
/// assert_eq!(waveform_evm(&a, &a), 0.0);
/// ```
pub fn waveform_evm(reference: &[Complex64], actual: &[Complex64]) -> f64 {
    assert_eq!(reference.len(), actual.len(), "waveform lengths must match");
    let ref_energy = energy(reference);
    if ref_energy == 0.0 {
        return 0.0;
    }
    let err_energy: f64 = reference
        .iter()
        .zip(actual)
        .map(|(r, a)| (*r - *a).norm_sqr())
        .sum();
    (err_energy / ref_energy).sqrt()
}

/// Normalized cross-correlation magnitude `|⟨a,b⟩| / (‖a‖·‖b‖)` in `[0,1]`.
///
/// 1 means the waveforms are identical up to a complex scale factor.
///
/// # Panics
///
/// Panics if the buffers differ in length.
pub fn normalized_correlation(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "waveform lengths must match");
    let ea = energy(a);
    let eb = energy(b);
    if ea == 0.0 || eb == 0.0 {
        return 0.0;
    }
    let inner: Complex64 = a.iter().zip(b).map(|(x, y)| *x * y.conj()).sum();
    inner.norm() / (ea.sqrt() * eb.sqrt())
}

/// Fraction of chips that a victim O-QPSK receiver decides differently
/// between a `designed` waveform and its `emulated` replica.
///
/// This is the metric that ultimately decides jamming effectiveness: a low
/// chip error rate means the emulated signal collides with legitimate
/// traffic exactly like a genuine ZigBee signal would.
///
/// # Panics
///
/// Panics if the waveforms differ in length.
pub fn chip_error_rate(
    modulator: &OqpskModulator,
    designed: &[Complex64],
    emulated: &[Complex64],
) -> f64 {
    assert_eq!(
        designed.len(),
        emulated.len(),
        "waveform lengths must match"
    );
    let a = modulator.chips_from_waveform(designed);
    let b = modulator.chips_from_waveform(emulated);
    if a.is_empty() {
        return 0.0;
    }
    let errors = a.iter().zip(&b).filter(|(x, y)| x != y).count();
    errors as f64 / a.len() as f64
}

/// Signal-to-distortion ratio in dB: `10·log10(E_ref / E_err)`.
///
/// Returns `f64::INFINITY` for a perfect match and `-INFINITY` for a
/// zero-energy reference with nonzero error.
///
/// # Panics
///
/// Panics if the buffers differ in length.
pub fn distortion_db(reference: &[Complex64], actual: &[Complex64]) -> f64 {
    assert_eq!(reference.len(), actual.len(), "waveform lengths must match");
    let ref_energy = energy(reference);
    let err_energy: f64 = reference
        .iter()
        .zip(actual)
        .map(|(r, a)| (*r - *a).norm_sqr())
        .sum();
    if err_energy == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (ref_energy / err_energy).log10()
    }
}

/// Averaged-periodogram power spectral density over 64-sample windows.
///
/// Returns 64 nonnegative bins in FFT order (bin 0 = DC, bins 33..64 =
/// negative frequencies), normalized to sum to the mean per-window
/// energy. Trailing samples that do not fill a window are ignored.
///
/// Returns all zeros for inputs shorter than one window.
pub fn power_spectral_density(samples: &[Complex64]) -> Vec<f64> {
    use crate::fft::Fft;
    const N: usize = 64;
    let mut psd = vec![0.0; N];
    let windows = samples.len() / N;
    if windows == 0 {
        return psd;
    }
    let plan = Fft::new(N).expect("64 is a power of two");
    let mut buf = [Complex64::ZERO; N];
    for w in 0..windows {
        buf.copy_from_slice(&samples[w * N..(w + 1) * N]);
        plan.forward(&mut buf).expect("fixed length");
        for (bin, z) in psd.iter_mut().zip(&buf) {
            *bin += z.norm_sqr() / N as f64;
        }
    }
    psd.iter_mut().for_each(|v| *v /= windows as f64);
    psd
}

/// Fraction of spectral power inside the bin range
/// `[center − half_width, center + half_width]` (logical subcarrier
/// indices, wrapping; at 20 Msps one bin is 312.5 kHz, so a 2 MHz ZigBee
/// channel spans ±3 bins around its center).
///
/// Returns 0 for an all-zero PSD.
///
/// # Panics
///
/// Panics unless the PSD has 64 bins.
pub fn band_power_fraction(psd: &[f64], center: i32, half_width: i32) -> f64 {
    assert_eq!(psd.len(), 64, "psd must come from power_spectral_density");
    let total: f64 = psd.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut in_band = 0.0;
    for k in (center - half_width)..=(center + half_width) {
        let bin = k.rem_euclid(64) as usize;
        in_band += psd[bin];
    }
    in_band / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulation::{frequency_shift, EmulationConfig, Emulator};

    fn waveform() -> Vec<Complex64> {
        OqpskModulator::with_oversampling(10).modulate_symbols(&[0x1, 0x9, 0x4, 0xE])
    }

    #[test]
    fn evm_zero_for_identical() {
        let w = waveform();
        assert_eq!(waveform_evm(&w, &w), 0.0);
        assert_eq!(distortion_db(&w, &w), f64::INFINITY);
    }

    #[test]
    fn evm_one_for_zeroed() {
        let w = waveform();
        let zero = vec![Complex64::ZERO; w.len()];
        assert!((waveform_evm(&w, &zero) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_bounds() {
        let w = waveform();
        assert!((normalized_correlation(&w, &w) - 1.0).abs() < 1e-12);
        let scaled: Vec<Complex64> = w.iter().map(|z| z.scale(3.0)).collect();
        assert!((normalized_correlation(&w, &scaled) - 1.0).abs() < 1e-12);
        let zero = vec![Complex64::ZERO; w.len()];
        assert_eq!(normalized_correlation(&w, &zero), 0.0);
    }

    #[test]
    fn chip_error_rate_zero_for_identical() {
        let m = OqpskModulator::with_oversampling(10);
        let w = waveform();
        assert_eq!(chip_error_rate(&m, &w, &w), 0.0);
    }

    #[test]
    fn emubee_has_low_chip_error_rate() {
        let m = OqpskModulator::with_oversampling(10);
        let designed = waveform();
        let target = frequency_shift(&designed, 16);
        let report = Emulator::new(EmulationConfig::default()).emulate(&target);
        let victim_view = frequency_shift(report.emulated(), -16);
        let cer = chip_error_rate(&m, &designed, &victim_view);
        assert!(cer < 0.2, "EmuBee chip error rate {cer} too high");
    }

    #[test]
    fn optimized_alpha_improves_fidelity_metrics() {
        let designed = waveform();
        let target = frequency_shift(&designed, 16);
        let optimized = Emulator::new(EmulationConfig::default()).emulate(&target);
        let naive = Emulator::new(EmulationConfig {
            optimize_alpha: false,
            fixed_alpha: 1.0,
            respect_ofdm_mask: true,
        })
        .emulate(&target);
        let evm_opt = waveform_evm(&target, optimized.emulated());
        let evm_naive = waveform_evm(&target, naive.emulated());
        assert!(
            evm_opt <= evm_naive + 1e-9,
            "optimized {evm_opt} vs naive {evm_naive}"
        );
    }

    #[test]
    #[should_panic]
    fn evm_rejects_length_mismatch() {
        waveform_evm(&waveform(), &[Complex64::ZERO]);
    }

    #[test]
    fn psd_of_a_tone_concentrates_in_its_bin() {
        let n = 64 * 8;
        let tone: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * 5.0 * j as f64 / 64.0))
            .collect();
        let psd = power_spectral_density(&tone);
        let frac = band_power_fraction(&psd, 5, 0);
        assert!(frac > 0.999, "tone leaked: {frac}");
    }

    #[test]
    fn zigbee_waveform_occupies_its_2mhz_channel() {
        // A ZigBee baseband at 10 samples/chip (2 Mchip/s at 20 Msps)
        // occupies roughly ±1 MHz = ±3.2 bins around DC.
        let designed = waveform();
        let psd = power_spectral_density(&designed);
        let frac = band_power_fraction(&psd, 0, 4);
        assert!(frac > 0.85, "ZigBee energy outside its channel: {frac}");
    }

    #[test]
    fn emulated_energy_lands_on_the_victims_channel() {
        // Shift to bin +16 (+5 MHz), emulate, and confirm the emitted
        // power concentrates around bin 16 — the jammer hits the right
        // 2 MHz slice of the 20 MHz band.
        let designed = waveform();
        let target = frequency_shift(&designed, 16);
        let report = Emulator::new(EmulationConfig::default()).emulate(&target);
        let psd = power_spectral_density(report.emulated());
        let on_channel = band_power_fraction(&psd, 16, 4);
        assert!(on_channel > 0.6, "EmuBee power off-channel: {on_channel}");
        let wrong_side = band_power_fraction(&psd, -16, 4);
        assert!(wrong_side < 0.2, "mirror-image leakage: {wrong_side}");
    }

    #[test]
    fn psd_handles_short_and_empty_input() {
        assert_eq!(power_spectral_density(&[]), vec![0.0; 64]);
        let short = vec![Complex64::ONE; 10];
        assert_eq!(power_spectral_density(&short), vec![0.0; 64]);
        assert_eq!(band_power_fraction(&vec![0.0; 64], 0, 3), 0.0);
    }
}
