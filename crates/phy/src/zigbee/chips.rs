//! The 16 pseudo-noise chip sequences of the IEEE 802.15.4 2.4 GHz PHY.
//!
//! Each 4-bit data symbol is spread onto a 32-chip sequence. Symbols 1–7
//! are 4-chip cyclic shifts of the symbol-0 base sequence; symbols 8–15 are
//! the first eight sequences with every odd-indexed chip inverted (which
//! conjugates the O-QPSK waveform). The receiver despreads by correlating
//! against all 16 sequences and picking the best match — this correlation
//! margin is the *processing gain* that makes ZigBee robust to noise-like
//! (plain Wi-Fi) interference but not to EmuBee chip-faithful interference.

/// Chips per 802.15.4 data symbol.
pub const CHIPS_PER_SYMBOL: usize = 32;

/// Number of distinct data symbols (4 bits each).
pub const NUM_SYMBOLS: usize = 16;

/// Base chip sequence for data symbol 0 (IEEE 802.15.4-2020 Table 12-1),
/// chip c0 first.
const BASE: [u8; CHIPS_PER_SYMBOL] = [
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
];

/// The full symbol→chips table.
///
/// # Example
///
/// ```
/// use ctjam_phy::zigbee::chips::ChipTable;
///
/// let table = ChipTable::new();
/// let chips = table.spread(&[0x0, 0xF]);
/// assert_eq!(chips.len(), 64);
/// let back = table.despread_exact(&chips).unwrap();
/// assert_eq!(back, vec![0x0, 0xF]);
/// ```
#[derive(Debug, Clone)]
pub struct ChipTable {
    sequences: [[u8; CHIPS_PER_SYMBOL]; NUM_SYMBOLS],
}

impl Default for ChipTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ChipTable {
    /// Builds the 16-sequence table from the standard's base sequence.
    pub fn new() -> Self {
        let mut sequences = [[0u8; CHIPS_PER_SYMBOL]; NUM_SYMBOLS];
        for (sym, seq) in sequences.iter_mut().enumerate() {
            let shift = (sym % 8) * 4;
            for (i, chip) in seq.iter_mut().enumerate() {
                // Right cyclic shift by `shift`: chip i of symbol k is chip
                // (i - shift) mod 32 of the base sequence.
                let src = (i + CHIPS_PER_SYMBOL - shift) % CHIPS_PER_SYMBOL;
                let mut c = BASE[src];
                if sym >= 8 && i % 2 == 1 {
                    c ^= 1; // Conjugate: invert odd (Q-branch) chips.
                }
                *chip = c;
            }
        }
        ChipTable { sequences }
    }

    /// The 32-chip sequence for data symbol `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym >= 16`.
    pub fn sequence(&self, sym: u8) -> &[u8; CHIPS_PER_SYMBOL] {
        &self.sequences[sym as usize]
    }

    /// Spreads a slice of 4-bit symbols into a chip stream.
    ///
    /// # Panics
    ///
    /// Panics if any symbol is `>= 16`.
    pub fn spread(&self, symbols: &[u8]) -> Vec<u8> {
        let mut chips = Vec::with_capacity(symbols.len() * CHIPS_PER_SYMBOL);
        for &sym in symbols {
            assert!(sym < 16, "802.15.4 symbols are 4 bits, got {sym}");
            chips.extend_from_slice(&self.sequences[sym as usize]);
        }
        chips
    }

    /// Despreads a chip stream that is known to be error-free.
    ///
    /// Returns `None` when the length is not a multiple of 32 or some block
    /// matches no sequence exactly.
    pub fn despread_exact(&self, chips: &[u8]) -> Option<Vec<u8>> {
        if !chips.len().is_multiple_of(CHIPS_PER_SYMBOL) {
            return None;
        }
        chips
            .chunks(CHIPS_PER_SYMBOL)
            .map(|block| {
                self.sequences
                    .iter()
                    .position(|seq| seq[..] == *block)
                    .map(|p| p as u8)
            })
            .collect()
    }

    /// Soft despreading: for each 32-chip block returns the symbol with the
    /// smallest Hamming distance together with that distance.
    ///
    /// A block decodes *correctly* as long as fewer chips are corrupted than
    /// half the minimum inter-sequence distance — the DSSS processing gain.
    ///
    /// # Panics
    ///
    /// Panics if `chips.len()` is not a multiple of 32.
    pub fn despread(&self, chips: &[u8]) -> Vec<(u8, u32)> {
        assert_eq!(
            chips.len() % CHIPS_PER_SYMBOL,
            0,
            "chip stream length must be a multiple of {CHIPS_PER_SYMBOL}"
        );
        chips
            .chunks(CHIPS_PER_SYMBOL)
            .map(|block| self.best_match(block))
            .collect()
    }

    /// Returns `(symbol, hamming_distance)` of the closest sequence.
    pub fn best_match(&self, block: &[u8]) -> (u8, u32) {
        let mut best = (0u8, u32::MAX);
        for (sym, seq) in self.sequences.iter().enumerate() {
            let d = hamming(seq, block);
            if d < best.1 {
                best = (sym as u8, d);
            }
        }
        best
    }

    /// Minimum pairwise Hamming distance across all sequence pairs.
    ///
    /// Half of this (rounded down) is the per-symbol chip-error correction
    /// capability of the despreader.
    pub fn min_distance(&self) -> u32 {
        let mut min = u32::MAX;
        for i in 0..NUM_SYMBOLS {
            for j in (i + 1)..NUM_SYMBOLS {
                min = min.min(hamming(&self.sequences[i], &self.sequences[j]));
            }
        }
        min
    }
}

/// Hamming distance between two chip blocks.
///
/// # Panics
///
/// Panics if the blocks differ in length.
pub fn hamming(a: &[u8], b: &[u8]) -> u32 {
    assert_eq!(a.len(), b.len(), "hamming distance needs equal lengths");
    a.iter().zip(b).map(|(x, y)| u32::from(x != y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_sequence_is_balancedish() {
        // The standard base sequence has 16 ones and 16 zeros.
        let ones: u32 = BASE.iter().map(|&c| u32::from(c)).sum();
        assert_eq!(ones, 16);
    }

    #[test]
    fn sequences_are_distinct() {
        let t = ChipTable::new();
        for i in 0..NUM_SYMBOLS {
            for j in (i + 1)..NUM_SYMBOLS {
                assert_ne!(t.sequences[i], t.sequences[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn min_distance_supports_error_correction() {
        let t = ChipTable::new();
        let d = t.min_distance();
        // The standard's sequence family keeps pairs at least 12 chips apart.
        assert!(d >= 12, "min pairwise distance {d} too small");
    }

    #[test]
    fn spread_despread_roundtrip() {
        let t = ChipTable::new();
        let symbols: Vec<u8> = (0..16).collect();
        let chips = t.spread(&symbols);
        assert_eq!(chips.len(), 16 * CHIPS_PER_SYMBOL);
        assert_eq!(t.despread_exact(&chips).unwrap(), symbols);
    }

    #[test]
    fn despread_tolerates_chip_errors() {
        let t = ChipTable::new();
        let tolerance = (t.min_distance() - 1) / 2;
        for sym in 0..16u8 {
            let mut chips = t.sequence(sym).to_vec();
            // Corrupt `tolerance` chips spread across the block.
            for e in 0..tolerance as usize {
                let idx = (e * 7) % CHIPS_PER_SYMBOL;
                chips[idx] ^= 1;
            }
            let (decoded, dist) = t.best_match(&chips);
            assert_eq!(
                decoded, sym,
                "symbol {sym} flipped after {tolerance} errors"
            );
            assert_eq!(dist, tolerance);
        }
    }

    #[test]
    fn despread_exact_rejects_bad_lengths() {
        let t = ChipTable::new();
        assert!(t.despread_exact(&[1, 0, 1]).is_none());
    }

    #[test]
    fn despread_exact_rejects_unknown_blocks() {
        let t = ChipTable::new();
        let mut chips = t.sequence(3).to_vec();
        chips[0] ^= 1;
        assert!(t.despread_exact(&chips).is_none());
    }

    #[test]
    fn conjugated_sequences_invert_odd_chips() {
        let t = ChipTable::new();
        for sym in 0..8u8 {
            let lo = t.sequence(sym);
            let hi = t.sequence(sym + 8);
            for i in 0..CHIPS_PER_SYMBOL {
                if i % 2 == 0 {
                    assert_eq!(lo[i], hi[i]);
                } else {
                    assert_ne!(lo[i], hi[i]);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn spread_rejects_wide_symbols() {
        ChipTable::new().spread(&[16]);
    }
}
