//! A streaming ZigBee receiver: preamble synchronization, SFD hunt,
//! PHR/PSDU framing — and an account of the decode time an EmuBee burst
//! *wastes* (the paper's stealthiness mechanism, §II.A.2).
//!
//! "If a ZigBee packet only has the preamble … the ZigBee receiver will
//! process it into the decoding state. However, over a period of time,
//! nothing can be decoded. Meanwhile, the hardware resource is being
//! occupied and cannot be used to process other packets."

use crate::zigbee::frame::{PhyFrame, MAX_PSDU_LEN};

/// Minimum number of zero symbols that trigger preamble sync (the
/// standard preamble is 8 zero symbols; real radios sync on fewer).
pub const SYNC_SYMBOLS: usize = 6;

/// Low/high nibbles of the SFD byte `0x7A`, in over-the-air order.
const SFD_SYMBOLS: [u8; 2] = [0xA, 0x7];

/// One receiver event produced while scanning a symbol stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxEvent {
    /// A complete, valid frame was recovered.
    Frame {
        /// The recovered frame.
        frame: PhyFrame,
        /// Symbols consumed from sync to the end of the PSDU.
        symbols_used: usize,
    },
    /// The radio synchronized and started decoding but never completed a
    /// valid frame — the decode window was wasted (the EmuBee outcome).
    Wasted {
        /// Symbols spent in the failed decode attempt.
        symbols_used: usize,
        /// Human-readable reason (diagnostics only).
        reason: WasteReason,
    },
}

/// Why a decode attempt produced nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WasteReason {
    /// Preamble seen but the SFD never followed.
    NoSfd,
    /// SFD seen but the length byte was invalid (> 127).
    BadLength,
    /// The stream ended before the advertised payload completed.
    Truncated,
}

/// Result of scanning a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanReport {
    /// Events in stream order.
    pub events: Vec<RxEvent>,
    /// Total symbols scanned.
    pub total_symbols: usize,
}

impl ScanReport {
    /// Valid frames recovered.
    pub fn frames(&self) -> impl Iterator<Item = &PhyFrame> {
        self.events.iter().filter_map(|e| match e {
            RxEvent::Frame { frame, .. } => Some(frame),
            RxEvent::Wasted { .. } => None,
        })
    }

    /// Fraction of scanned symbols spent in decode attempts that
    /// produced nothing — the stealth jammer's damage metric.
    pub fn wasted_fraction(&self) -> f64 {
        if self.total_symbols == 0 {
            return 0.0;
        }
        let wasted: usize = self
            .events
            .iter()
            .map(|e| match e {
                RxEvent::Wasted { symbols_used, .. } => *symbols_used,
                RxEvent::Frame { .. } => 0,
            })
            .sum();
        wasted as f64 / self.total_symbols as f64
    }
}

/// Scans a 4-bit symbol stream the way a ZigBee radio does: hunt for a
/// preamble run, lock, expect the SFD, read the PHR, then the PSDU.
///
/// # Example
///
/// ```
/// use ctjam_phy::zigbee::frame::PhyFrame;
/// use ctjam_phy::zigbee::rx::scan_symbols;
///
/// let frame = PhyFrame::new(b"hi".to_vec()).unwrap();
/// let report = scan_symbols(&frame.to_symbols());
/// assert_eq!(report.frames().count(), 1);
/// assert_eq!(report.wasted_fraction(), 0.0);
/// ```
pub fn scan_symbols(symbols: &[u8]) -> ScanReport {
    let mut events = Vec::new();
    let mut i = 0usize;
    while i < symbols.len() {
        // Hunt: find a run of SYNC_SYMBOLS zero symbols.
        let mut run = 0usize;
        let mut sync_at = None;
        let mut j = i;
        while j < symbols.len() {
            if symbols[j] == 0 {
                run += 1;
                if run >= SYNC_SYMBOLS {
                    sync_at = Some(j + 1 - run);
                    break;
                }
            } else {
                run = 0;
            }
            j += 1;
        }
        let Some(start) = sync_at else {
            break; // No further sync in the stream.
        };

        // Locked. Skip any further zero symbols (rest of the preamble).
        let mut k = start;
        while k < symbols.len() && symbols[k] == 0 {
            k += 1;
        }

        // Expect the SFD nibbles.
        if k + 1 >= symbols.len() {
            events.push(RxEvent::Wasted {
                symbols_used: symbols.len() - start,
                reason: WasteReason::NoSfd,
            });
            i = symbols.len();
            continue;
        }
        if symbols[k] != SFD_SYMBOLS[0] || symbols[k + 1] != SFD_SYMBOLS[1] {
            events.push(RxEvent::Wasted {
                symbols_used: k + 2 - start,
                reason: WasteReason::NoSfd,
            });
            i = k + 1; // Resume hunting after the failed position.
            continue;
        }
        k += 2;

        // PHR: one byte (two nibbles, low first).
        if k + 1 >= symbols.len() {
            events.push(RxEvent::Wasted {
                symbols_used: symbols.len() - start,
                reason: WasteReason::Truncated,
            });
            i = symbols.len();
            continue;
        }
        let length = usize::from(symbols[k] | (symbols[k + 1] << 4));
        k += 2;
        if length > MAX_PSDU_LEN {
            events.push(RxEvent::Wasted {
                symbols_used: k - start,
                reason: WasteReason::BadLength,
            });
            i = k;
            continue;
        }

        // PSDU: 2·length nibbles.
        if k + 2 * length > symbols.len() {
            events.push(RxEvent::Wasted {
                symbols_used: symbols.len() - start,
                reason: WasteReason::Truncated,
            });
            i = symbols.len();
            continue;
        }
        let psdu: Vec<u8> = symbols[k..k + 2 * length]
            .chunks(2)
            .map(|pair| pair[0] | (pair[1] << 4))
            .collect();
        k += 2 * length;
        events.push(RxEvent::Frame {
            frame: PhyFrame::new(psdu).expect("length bounded by PHR check"),
            symbols_used: k - start,
        });
        i = k;
    }
    ScanReport {
        events,
        total_symbols: symbols.len(),
    }
}

/// Convenience: demodulates a baseband waveform with `modulator` and
/// scans the resulting symbol stream.
///
/// ```
/// use ctjam_phy::zigbee::frame::PhyFrame;
/// use ctjam_phy::zigbee::oqpsk::OqpskModulator;
/// use ctjam_phy::zigbee::rx::scan_waveform;
///
/// let modulator = OqpskModulator::with_oversampling(10);
/// let frame = PhyFrame::new(b"hi".to_vec()).unwrap();
/// let wave = modulator.modulate_symbols(&frame.to_symbols());
/// let report = scan_waveform(&modulator, &wave);
/// assert_eq!(report.frames().count(), 1);
/// ```
pub fn scan_waveform(
    modulator: &crate::zigbee::oqpsk::OqpskModulator,
    wave: &[crate::complex::Complex64],
) -> ScanReport {
    scan_symbols(&modulator.demodulate(wave))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize) -> Vec<u8> {
        // Nonzero symbols that never form a preamble.
        (0..n).map(|i| 1 + (i % 15) as u8).collect()
    }

    #[test]
    fn finds_a_frame_in_noise() {
        let frame = PhyFrame::new(b"sensor".to_vec()).unwrap();
        let mut stream = noise(40);
        stream.extend(frame.to_symbols());
        stream.extend(noise(30));
        let report = scan_symbols(&stream);
        let frames: Vec<_> = report.frames().collect();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].psdu(), b"sensor");
    }

    #[test]
    fn finds_back_to_back_frames() {
        let a = PhyFrame::new(vec![1, 2, 3]).unwrap();
        let b = PhyFrame::new(vec![9; 20]).unwrap();
        let mut stream = a.to_symbols();
        stream.extend(b.to_symbols());
        let report = scan_symbols(&stream);
        assert_eq!(report.frames().count(), 2);
        assert_eq!(report.wasted_fraction(), 0.0);
    }

    #[test]
    fn preamble_only_burst_wastes_the_decode_window() {
        // The paper's EmuBee example: preamble, then garbage, no SFD.
        let mut stream = vec![0u8; 16];
        stream.extend(noise(60));
        let report = scan_symbols(&stream);
        assert_eq!(report.frames().count(), 0);
        assert!(matches!(
            report.events[0],
            RxEvent::Wasted {
                reason: WasteReason::NoSfd,
                ..
            }
        ));
        assert!(report.wasted_fraction() > 0.0);
    }

    #[test]
    fn truncated_frame_reports_waste() {
        let frame = PhyFrame::new(vec![7; 50]).unwrap();
        let symbols = frame.to_symbols();
        let cut = &symbols[..symbols.len() - 10];
        let report = scan_symbols(cut);
        assert_eq!(report.frames().count(), 0);
        assert!(matches!(
            report.events[0],
            RxEvent::Wasted {
                reason: WasteReason::Truncated,
                ..
            }
        ));
    }

    #[test]
    fn bad_length_detected() {
        // Preamble + SFD + PHR advertising 200 bytes (> 127).
        let mut stream = vec![0u8; 8];
        stream.extend([0xA, 0x7]); // SFD
        stream.extend([200 & 0x0F, 200 >> 4]); // PHR = 200
        stream.extend(noise(20));
        let report = scan_symbols(&stream);
        assert!(matches!(
            report.events[0],
            RxEvent::Wasted {
                reason: WasteReason::BadLength,
                ..
            }
        ));
    }

    #[test]
    fn pure_noise_never_syncs() {
        let report = scan_symbols(&noise(500));
        assert!(report.events.is_empty());
        assert_eq!(report.wasted_fraction(), 0.0);
    }

    #[test]
    fn frame_after_failed_decoy_still_found() {
        // Decoy (preamble + junk), then a legitimate frame: the radio
        // wastes the first window but recovers for the second.
        let mut stream = vec![0u8; 12];
        stream.extend([0x3, 0x1, 0x9, 0x9]); // junk, not SFD
        stream.extend(noise(10));
        let frame = PhyFrame::new(b"ok".to_vec()).unwrap();
        stream.extend(frame.to_symbols());
        let report = scan_symbols(&stream);
        assert_eq!(report.frames().count(), 1);
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, RxEvent::Wasted { .. })));
    }

    #[test]
    fn scan_waveform_matches_symbol_scan() {
        let modulator = crate::zigbee::oqpsk::OqpskModulator::with_oversampling(8);
        let frame = PhyFrame::new(vec![3, 1, 4]).unwrap();
        let wave = modulator.modulate_symbols(&frame.to_symbols());
        let report = scan_waveform(&modulator, &wave);
        assert_eq!(report.frames().count(), 1);
    }

    #[test]
    fn empty_stream() {
        let report = scan_symbols(&[]);
        assert!(report.events.is_empty());
        assert_eq!(report.wasted_fraction(), 0.0);
    }
}
