//! Offset-QPSK modulation with half-sine pulse shaping (802.15.4 2.4 GHz).
//!
//! Even-indexed chips modulate the I branch and odd-indexed chips the Q
//! branch, with the Q branch delayed by one chip period `Tc`. Each chip is
//! shaped by a half-sine pulse spanning `2·Tc`, so the envelope is
//! constant — the property that lets a Wi-Fi OFDM transmitter approximate
//! the waveform surprisingly well (the EmuBee attack).

use crate::complex::Complex64;
use crate::zigbee::chips::{ChipTable, CHIPS_PER_SYMBOL};
use std::f64::consts::PI;

/// O-QPSK modulator/demodulator with a configurable oversampling factor.
///
/// The oversampling factor is the number of complex samples per chip
/// period; 10 samples/chip at the 2 Mchip/s rate corresponds to the 20 MHz
/// sample rate of a Wi-Fi front end, which is what the emulation path uses.
///
/// # Example
///
/// ```
/// use ctjam_phy::zigbee::oqpsk::OqpskModulator;
///
/// let m = OqpskModulator::with_oversampling(10);
/// let wave = m.modulate_symbols(&[0x5]);
/// let decoded = m.demodulate(&wave);
/// assert_eq!(decoded, vec![0x5]);
/// ```
#[derive(Debug, Clone)]
pub struct OqpskModulator {
    oversampling: usize,
    table: ChipTable,
}

impl Default for OqpskModulator {
    fn default() -> Self {
        Self::with_oversampling(10)
    }
}

impl OqpskModulator {
    /// Creates a modulator producing `oversampling` samples per chip.
    ///
    /// # Panics
    ///
    /// Panics if `oversampling == 0`.
    pub fn with_oversampling(oversampling: usize) -> Self {
        assert!(oversampling > 0, "oversampling factor must be positive");
        OqpskModulator {
            oversampling,
            table: ChipTable::new(),
        }
    }

    /// Samples per chip period.
    pub fn oversampling(&self) -> usize {
        self.oversampling
    }

    /// Samples produced per 4-bit data symbol.
    pub fn samples_per_symbol(&self) -> usize {
        CHIPS_PER_SYMBOL * self.oversampling
    }

    /// The chip table used for spreading/despreading.
    pub fn chip_table(&self) -> &ChipTable {
        &self.table
    }

    /// Modulates 4-bit data symbols into a complex baseband waveform.
    ///
    /// # Panics
    ///
    /// Panics if any symbol is `>= 16`.
    pub fn modulate_symbols(&self, symbols: &[u8]) -> Vec<Complex64> {
        let chips = self.table.spread(symbols);
        self.modulate_chips(&chips)
    }

    /// Modulates a raw chip stream (values 0/1) into baseband samples.
    ///
    /// The output has `chips.len() · oversampling` samples; the Q branch's
    /// half-chip offset is folded into the pulse placement so the waveform
    /// length stays aligned to the chip grid (tail truncated like a real
    /// radio's symbol gating).
    pub fn modulate_chips(&self, chips: &[u8]) -> Vec<Complex64> {
        let os = self.oversampling;
        let n = chips.len() * os;
        let mut wave = vec![Complex64::ZERO; n];
        // Each chip k occupies a half-sine spanning 2 chip periods starting
        // at sample k·os (I for even k, Q for odd k, which realizes the
        // Tc offset between branches).
        for (k, &chip) in chips.iter().enumerate() {
            let sign = if chip == 1 { 1.0 } else { -1.0 };
            let start = k * os;
            for s in 0..(2 * os) {
                let idx = start + s;
                if idx >= n {
                    break;
                }
                let pulse = (PI * s as f64 / (2.0 * os as f64)).sin();
                if k % 2 == 0 {
                    wave[idx].re += sign * pulse;
                } else {
                    wave[idx].im += sign * pulse;
                }
            }
        }
        wave
    }

    /// Recovers hard chip decisions from a waveform via matched filtering.
    ///
    /// Correlates each chip slot against the half-sine pulse on the
    /// appropriate branch and takes the sign.
    pub fn chips_from_waveform(&self, wave: &[Complex64]) -> Vec<u8> {
        let os = self.oversampling;
        let num_chips = wave.len() / os;
        let mut chips = Vec::with_capacity(num_chips);
        for k in 0..num_chips {
            let start = k * os;
            let mut corr = 0.0;
            for s in 0..(2 * os) {
                let idx = start + s;
                if idx >= wave.len() {
                    break;
                }
                let pulse = (PI * s as f64 / (2.0 * os as f64)).sin();
                let v = if k % 2 == 0 {
                    wave[idx].re
                } else {
                    wave[idx].im
                };
                corr += v * pulse;
            }
            chips.push(u8::from(corr >= 0.0));
        }
        chips
    }

    /// Full receive path: matched-filter chip decisions followed by
    /// minimum-distance despreading.
    ///
    /// Returns one 4-bit symbol per complete 32-chip block; trailing
    /// partial blocks are dropped.
    pub fn demodulate(&self, wave: &[Complex64]) -> Vec<u8> {
        let mut chips = self.chips_from_waveform(wave);
        chips.truncate(chips.len() - chips.len() % CHIPS_PER_SYMBOL);
        self.table
            .despread(&chips)
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    }

    /// Like [`OqpskModulator::demodulate`] but also reports the per-symbol
    /// chip (Hamming) distance, a confidence measure.
    pub fn demodulate_with_distance(&self, wave: &[Complex64]) -> Vec<(u8, u32)> {
        let mut chips = self.chips_from_waveform(wave);
        chips.truncate(chips.len() - chips.len() % CHIPS_PER_SYMBOL);
        self.table.despread(&chips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::mean_power;

    #[test]
    fn symbol_roundtrip_all_symbols() {
        let m = OqpskModulator::with_oversampling(8);
        let symbols: Vec<u8> = (0..16).collect();
        let wave = m.modulate_symbols(&symbols);
        assert_eq!(wave.len(), 16 * m.samples_per_symbol());
        assert_eq!(m.demodulate(&wave), symbols);
    }

    #[test]
    fn roundtrip_survives_awgn() {
        let m = OqpskModulator::with_oversampling(10);
        let symbols = vec![0x1, 0xE, 0x7, 0x8, 0x0, 0xF];
        let wave = m.modulate_symbols(&symbols);
        // Deterministic pseudo-noise at ~0 dB SNR per sample.
        let mut k = 12345u32;
        let noisy: Vec<Complex64> = wave
            .iter()
            .map(|&z| {
                k = k.wrapping_mul(1664525).wrapping_add(1013904223);
                let n1 = ((k >> 16) as f64 / 65536.0 - 0.5) * 2.0;
                k = k.wrapping_mul(1664525).wrapping_add(1013904223);
                let n2 = ((k >> 16) as f64 / 65536.0 - 0.5) * 2.0;
                z + Complex64::new(n1, n2)
            })
            .collect();
        assert_eq!(m.demodulate(&noisy), symbols, "DSSS should absorb noise");
    }

    #[test]
    fn envelope_is_nearly_constant_midstream() {
        let m = OqpskModulator::with_oversampling(16);
        let wave = m.modulate_symbols(&[0x3, 0x9, 0xC]);
        // Skip the ramp-up/ramp-down at the edges.
        let os = m.oversampling();
        let body = &wave[2 * os..wave.len() - 2 * os];
        let avg = mean_power(body);
        for z in body {
            let p = z.norm_sqr();
            assert!(
                (p - avg).abs() / avg < 0.75,
                "O-QPSK half-sine envelope should be near-constant: {p} vs {avg}"
            );
        }
    }

    #[test]
    fn oversampling_factors_agree() {
        for os in [2usize, 4, 10, 20] {
            let m = OqpskModulator::with_oversampling(os);
            let symbols = vec![0xA, 0x5];
            assert_eq!(
                m.demodulate(&m.modulate_symbols(&symbols)),
                symbols,
                "os={os}"
            );
        }
    }

    #[test]
    fn chip_level_roundtrip() {
        let m = OqpskModulator::with_oversampling(6);
        let chips: Vec<u8> = (0..64).map(|i| u8::from(i % 3 == 0)).collect();
        let wave = m.modulate_chips(&chips);
        assert_eq!(m.chips_from_waveform(&wave), chips);
    }

    #[test]
    #[should_panic]
    fn zero_oversampling_panics() {
        OqpskModulator::with_oversampling(0);
    }
}
