//! ZigBee (IEEE 802.15.4) PHY frame format and the EmuBee stealth property.
//!
//! A compliant PHY frame is `preamble (0x00000000) | SFD (0x7A) | PHR
//! (1 byte length) | PSDU (≤ 127 bytes)` — Fig. 3 of the paper. A receiver
//! that detects a valid chip stream locks on and decodes; if the frame
//! structure never materializes (no SFD, or the advertised length never
//! completes), the radio wastes the decode window and reports nothing.
//! That is exactly how an EmuBee jamming burst stays hidden: valid
//! *waveform*, invalid *frame*.

use std::fmt;

/// Maximum PSDU length in bytes.
pub const MAX_PSDU_LEN: usize = 127;

/// The 4-byte all-zero preamble.
pub const PREAMBLE: [u8; 4] = [0x00, 0x00, 0x00, 0x00];

/// Start-of-frame delimiter.
pub const SFD: u8 = 0x7A;

/// Errors produced when building or parsing a PHY frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The payload exceeds [`MAX_PSDU_LEN`].
    PayloadTooLong {
        /// Offending payload length.
        len: usize,
    },
    /// The byte stream is shorter than the fixed header.
    Truncated {
        /// Number of bytes seen.
        len: usize,
    },
    /// The preamble bytes were not all zero.
    BadPreamble,
    /// The start-of-frame delimiter was not `0x7A`.
    BadSfd {
        /// The byte found in the SFD position.
        found: u8,
    },
    /// The PHR advertised more payload than the stream contains.
    LengthMismatch {
        /// Length advertised by the PHR.
        advertised: usize,
        /// Payload bytes actually present.
        available: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::PayloadTooLong { len } => {
                write!(
                    f,
                    "psdu of {len} bytes exceeds the {MAX_PSDU_LEN}-byte limit"
                )
            }
            FrameError::Truncated { len } => {
                write!(f, "byte stream of {len} bytes is shorter than a phy header")
            }
            FrameError::BadPreamble => write!(f, "preamble is not four zero bytes"),
            FrameError::BadSfd { found } => {
                write!(f, "start-of-frame delimiter is {found:#04x}, expected 0x7a")
            }
            FrameError::LengthMismatch {
                advertised,
                available,
            } => write!(
                f,
                "phr advertises {advertised} payload bytes but only {available} are present"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// A validated ZigBee PHY frame.
///
/// # Example
///
/// ```
/// use ctjam_phy::zigbee::frame::PhyFrame;
///
/// let frame = PhyFrame::new(b"hello".to_vec())?;
/// let bytes = frame.to_bytes();
/// let parsed = PhyFrame::parse(&bytes)?;
/// assert_eq!(parsed.psdu(), b"hello");
/// # Ok::<(), ctjam_phy::zigbee::frame::FrameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhyFrame {
    psdu: Vec<u8>,
}

impl PhyFrame {
    /// Wraps a payload in a PHY frame.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::PayloadTooLong`] when the payload exceeds
    /// [`MAX_PSDU_LEN`] bytes.
    pub fn new(psdu: Vec<u8>) -> Result<Self, FrameError> {
        if psdu.len() > MAX_PSDU_LEN {
            return Err(FrameError::PayloadTooLong { len: psdu.len() });
        }
        Ok(PhyFrame { psdu })
    }

    /// The payload carried by this frame.
    pub fn psdu(&self) -> &[u8] {
        &self.psdu
    }

    /// Total over-the-air length in bytes (preamble + SFD + PHR + PSDU).
    pub fn wire_len(&self) -> usize {
        PREAMBLE.len() + 1 + 1 + self.psdu.len()
    }

    /// Serializes to the over-the-air byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&PREAMBLE);
        out.push(SFD);
        out.push(self.psdu.len() as u8);
        out.extend_from_slice(&self.psdu);
        out
    }

    /// Serializes to the 4-bit symbol stream fed to the O-QPSK modulator
    /// (low nibble of each byte first, per 802.15.4).
    pub fn to_symbols(&self) -> Vec<u8> {
        bytes_to_symbols(&self.to_bytes())
    }

    /// Parses and validates an over-the-air byte stream.
    ///
    /// # Errors
    ///
    /// Returns the specific [`FrameError`] describing the first violation
    /// encountered: truncation, bad preamble, bad SFD, or a PHR length that
    /// the stream cannot satisfy.
    pub fn parse(bytes: &[u8]) -> Result<Self, FrameError> {
        if bytes.len() < PREAMBLE.len() + 2 {
            return Err(FrameError::Truncated { len: bytes.len() });
        }
        if bytes[..PREAMBLE.len()] != PREAMBLE {
            return Err(FrameError::BadPreamble);
        }
        let sfd = bytes[PREAMBLE.len()];
        if sfd != SFD {
            return Err(FrameError::BadSfd { found: sfd });
        }
        let advertised = bytes[PREAMBLE.len() + 1] as usize;
        let payload = &bytes[PREAMBLE.len() + 2..];
        if advertised > MAX_PSDU_LEN {
            return Err(FrameError::PayloadTooLong { len: advertised });
        }
        if payload.len() < advertised {
            return Err(FrameError::LengthMismatch {
                advertised,
                available: payload.len(),
            });
        }
        Ok(PhyFrame {
            psdu: payload[..advertised].to_vec(),
        })
    }

    /// Parses a symbol stream (inverse of [`PhyFrame::to_symbols`]).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Truncated`] for odd-length symbol streams, or
    /// whatever [`PhyFrame::parse`] reports for the reassembled bytes.
    pub fn parse_symbols(symbols: &[u8]) -> Result<Self, FrameError> {
        if !symbols.len().is_multiple_of(2) {
            return Err(FrameError::Truncated {
                len: symbols.len() / 2,
            });
        }
        PhyFrame::parse(&symbols_to_bytes(symbols))
    }
}

/// Splits bytes into 4-bit symbols, low nibble first.
pub fn bytes_to_symbols(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(b & 0x0F);
        out.push(b >> 4);
    }
    out
}

/// Reassembles 4-bit symbols (low nibble first) into bytes.
///
/// # Panics
///
/// Panics if `symbols.len()` is odd or any symbol is `>= 16`.
pub fn symbols_to_bytes(symbols: &[u8]) -> Vec<u8> {
    assert!(
        symbols.len().is_multiple_of(2),
        "symbol stream must pair into bytes"
    );
    symbols
        .chunks(2)
        .map(|pair| {
            assert!(pair[0] < 16 && pair[1] < 16, "symbols must be 4 bits");
            pair[0] | (pair[1] << 4)
        })
        .collect()
}

/// Classifies a decoded byte stream the way a victim radio would.
///
/// * `Frame` — a compliant frame: the receiver delivers a packet.
/// * `Stealthy` — chips decoded but framing never validated: the receiver
///   burned the decode window for nothing (the EmuBee case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxOutcome {
    /// A valid frame was recovered.
    Frame(PhyFrame),
    /// Decodable chips that never satisfied the frame format.
    Stealthy(FrameError),
}

/// Runs the victim's frame validation over a decoded byte stream.
pub fn classify_rx(bytes: &[u8]) -> RxOutcome {
    match PhyFrame::parse(bytes) {
        Ok(frame) => RxOutcome::Frame(frame),
        Err(e) => RxOutcome::Stealthy(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let frame = PhyFrame::new(vec![1, 2, 3, 4, 5]).unwrap();
        assert_eq!(PhyFrame::parse(&frame.to_bytes()).unwrap(), frame);
    }

    #[test]
    fn symbol_roundtrip() {
        let frame = PhyFrame::new((0..=40u8).collect()).unwrap();
        assert_eq!(PhyFrame::parse_symbols(&frame.to_symbols()).unwrap(), frame);
    }

    #[test]
    fn empty_payload_is_valid() {
        let frame = PhyFrame::new(Vec::new()).unwrap();
        assert_eq!(frame.wire_len(), 6);
        assert_eq!(
            PhyFrame::parse(&frame.to_bytes()).unwrap().psdu(),
            &[] as &[u8]
        );
    }

    #[test]
    fn max_payload_accepted_and_over_rejected() {
        assert!(PhyFrame::new(vec![0; MAX_PSDU_LEN]).is_ok());
        assert_eq!(
            PhyFrame::new(vec![0; MAX_PSDU_LEN + 1]),
            Err(FrameError::PayloadTooLong { len: 128 })
        );
    }

    #[test]
    fn preamble_only_is_stealthy() {
        // The paper's example: preamble present, delimiter and rest missing.
        // The receiver enters decode but nothing valid materializes.
        match classify_rx(&[0, 0, 0, 0, 0x13, 0x55, 0x99]) {
            RxOutcome::Stealthy(FrameError::BadSfd { found }) => assert_eq!(found, 0x13),
            other => panic!("expected stealthy outcome, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_detected() {
        assert_eq!(
            PhyFrame::parse(&[0, 0, 0]),
            Err(FrameError::Truncated { len: 3 })
        );
    }

    #[test]
    fn bad_preamble_detected() {
        assert_eq!(
            PhyFrame::parse(&[0, 1, 0, 0, SFD, 0]),
            Err(FrameError::BadPreamble)
        );
    }

    #[test]
    fn length_mismatch_detected() {
        let bytes = [0, 0, 0, 0, SFD, 10, 1, 2, 3];
        assert_eq!(
            PhyFrame::parse(&bytes),
            Err(FrameError::LengthMismatch {
                advertised: 10,
                available: 3
            })
        );
    }

    #[test]
    fn extra_trailing_bytes_ignored() {
        let mut bytes = PhyFrame::new(vec![9, 9]).unwrap().to_bytes();
        bytes.extend_from_slice(&[0xAA, 0xBB]);
        assert_eq!(PhyFrame::parse(&bytes).unwrap().psdu(), &[9, 9]);
    }

    #[test]
    fn nibble_order_is_low_first() {
        assert_eq!(bytes_to_symbols(&[0x7A]), vec![0xA, 0x7]);
        assert_eq!(symbols_to_bytes(&[0xA, 0x7]), vec![0x7A]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = FrameError::BadSfd { found: 0x13 };
        assert!(e.to_string().contains("0x13"));
    }
}
