//! IEEE 802.15.4 (ZigBee) 2.4 GHz PHY: DSSS spreading, O-QPSK modulation,
//! and the PHY frame format.
//!
//! The 2.4 GHz PHY maps every 4-bit data symbol onto one of 16
//! quasi-orthogonal 32-chip pseudo-noise sequences ([`chips`]), transmits
//! chips with offset-QPSK and half-sine pulse shaping ([`oqpsk`]), and wraps
//! payloads in a preamble/SFD/PHR frame ([`frame`]).
//!
//! The jammer's stealth property analyzed in the paper lives at the frame
//! layer: an *EmuBee* signal is a valid chip stream (so the victim's radio
//! locks on and burns decode time) that never satisfies the frame format
//! (so no "jamming packet" is ever surfaced to higher layers).

pub mod chips;
pub mod frame;
pub mod oqpsk;
pub mod rx;

/// Nominal ZigBee channel bandwidth in Hz (2 MHz).
pub const CHANNEL_BANDWIDTH_HZ: f64 = 2.0e6;

/// Chip rate of the 2.4 GHz PHY in chips/second.
pub const CHIP_RATE: f64 = 2.0e6;

/// Data symbol rate (4 bits per symbol, 32 chips per symbol).
pub const SYMBOL_RATE: f64 = CHIP_RATE / 32.0;

/// Raw bit rate of the 2.4 GHz PHY: 250 kbit/s.
pub const BIT_RATE: f64 = SYMBOL_RATE * 4.0;

/// Number of selectable ZigBee channels on the 2.4 GHz band (channels 11–26).
pub const NUM_CHANNELS: usize = 16;

/// Returns the center frequency in Hz of 2.4 GHz-band channel `k ∈ 11..=26`.
///
/// # Panics
///
/// Panics if `k` is outside `11..=26`.
///
/// ```
/// use ctjam_phy::zigbee::channel_center_hz;
/// assert_eq!(channel_center_hz(11), 2.405e9);
/// assert_eq!(channel_center_hz(26), 2.480e9);
/// ```
pub fn channel_center_hz(k: u8) -> f64 {
    assert!(
        (11..=26).contains(&k),
        "2.4 GHz channels are 11..=26, got {k}"
    );
    2.405e9 + 5.0e6 * f64::from(k - 11)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_consistent() {
        assert_eq!(BIT_RATE, 250_000.0);
        assert_eq!(SYMBOL_RATE, 62_500.0);
    }

    #[test]
    fn channel_grid_is_5mhz() {
        for k in 11..26u8 {
            assert_eq!(channel_center_hz(k + 1) - channel_center_hz(k), 5.0e6);
        }
    }

    #[test]
    #[should_panic]
    fn channel_out_of_range_panics() {
        channel_center_hz(10);
    }
}
