//! The IEEE 802.15.4 frame check sequence: CRC-16/CCITT (polynomial
//! `x¹⁶ + x¹² + x⁵ + 1`, i.e. `0x1021` reflected to `0x8408`), initial
//! value 0, transmitted little-endian.

/// Computes the 802.15.4 FCS over a byte slice.
///
/// ```
/// use ctjam_net::fcs::crc16;
/// // Appending a frame's own FCS (little-endian) yields remainder 0.
/// let mut data = b"ctjam".to_vec();
/// let fcs = crc16(&data);
/// data.extend_from_slice(&fcs.to_le_bytes());
/// assert_eq!(crc16(&data), 0);
/// ```
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &byte in data {
        crc ^= u16::from(byte);
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0x8408;
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

/// Appends the FCS to a frame body, producing the on-air bytes.
pub fn append_fcs(mut body: Vec<u8>) -> Vec<u8> {
    let fcs = crc16(&body);
    body.extend_from_slice(&fcs.to_le_bytes());
    body
}

/// Verifies and strips a trailing FCS. Returns `None` when the check
/// fails or the buffer is too short to hold one.
pub fn verify_and_strip(bytes: &[u8]) -> Option<&[u8]> {
    if bytes.len() < 2 {
        return None;
    }
    let (body, fcs_bytes) = bytes.split_at(bytes.len() - 2);
    let expected = u16::from_le_bytes([fcs_bytes[0], fcs_bytes[1]]);
    (crc16(body) == expected).then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_crc_is_zero() {
        assert_eq!(crc16(&[]), 0);
    }

    #[test]
    fn roundtrip() {
        let framed = append_fcs(vec![1, 2, 3, 4, 5]);
        assert_eq!(verify_and_strip(&framed).unwrap(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut framed = append_fcs(b"payload".to_vec());
        for byte in 0..framed.len() {
            for bit in 0..8 {
                framed[byte] ^= 1 << bit;
                assert!(
                    verify_and_strip(&framed).is_none(),
                    "missed flip {byte}:{bit}"
                );
                framed[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn short_buffers_rejected() {
        assert!(verify_and_strip(&[]).is_none());
        assert!(verify_and_strip(&[0xFF]).is_none());
    }

    #[test]
    fn known_vector() {
        // CRC-16/KERMIT ("123456789") = 0x2189 — same polynomial/reflect,
        // init 0, which is the 802.15.4 FCS configuration.
        assert_eq!(crc16(b"123456789"), 0x2189);
    }
}
