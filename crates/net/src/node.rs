//! A peripheral node of the star network.

use crate::frame::{MacFrame, NodeId, MAX_PAYLOAD};

/// A peripheral (sensor) node: holds its radio configuration and produces
/// a stream of data frames toward the hub.
///
/// # Example
///
/// ```
/// use ctjam_net::node::Peripheral;
/// use ctjam_net::frame::{MacFrame, NodeId};
///
/// let mut node = Peripheral::new(NodeId(1), 11, 0);
/// let frame = node.next_data_frame(20);
/// assert!(matches!(frame, MacFrame::Data { src: NodeId(1), seq: 0, .. }));
/// let frame = node.next_data_frame(20);
/// assert!(matches!(frame, MacFrame::Data { seq: 1, .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Peripheral {
    id: NodeId,
    channel: u8,
    power_level: u8,
    next_seq: u16,
    sent: u64,
    acked: u64,
}

impl Peripheral {
    /// Creates a peripheral on a channel with a power level index.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the hub address.
    pub fn new(id: NodeId, channel: u8, power_level: u8) -> Self {
        assert!(id != NodeId::HUB, "peripherals cannot use the hub address");
        Peripheral {
            id,
            channel,
            power_level,
            next_seq: 0,
            sent: 0,
            acked: 0,
        }
    }

    /// The node's address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current channel.
    pub fn channel(&self) -> u8 {
        self.channel
    }

    /// Current transmit power level index.
    pub fn power_level(&self) -> u8 {
        self.power_level
    }

    /// Frames sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Frames acknowledged so far.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Builds the next data frame with a synthetic payload of
    /// `payload_len` bytes (clamped to [`MAX_PAYLOAD`]).
    pub fn next_data_frame(&mut self, payload_len: usize) -> MacFrame {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.sent += 1;
        let len = payload_len.min(MAX_PAYLOAD);
        // Synthetic sensor payload: deterministic pattern keyed by seq so
        // duplicates are detectable end-to-end.
        let payload = (0..len)
            .map(|i| (usize::from(seq) + i) as u8 ^ self.id.0)
            .collect();
        MacFrame::Data {
            src: self.id,
            seq,
            payload,
        }
    }

    /// Processes an ACK from the hub addressed to this node.
    ///
    /// Returns `true` when the ACK matched this node.
    pub fn handle_ack(&mut self, frame: &MacFrame) -> bool {
        if let MacFrame::Ack { dst, .. } = frame {
            if *dst == self.id {
                self.acked += 1;
                return true;
            }
        }
        false
    }

    /// Applies a negotiation announcement addressed to this node,
    /// returning the confirmation frame, or `None` when the announcement
    /// targets someone else.
    pub fn handle_negotiation(&mut self, frame: &MacFrame) -> Option<MacFrame> {
        if let MacFrame::Negotiate {
            dst,
            channel,
            power_level,
        } = frame
        {
            if *dst == self.id {
                self.channel = *channel;
                self.power_level = *power_level;
                return Some(MacFrame::NegotiateAck { src: self.id });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_increment_and_wrap() {
        let mut n = Peripheral::new(NodeId(1), 11, 0);
        n.next_seq = u16::MAX;
        let f = n.next_data_frame(4);
        assert!(matches!(f, MacFrame::Data { seq: u16::MAX, .. }));
        let f = n.next_data_frame(4);
        assert!(matches!(f, MacFrame::Data { seq: 0, .. }));
    }

    #[test]
    fn negotiation_updates_radio_state() {
        let mut n = Peripheral::new(NodeId(2), 11, 0);
        let announce = MacFrame::Negotiate {
            dst: NodeId(2),
            channel: 19,
            power_level: 7,
        };
        let ack = n.handle_negotiation(&announce).unwrap();
        assert_eq!(ack, MacFrame::NegotiateAck { src: NodeId(2) });
        assert_eq!(n.channel(), 19);
        assert_eq!(n.power_level(), 7);
    }

    #[test]
    fn negotiation_for_other_node_ignored() {
        let mut n = Peripheral::new(NodeId(2), 11, 0);
        let announce = MacFrame::Negotiate {
            dst: NodeId(3),
            channel: 19,
            power_level: 7,
        };
        assert!(n.handle_negotiation(&announce).is_none());
        assert_eq!(n.channel(), 11);
    }

    #[test]
    fn ack_accounting() {
        let mut n = Peripheral::new(NodeId(1), 11, 0);
        let _ = n.next_data_frame(8);
        assert!(n.handle_ack(&MacFrame::Ack {
            dst: NodeId(1),
            seq: 0
        }));
        assert!(!n.handle_ack(&MacFrame::Ack {
            dst: NodeId(9),
            seq: 0
        }));
        assert_eq!(n.sent(), 1);
        assert_eq!(n.acked(), 1);
    }

    #[test]
    fn payload_clamped_to_max() {
        let mut n = Peripheral::new(NodeId(1), 11, 0);
        if let MacFrame::Data { payload, .. } = n.next_data_frame(10_000) {
            assert_eq!(payload.len(), MAX_PAYLOAD);
        } else {
            panic!("expected data frame");
        }
    }

    #[test]
    #[should_panic]
    fn hub_address_rejected() {
        Peripheral::new(NodeId::HUB, 11, 0);
    }
}
