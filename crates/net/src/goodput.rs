//! Goodput and slot-utilization accounting (paper §IV.D.2, Fig. 10).
//!
//! *Goodput* counts only useful payload deliveries — ACKs, negotiation
//! frames, and retransmissions don't count. *Utilization* is the fraction
//! of the slot left for data after the per-slot negotiation overhead.

/// Accumulates goodput statistics across slots.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GoodputMeter {
    slots: u64,
    delivered: u64,
    attempted: u64,
    payload_bytes: u64,
    overhead_s: f64,
    slot_s: f64,
}

impl GoodputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        GoodputMeter::default()
    }

    /// Records one slot's outcome.
    pub fn record_slot(
        &mut self,
        delivered: u64,
        attempted: u64,
        payload_bytes: u64,
        overhead_s: f64,
        slot_s: f64,
    ) {
        self.slots += 1;
        self.delivered += delivered;
        self.attempted += attempted;
        self.payload_bytes += payload_bytes;
        self.overhead_s += overhead_s;
        self.slot_s += slot_s;
    }

    /// Number of slots recorded.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Mean unique packets delivered per slot — the paper's
    /// "goodput (pkts/timeslot)" y-axis.
    pub fn packets_per_slot(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.delivered as f64 / self.slots as f64
        }
    }

    /// Mean payload bits per second across all recorded time.
    pub fn goodput_bps(&self) -> f64 {
        if self.slot_s == 0.0 {
            0.0
        } else {
            (self.payload_bytes * 8) as f64 / self.slot_s
        }
    }

    /// Fraction of attempted transmissions that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.delivered as f64 / self.attempted as f64
        }
    }

    /// Mean fraction of the slot available for data — the paper's
    /// "utilization rate of timeslot" (Fig. 10(b)).
    pub fn utilization(&self) -> f64 {
        if self.slot_s == 0.0 {
            0.0
        } else {
            1.0 - self.overhead_s / self.slot_s
        }
    }

    /// Mean per-slot negotiation overhead in seconds.
    pub fn overhead_per_slot_s(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.overhead_s / self.slots as f64
        }
    }

    /// Emits the meter's summary as named telemetry scalars
    /// (`goodput.*`): slots, packets/slot, bps, delivery ratio,
    /// utilization, and per-slot overhead.
    pub fn emit_scalars<S: ctjam_telemetry::EventSink>(&self, sink: &mut S) {
        sink.record_scalar("goodput.slots", self.slots as f64);
        sink.record_scalar("goodput.packets_per_slot", self.packets_per_slot());
        sink.record_scalar("goodput.bps", self.goodput_bps());
        sink.record_scalar("goodput.delivery_ratio", self.delivery_ratio());
        sink.record_scalar("goodput.utilization", self.utilization());
        sink.record_scalar("goodput.overhead_per_slot_s", self.overhead_per_slot_s());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_is_zero() {
        let m = GoodputMeter::new();
        assert_eq!(m.packets_per_slot(), 0.0);
        assert_eq!(m.goodput_bps(), 0.0);
        assert_eq!(m.delivery_ratio(), 0.0);
        assert_eq!(m.utilization(), 0.0);
    }

    #[test]
    fn accumulation() {
        let mut m = GoodputMeter::new();
        m.record_slot(100, 120, 10_000, 0.07, 1.0);
        m.record_slot(300, 310, 30_000, 0.07, 1.0);
        assert_eq!(m.slots(), 2);
        assert_eq!(m.packets_per_slot(), 200.0);
        assert_eq!(m.goodput_bps(), 160_000.0);
        assert!((m.delivery_ratio() - 400.0 / 430.0).abs() < 1e-12);
        assert!((m.utilization() - 0.93).abs() < 1e-12);
        assert!((m.overhead_per_slot_s() - 0.07).abs() < 1e-12);
    }

    #[test]
    fn emit_scalars_reports_all_summaries() {
        let mut m = GoodputMeter::new();
        m.record_slot(100, 120, 10_000, 0.07, 1.0);
        let mut sink = ctjam_telemetry::MemorySink::new();
        m.emit_scalars(&mut sink);
        assert_eq!(sink.scalars.len(), 6);
        let get = |name: &str| {
            sink.scalars
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("goodput.slots"), 1.0);
        assert_eq!(get("goodput.packets_per_slot"), 100.0);
        assert!((get("goodput.delivery_ratio") - 100.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_rises_with_longer_slots() {
        let mut short = GoodputMeter::new();
        short.record_slot(0, 0, 0, 0.08, 1.0);
        let mut long = GoodputMeter::new();
        long.record_slot(0, 0, 0, 0.08, 5.0);
        assert!(long.utilization() > short.utilization());
    }
}
