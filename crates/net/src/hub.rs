//! The star network's hub: receives data, acknowledges it, and issues
//! FH/PC announcements decided by an anti-jamming strategy upstream.

use crate::frame::{MacFrame, NodeId};
use std::collections::HashMap;

/// The hub node.
///
/// # Example
///
/// ```
/// use ctjam_net::hub::Hub;
/// use ctjam_net::frame::{MacFrame, NodeId};
///
/// let mut hub = Hub::new(11, 0);
/// let data = MacFrame::Data { src: NodeId(1), seq: 0, payload: vec![1, 2] };
/// let ack = hub.handle_data(&data).unwrap();
/// assert_eq!(ack, MacFrame::Ack { dst: NodeId(1), seq: 0 });
/// assert_eq!(hub.delivered(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hub {
    channel: u8,
    power_level: u8,
    delivered: u64,
    duplicates: u64,
    payload_bytes: u64,
    last_seq: HashMap<NodeId, u16>,
}

impl Hub {
    /// Creates a hub on `channel` with power level index `power_level`.
    pub fn new(channel: u8, power_level: u8) -> Self {
        Hub {
            channel,
            power_level,
            delivered: 0,
            duplicates: 0,
            payload_bytes: 0,
            last_seq: HashMap::new(),
        }
    }

    /// Current channel.
    pub fn channel(&self) -> u8 {
        self.channel
    }

    /// Current power level index.
    pub fn power_level(&self) -> u8 {
        self.power_level
    }

    /// Unique data frames delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Duplicate data frames discarded.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Total payload bytes delivered (goodput numerator).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Processes a received data frame, returning the ACK to send back,
    /// or `None` for non-data frames.
    ///
    /// Retransmissions (same `(src, seq)` as the previous delivery) are
    /// acknowledged but counted as duplicates, not goodput.
    pub fn handle_data(&mut self, frame: &MacFrame) -> Option<MacFrame> {
        if let MacFrame::Data { src, seq, payload } = frame {
            if self.last_seq.get(src) == Some(seq) {
                self.duplicates += 1;
            } else {
                self.last_seq.insert(*src, *seq);
                self.delivered += 1;
                self.payload_bytes += payload.len() as u64;
            }
            Some(MacFrame::Ack {
                dst: *src,
                seq: *seq,
            })
        } else {
            None
        }
    }

    /// Adopts a new channel/power decision (made by the anti-jamming
    /// strategy) and returns the per-node announcements to poll out.
    pub fn announce(&mut self, channel: u8, power_level: u8, nodes: &[NodeId]) -> Vec<MacFrame> {
        self.channel = channel;
        self.power_level = power_level;
        nodes
            .iter()
            .map(|&dst| MacFrame::Negotiate {
                dst,
                channel,
                power_level,
            })
            .collect()
    }

    /// Clears per-slot counters while keeping radio state (used between
    /// experiment repetitions).
    pub fn reset_counters(&mut self) {
        self.delivered = 0;
        self.duplicates = 0;
        self.payload_bytes = 0;
        self.last_seq.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_and_duplicate_accounting() {
        let mut hub = Hub::new(11, 0);
        let data = MacFrame::Data {
            src: NodeId(1),
            seq: 5,
            payload: vec![0; 10],
        };
        assert!(hub.handle_data(&data).is_some());
        assert!(hub.handle_data(&data).is_some()); // retransmission
        assert_eq!(hub.delivered(), 1);
        assert_eq!(hub.duplicates(), 1);
        assert_eq!(hub.payload_bytes(), 10);
    }

    #[test]
    fn different_nodes_tracked_independently() {
        let mut hub = Hub::new(11, 0);
        for node in 1..=3u8 {
            hub.handle_data(&MacFrame::Data {
                src: NodeId(node),
                seq: 0,
                payload: vec![0; 4],
            });
        }
        assert_eq!(hub.delivered(), 3);
        assert_eq!(hub.duplicates(), 0);
    }

    #[test]
    fn non_data_frames_ignored() {
        let mut hub = Hub::new(11, 0);
        assert!(hub
            .handle_data(&MacFrame::Ack {
                dst: NodeId(1),
                seq: 0
            })
            .is_none());
        assert_eq!(hub.delivered(), 0);
    }

    #[test]
    fn announce_updates_state_and_addresses_every_node() {
        let mut hub = Hub::new(11, 0);
        let nodes = [NodeId(1), NodeId(2)];
        let frames = hub.announce(20, 9, &nodes);
        assert_eq!(hub.channel(), 20);
        assert_eq!(hub.power_level(), 9);
        assert_eq!(frames.len(), 2);
        assert_eq!(
            frames[1],
            MacFrame::Negotiate {
                dst: NodeId(2),
                channel: 20,
                power_level: 9
            }
        );
    }

    #[test]
    fn reset_clears_counters_not_radio() {
        let mut hub = Hub::new(11, 3);
        hub.handle_data(&MacFrame::Data {
            src: NodeId(1),
            seq: 0,
            payload: vec![1],
        });
        hub.reset_counters();
        assert_eq!(hub.delivered(), 0);
        assert_eq!(hub.payload_bytes(), 0);
        assert_eq!(hub.channel(), 11);
        assert_eq!(hub.power_level(), 3);
    }
}
