//! Listen-Before-Talk channel access (unslotted CSMA-CA of 802.15.4).
//!
//! The star network's peripherals use LBT to avoid colliding with each
//! other (paper §II.A.2). The algorithm: wait a random backoff of
//! `0..2^BE − 1` unit periods, perform a clear-channel assessment (CCA),
//! transmit if idle, otherwise increase `BE` and retry up to
//! `max_backoffs` times.

use rand::Rng;

/// 802.15.4 unit backoff period: 20 symbol periods = 320 µs.
pub const UNIT_BACKOFF_S: f64 = 320.0e-6;

/// CCA detection time: 8 symbol periods = 128 µs.
pub const CCA_TIME_S: f64 = 128.0e-6;

/// CSMA-CA parameters (802.15.4 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsmaConfig {
    /// Minimum backoff exponent (`macMinBE`).
    pub min_be: u8,
    /// Maximum backoff exponent (`macMaxBE`).
    pub max_be: u8,
    /// Maximum number of CCA failures before giving up
    /// (`macMaxCSMABackoffs`).
    pub max_backoffs: u8,
}

impl Default for CsmaConfig {
    fn default() -> Self {
        CsmaConfig {
            min_be: 3,
            max_be: 5,
            max_backoffs: 4,
        }
    }
}

/// Result of one channel-access attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsmaOutcome {
    /// Whether the node got to transmit.
    pub granted: bool,
    /// Number of CCAs performed.
    pub cca_attempts: u8,
    /// Total time consumed by backoffs and CCAs, seconds.
    pub elapsed_s: f64,
}

/// Runs the CSMA-CA procedure against a channel-busy oracle.
///
/// `channel_busy` is sampled once per CCA and should return `true` when
/// the medium is occupied at that instant.
///
/// # Example
///
/// ```
/// use ctjam_net::mac::{csma_ca, CsmaConfig};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let outcome = csma_ca(&CsmaConfig::default(), &mut rng, |_| false);
/// assert!(outcome.granted);
/// assert_eq!(outcome.cca_attempts, 1);
/// ```
pub fn csma_ca<R, F>(config: &CsmaConfig, rng: &mut R, mut channel_busy: F) -> CsmaOutcome
where
    R: Rng + ?Sized,
    F: FnMut(u8) -> bool,
{
    let mut be = config.min_be;
    let mut elapsed = 0.0;
    for attempt in 0..=config.max_backoffs {
        let slots = rng.gen_range(0..(1u32 << be));
        elapsed += f64::from(slots) * UNIT_BACKOFF_S + CCA_TIME_S;
        if !channel_busy(attempt) {
            return CsmaOutcome {
                granted: true,
                cca_attempts: attempt + 1,
                elapsed_s: elapsed,
            };
        }
        be = (be + 1).min(config.max_be);
    }
    CsmaOutcome {
        granted: false,
        cca_attempts: config.max_backoffs + 1,
        elapsed_s: elapsed,
    }
}

/// Probability that CSMA-CA fails outright when each CCA independently
/// finds the channel busy with probability `p_busy` — the closed form
/// used in tests and in analytic workload sizing: `p_busy^(max_backoffs+1)`.
pub fn failure_probability(config: &CsmaConfig, p_busy: f64) -> f64 {
    p_busy
        .clamp(0.0, 1.0)
        .powi(i32::from(config.max_backoffs) + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn idle_channel_granted_first_try() {
        let mut rng = StdRng::seed_from_u64(1);
        let o = csma_ca(&CsmaConfig::default(), &mut rng, |_| false);
        assert!(o.granted);
        assert_eq!(o.cca_attempts, 1);
        assert!(o.elapsed_s >= CCA_TIME_S);
    }

    #[test]
    fn busy_channel_exhausts_backoffs() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = CsmaConfig::default();
        let o = csma_ca(&cfg, &mut rng, |_| true);
        assert!(!o.granted);
        assert_eq!(o.cca_attempts, cfg.max_backoffs + 1);
    }

    #[test]
    fn transient_busy_eventually_granted() {
        let mut rng = StdRng::seed_from_u64(3);
        let o = csma_ca(&CsmaConfig::default(), &mut rng, |attempt| attempt < 2);
        assert!(o.granted);
        assert_eq!(o.cca_attempts, 3);
    }

    #[test]
    fn backoff_time_grows_with_contention() {
        // With an always-busy channel, mean elapsed time across seeds
        // exceeds the single-CCA case because BE escalates.
        let cfg = CsmaConfig::default();
        let mut total_busy = 0.0;
        let mut total_idle = 0.0;
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            total_busy += csma_ca(&cfg, &mut rng, |_| true).elapsed_s;
            let mut rng = StdRng::seed_from_u64(seed);
            total_idle += csma_ca(&cfg, &mut rng, |_| false).elapsed_s;
        }
        assert!(total_busy > total_idle * 2.0);
    }

    #[test]
    fn failure_probability_closed_form() {
        let cfg = CsmaConfig::default();
        assert_eq!(failure_probability(&cfg, 0.0), 0.0);
        assert_eq!(failure_probability(&cfg, 1.0), 1.0);
        let p = failure_probability(&cfg, 0.5);
        assert!((p - 0.5f64.powi(5)).abs() < 1e-12);
    }

    #[test]
    fn empirical_failure_rate_matches_closed_form() {
        let cfg = CsmaConfig::default();
        let p_busy = 0.7;
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 20000;
        let failures = (0..trials)
            .filter(|_| {
                let mut backoff_rng = StdRng::seed_from_u64(rng.gen());
                let mut busy_rng = StdRng::seed_from_u64(rng.gen());
                !csma_ca(&cfg, &mut backoff_rng, |_| busy_rng.gen_bool(p_busy)).granted
            })
            .count();
        let measured = failures as f64 / trials as f64;
        let expected = failure_probability(&cfg, p_busy);
        assert!(
            (measured - expected).abs() < 0.02,
            "measured {measured}, expected {expected}"
        );
    }
}
