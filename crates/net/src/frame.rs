//! MAC-layer frames carried inside ZigBee PHY PSDUs.
//!
//! The star network exchanges four frame kinds: data (peripheral → hub),
//! ACK (hub → peripheral), negotiation announcements (hub → peripherals,
//! carrying next-slot channel and power level), and negotiation
//! acknowledgements. Frames serialize into a PSDU with an 802.15.4-style
//! FCS so the full PHY stack can carry them.

use crate::fcs;
use ctjam_phy::zigbee::frame::{FrameError, PhyFrame, MAX_PSDU_LEN};
use std::fmt;

/// A node address within the star network (hub is [`NodeId::HUB`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u8);

impl NodeId {
    /// The hub's well-known address.
    pub const HUB: NodeId = NodeId(0);
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == NodeId::HUB {
            write!(f, "hub")
        } else {
            write!(f, "node{}", self.0)
        }
    }
}

/// The MAC frame variants used by the star network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MacFrame {
    /// Application data from a peripheral to the hub.
    Data {
        /// Sender.
        src: NodeId,
        /// Sequence number (wraps).
        seq: u16,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// Hub acknowledgement of a data frame.
    Ack {
        /// Original sender being acknowledged.
        dst: NodeId,
        /// Sequence number being acknowledged.
        seq: u16,
    },
    /// Hub → peripheral announcement of the next slot's channel and
    /// transmit power level (polling mode).
    Negotiate {
        /// Addressed peripheral.
        dst: NodeId,
        /// ZigBee channel (11..=26) to use next slot.
        channel: u8,
        /// Transmit power level index.
        power_level: u8,
    },
    /// Peripheral confirmation of a [`MacFrame::Negotiate`].
    NegotiateAck {
        /// Confirming peripheral.
        src: NodeId,
    },
}

/// Errors from MAC frame (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MacError {
    /// The payload would overflow the PSDU limit.
    PayloadTooLong {
        /// Bytes requested.
        len: usize,
    },
    /// The FCS check failed (corrupted frame).
    BadFcs,
    /// The frame body is malformed (bad kind tag or truncated fields).
    Malformed,
    /// The PHY layer rejected the frame.
    Phy(FrameError),
}

impl fmt::Display for MacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacError::PayloadTooLong { len } => {
                write!(f, "payload of {len} bytes does not fit in a psdu")
            }
            MacError::BadFcs => write!(f, "frame check sequence mismatch"),
            MacError::Malformed => write!(f, "malformed mac frame body"),
            MacError::Phy(e) => write!(f, "phy error: {e}"),
        }
    }
}

impl std::error::Error for MacError {}

impl From<FrameError> for MacError {
    fn from(e: FrameError) -> Self {
        MacError::Phy(e)
    }
}

const KIND_DATA: u8 = 0x01;
const KIND_ACK: u8 = 0x02;
const KIND_NEGOTIATE: u8 = 0x03;
const KIND_NEGOTIATE_ACK: u8 = 0x04;

/// Maximum application payload once MAC header (4 B) and FCS (2 B) are
/// accounted for.
pub const MAX_PAYLOAD: usize = MAX_PSDU_LEN - 6;

impl MacFrame {
    /// Serializes into a PSDU (body + FCS).
    ///
    /// # Errors
    ///
    /// Returns [`MacError::PayloadTooLong`] when a data payload exceeds
    /// [`MAX_PAYLOAD`].
    pub fn to_psdu(&self) -> Result<Vec<u8>, MacError> {
        let mut body = Vec::new();
        match self {
            MacFrame::Data { src, seq, payload } => {
                if payload.len() > MAX_PAYLOAD {
                    return Err(MacError::PayloadTooLong { len: payload.len() });
                }
                body.push(KIND_DATA);
                body.push(src.0);
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(payload);
            }
            MacFrame::Ack { dst, seq } => {
                body.push(KIND_ACK);
                body.push(dst.0);
                body.extend_from_slice(&seq.to_le_bytes());
            }
            MacFrame::Negotiate {
                dst,
                channel,
                power_level,
            } => {
                body.push(KIND_NEGOTIATE);
                body.push(dst.0);
                body.push(*channel);
                body.push(*power_level);
            }
            MacFrame::NegotiateAck { src } => {
                body.push(KIND_NEGOTIATE_ACK);
                body.push(src.0);
            }
        }
        Ok(fcs::append_fcs(body))
    }

    /// Parses a PSDU, verifying the FCS.
    ///
    /// # Errors
    ///
    /// [`MacError::BadFcs`] on checksum failure, [`MacError::Malformed`]
    /// on an unknown kind tag or truncated fields.
    pub fn from_psdu(psdu: &[u8]) -> Result<Self, MacError> {
        let body = fcs::verify_and_strip(psdu).ok_or(MacError::BadFcs)?;
        let (&kind, rest) = body.split_first().ok_or(MacError::Malformed)?;
        match kind {
            KIND_DATA => {
                if rest.len() < 3 {
                    return Err(MacError::Malformed);
                }
                Ok(MacFrame::Data {
                    src: NodeId(rest[0]),
                    seq: u16::from_le_bytes([rest[1], rest[2]]),
                    payload: rest[3..].to_vec(),
                })
            }
            KIND_ACK => {
                if rest.len() != 3 {
                    return Err(MacError::Malformed);
                }
                Ok(MacFrame::Ack {
                    dst: NodeId(rest[0]),
                    seq: u16::from_le_bytes([rest[1], rest[2]]),
                })
            }
            KIND_NEGOTIATE => {
                if rest.len() != 3 {
                    return Err(MacError::Malformed);
                }
                Ok(MacFrame::Negotiate {
                    dst: NodeId(rest[0]),
                    channel: rest[1],
                    power_level: rest[2],
                })
            }
            KIND_NEGOTIATE_ACK => {
                if rest.len() != 1 {
                    return Err(MacError::Malformed);
                }
                Ok(MacFrame::NegotiateAck {
                    src: NodeId(rest[0]),
                })
            }
            _ => Err(MacError::Malformed),
        }
    }

    /// Wraps the frame in a full PHY frame (preamble/SFD/PHR/PSDU).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures as [`MacError`].
    pub fn to_phy(&self) -> Result<PhyFrame, MacError> {
        Ok(PhyFrame::new(self.to_psdu()?)?)
    }

    /// Extracts a MAC frame from a received PHY frame.
    ///
    /// # Errors
    ///
    /// Same as [`MacFrame::from_psdu`].
    pub fn from_phy(phy: &PhyFrame) -> Result<Self, MacError> {
        MacFrame::from_psdu(phy.psdu())
    }

    /// Over-the-air duration of this frame at the 250 kb/s PHY rate,
    /// including PHY overhead, in seconds.
    pub fn airtime_s(&self) -> f64 {
        let psdu_len = self.to_psdu().map(|p| p.len()).unwrap_or(MAX_PSDU_LEN);
        let total_bytes = psdu_len + ctjam_channel::per::PHY_OVERHEAD_BYTES;
        (total_bytes * 8) as f64 / ctjam_phy::zigbee::BIT_RATE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let frame = MacFrame::Data {
            src: NodeId(3),
            seq: 0xBEEF,
            payload: vec![9; 40],
        };
        let psdu = frame.to_psdu().unwrap();
        assert_eq!(MacFrame::from_psdu(&psdu).unwrap(), frame);
    }

    #[test]
    fn all_kinds_roundtrip() {
        let frames = [
            MacFrame::Data {
                src: NodeId(1),
                seq: 7,
                payload: vec![],
            },
            MacFrame::Ack {
                dst: NodeId(2),
                seq: 7,
            },
            MacFrame::Negotiate {
                dst: NodeId(3),
                channel: 15,
                power_level: 9,
            },
            MacFrame::NegotiateAck { src: NodeId(3) },
        ];
        for frame in frames {
            let psdu = frame.to_psdu().unwrap();
            assert_eq!(MacFrame::from_psdu(&psdu).unwrap(), frame);
        }
    }

    #[test]
    fn phy_roundtrip() {
        let frame = MacFrame::Data {
            src: NodeId(2),
            seq: 1,
            payload: b"sensor-reading".to_vec(),
        };
        let phy = frame.to_phy().unwrap();
        assert_eq!(MacFrame::from_phy(&phy).unwrap(), frame);
    }

    #[test]
    fn corrupted_psdu_rejected() {
        let frame = MacFrame::Ack {
            dst: NodeId(1),
            seq: 99,
        };
        let mut psdu = frame.to_psdu().unwrap();
        psdu[1] ^= 0x40;
        assert_eq!(MacFrame::from_psdu(&psdu), Err(MacError::BadFcs));
    }

    #[test]
    fn oversized_payload_rejected() {
        let frame = MacFrame::Data {
            src: NodeId(1),
            seq: 0,
            payload: vec![0; MAX_PAYLOAD + 1],
        };
        assert!(matches!(
            frame.to_psdu(),
            Err(MacError::PayloadTooLong { .. })
        ));
    }

    #[test]
    fn max_payload_fits_in_phy() {
        let frame = MacFrame::Data {
            src: NodeId(1),
            seq: 0,
            payload: vec![0xAB; MAX_PAYLOAD],
        };
        assert!(frame.to_phy().is_ok());
    }

    #[test]
    fn unknown_kind_is_malformed() {
        let psdu = fcs::append_fcs(vec![0x7F, 1, 2, 3]);
        assert_eq!(MacFrame::from_psdu(&psdu), Err(MacError::Malformed));
    }

    #[test]
    fn airtime_scales_with_payload() {
        let small = MacFrame::Data {
            src: NodeId(1),
            seq: 0,
            payload: vec![0; 10],
        };
        let large = MacFrame::Data {
            src: NodeId(1),
            seq: 0,
            payload: vec![0; 100],
        };
        assert!(large.airtime_s() > small.airtime_s());
        // 100 B payload + 4 B header + 2 B FCS + 6 B PHY = 112 B = 3.584 ms.
        assert!((large.airtime_s() - 0.003584).abs() < 1e-9);
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId::HUB.to_string(), "hub");
        assert_eq!(NodeId(4).to_string(), "node4");
    }
}
