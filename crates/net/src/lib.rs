//! ZigBee network substrate for the CTJam suite.
//!
//! Models the pieces of the paper's testbed that sit between the PHY and
//! the anti-jamming logic:
//!
//! * [`fcs`] — the 802.15.4 CRC-16 frame check sequence.
//! * [`frame`] — MAC data/ACK/negotiation frames carried in PHY PSDUs.
//! * [`mac`] — Listen-Before-Talk / unslotted CSMA-CA channel access.
//! * [`timing`] — the field experiment's measured time constants (DQN
//!   inference 9 ms, ACK round trip 0.9 ms, processing 0.6 ms, polling
//!   13.1 ms/node) with realistic jitter.
//! * [`negotiation`] — the hub's polling-mode FH/PC announcement, control
//!   channel fallback included (Fig. 9(b)).
//! * [`node`] / [`hub`] / [`star`] — the star network: one hub, N
//!   peripherals, per-slot data exchange (Figs. 10–11 substrate).
//! * [`goodput`] — packets-per-slot and slot-utilization accounting.
//!
//! # Example
//!
//! One slot of the star network, no jamming:
//!
//! ```
//! use ctjam_net::star::{StarNetwork, SlotOutcome};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut net = StarNetwork::new(3);
//! let mut rng = StdRng::seed_from_u64(1);
//! let outcome = net.run_slot(3.0, true, 0.0, &mut rng);
//! assert!(outcome.delivered > 400, "3 s slot should carry hundreds of packets");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod crypto;
pub mod fcs;
pub mod frame;
pub mod goodput;
pub mod hub;
pub mod mac;
pub mod negotiation;
pub mod node;
pub mod star;
pub mod timing;
