//! Confidentiality for FH/PC announcements.
//!
//! §IV.A.2: "the hub will notify peripheral nodes of the FH and PC
//! information in advance. The transmitted information can be encrypted
//! to prevent eavesdropping" — otherwise the jammer could simply read
//! where the victim is hopping next.
//!
//! This module provides that hook with a keystream cipher driven by a
//! 64-bit shared key and a per-frame nonce (the slot counter), plus a
//! keyed integrity tag.
//!
//! **Not cryptographically secure.** The keystream is a SplitMix64
//! sequence — adequate to demonstrate the protocol mechanics and to
//! model an eavesdropping jammer's view in simulation, not to protect
//! real traffic. A real deployment would use the 802.15.4 CCM* suite.

/// A shared symmetric key between hub and peripherals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Key(pub u64);

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn keystream(key: Key, nonce: u64, len: usize) -> Vec<u8> {
    let mut state = key.0 ^ nonce.rotate_left(17) ^ 0xA076_1D64_78BD_642F;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let word = splitmix(&mut state);
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Keyed tag over the ciphertext (again: integrity *mechanics*, not a
/// real MAC).
fn tag(key: Key, nonce: u64, data: &[u8]) -> u32 {
    let mut state = key.0 ^ nonce ^ 0x2545_F491_4F6C_DD1D;
    for &b in data {
        state ^= u64::from(b);
        let _ = splitmix(&mut state);
    }
    (splitmix(&mut state) & 0xFFFF_FFFF) as u32
}

/// Seals a plaintext: XOR keystream, append a 4-byte tag.
///
/// ```
/// use ctjam_net::crypto::{open, seal, Key};
///
/// let key = Key(0xC0FFEE);
/// let sealed = seal(key, 42, b"ch=19,p=7");
/// assert_eq!(open(key, 42, &sealed).unwrap(), b"ch=19,p=7");
/// assert!(open(key, 43, &sealed).is_none(), "wrong nonce must fail");
/// ```
pub fn seal(key: Key, nonce: u64, plaintext: &[u8]) -> Vec<u8> {
    let stream = keystream(key, nonce, plaintext.len());
    let mut out: Vec<u8> = plaintext.iter().zip(&stream).map(|(p, k)| p ^ k).collect();
    let t = tag(key, nonce, &out);
    out.extend_from_slice(&t.to_le_bytes());
    out
}

/// Opens a sealed buffer: verify the tag, strip it, undo the keystream.
/// Returns `None` on tag mismatch (wrong key, wrong nonce, or tampering).
pub fn open(key: Key, nonce: u64, sealed: &[u8]) -> Option<Vec<u8>> {
    if sealed.len() < 4 {
        return None;
    }
    let (body, tag_bytes) = sealed.split_at(sealed.len() - 4);
    let expected = u32::from_le_bytes([tag_bytes[0], tag_bytes[1], tag_bytes[2], tag_bytes[3]]);
    if tag(key, nonce, body) != expected {
        return None;
    }
    let stream = keystream(key, nonce, body.len());
    Some(body.iter().zip(&stream).map(|(c, k)| c ^ k).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let key = Key(0xDEAD_BEEF);
        for nonce in [0u64, 1, u64::MAX] {
            let pt = b"channel 22 power 9";
            let sealed = seal(key, nonce, pt);
            assert_eq!(open(key, nonce, &sealed).unwrap(), pt);
        }
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let key = Key(7);
        let sealed = seal(key, 1, b"hop to 19");
        assert!(!sealed.windows(3).any(|w| w == b"hop"));
    }

    #[test]
    fn wrong_key_or_nonce_rejected() {
        let sealed = seal(Key(1), 5, b"secret");
        assert!(open(Key(2), 5, &sealed).is_none());
        assert!(open(Key(1), 6, &sealed).is_none());
    }

    #[test]
    fn tampering_detected() {
        let key = Key(11);
        let mut sealed = seal(key, 9, b"payload");
        for i in 0..sealed.len() {
            sealed[i] ^= 0x01;
            assert!(open(key, 9, &sealed).is_none(), "missed tamper at {i}");
            sealed[i] ^= 0x01;
        }
        assert!(open(key, 9, &sealed).is_some());
    }

    #[test]
    fn nonce_reuse_gives_distinct_ciphertexts_for_distinct_nonces() {
        let key = Key(3);
        let a = seal(key, 1, b"same plaintext");
        let b = seal(key, 2, b"same plaintext");
        assert_ne!(a, b);
    }

    #[test]
    fn short_buffers_rejected() {
        assert!(open(Key(1), 0, &[]).is_none());
        assert!(open(Key(1), 0, &[1, 2, 3]).is_none());
    }

    #[test]
    fn empty_plaintext_works() {
        let key = Key(42);
        let sealed = seal(key, 0, b"");
        assert_eq!(sealed.len(), 4);
        assert_eq!(open(key, 0, &sealed).unwrap(), Vec::<u8>::new());
    }
}
