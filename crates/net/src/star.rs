//! The star-topology ZigBee network of the field experiment: one hub and
//! N peripherals exchanging data in time slots.
//!
//! Each slot proceeds exactly like the paper's testbed run (§IV.D):
//!
//! 1. the hub runs the anti-jamming decision (DQN inference time),
//! 2. polls every peripheral with the FH/PC announcement (negotiation),
//! 3. the remaining slot time carries round-robin data exchanges, each
//!    gated by LBT and acknowledged by the hub.
//!
//! The slot-level *jamming outcome* (is the chosen channel jammed, and did
//! the power win) is decided upstream by the competition environment; the
//! star network turns that outcome into packet counts via a per-packet
//! delivery probability.

use crate::frame::{MacFrame, NodeId};
use crate::hub::Hub;
use crate::mac::{csma_ca, CsmaConfig};
use crate::negotiation::{negotiate, negotiate_with_faults, FaultyNegotiationReport};
use crate::node::Peripheral;
use crate::timing::TimingModel;
use ctjam_fault::{FaultPoint, FaultSite, RetryPolicy};
use rand::Rng;

/// Outcome of one time slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotOutcome {
    /// Unique data packets delivered to the hub.
    pub delivered: u64,
    /// Data transmissions attempted (incl. lost and duplicate).
    pub attempted: u64,
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// Per-slot negotiation + inference overhead, seconds.
    pub overhead_s: f64,
    /// Time actually spent exchanging data, seconds.
    pub data_time_s: f64,
}

impl SlotOutcome {
    /// Fraction of the slot that was usable for data.
    pub fn utilization(&self, slot_s: f64) -> f64 {
        if slot_s <= 0.0 {
            0.0
        } else {
            1.0 - self.overhead_s / slot_s
        }
    }
}

/// A [`SlotOutcome`] augmented with fault-injection accounting.
///
/// Produced by [`StarNetwork::run_slot_with_faults`]; with no faults
/// firing the embedded `outcome` is bit-exact with
/// [`StarNetwork::run_slot`] on the same RNG state.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultySlotOutcome {
    /// The packet/timing outcome (fault costs are folded into
    /// `overhead_s`).
    pub outcome: SlotOutcome,
    /// Data frames corrupted in flight by [`FaultSite::FrameCorruption`]
    /// and rejected by the hub's FCS check.
    pub corrupted_frames: u64,
    /// Whether the hub stalled at the start of the slot.
    pub hub_stalled: bool,
    /// Dead air charged to the hub stall, seconds.
    pub stall_s: f64,
    /// The faulted negotiation round's accounting.
    pub negotiation: FaultyNegotiationReport,
}

/// The hub + peripherals assembly.
#[derive(Debug, Clone)]
pub struct StarNetwork {
    hub: Hub,
    peripherals: Vec<Peripheral>,
    timing: TimingModel,
    csma: CsmaConfig,
    payload_len: usize,
    /// Probability a CCA finds the channel busy from neighbor traffic.
    cca_busy_prob: f64,
    /// Reusable buffer for the per-turn CCA pre-draws, so the data loop
    /// allocates nothing in steady state.
    cca_scratch: Vec<bool>,
    /// Reusable buffer for the peripheral id list used by
    /// [`StarNetwork::apply_decision`].
    ids_scratch: Vec<NodeId>,
}

impl StarNetwork {
    /// Creates a network with `num_peripherals` nodes on channel 11 using
    /// the paper's default timing model and a 100-byte payload.
    pub fn new(num_peripherals: usize) -> Self {
        StarNetwork::with_config(num_peripherals, TimingModel::default(), 100)
    }

    /// Creates a network with explicit timing and payload configuration.
    pub fn with_config(num_peripherals: usize, timing: TimingModel, payload_len: usize) -> Self {
        let peripherals = (1..=num_peripherals)
            .map(|i| Peripheral::new(NodeId(i as u8), 11, 0))
            .collect();
        StarNetwork {
            hub: Hub::new(11, 0),
            peripherals,
            timing,
            csma: CsmaConfig::default(),
            payload_len,
            cca_busy_prob: 0.05,
            cca_scratch: Vec::new(),
            ids_scratch: Vec::new(),
        }
    }

    /// The hub.
    pub fn hub(&self) -> &Hub {
        &self.hub
    }

    /// The peripherals.
    pub fn peripherals(&self) -> &[Peripheral] {
        &self.peripherals
    }

    /// The timing model in force.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Announces a new channel/power decision to all peripherals and
    /// returns the negotiation duration (the slot's overhead component).
    pub fn apply_decision<R: Rng + ?Sized>(
        &mut self,
        channel: u8,
        power_level: u8,
        rng: &mut R,
    ) -> f64 {
        self.ids_scratch.clear();
        self.ids_scratch
            .extend(self.peripherals.iter().map(Peripheral::id));
        let announcements = self.hub.announce(channel, power_level, &self.ids_scratch);
        for announcement in &announcements {
            for peripheral in &mut self.peripherals {
                if peripheral.handle_negotiation(announcement).is_some() {
                    break;
                }
            }
        }
        negotiate(&self.timing, self.peripherals.len(), rng).total_s
    }

    /// Runs one data slot of `slot_s` seconds.
    ///
    /// `link_up` is whether the slot's channel/power decision defeated the
    /// jammer (decided by the competition environment); `residual_per` is
    /// the per-packet loss probability on an up link (interference that
    /// degrades but does not kill the link, e.g. the paper's `TJ` state).
    ///
    /// # Panics
    ///
    /// Panics if `residual_per` is outside `[0, 1]`.
    pub fn run_slot<R: Rng + ?Sized>(
        &mut self,
        slot_s: f64,
        link_up: bool,
        residual_per: f64,
        rng: &mut R,
    ) -> SlotOutcome {
        assert!(
            (0.0..=1.0).contains(&residual_per),
            "residual_per must be a probability, got {residual_per}"
        );
        // Phase 1+2: decision inference + polling negotiation.
        let mut overhead = self.timing.dqn_inference(rng);
        overhead += negotiate(&self.timing, self.peripherals.len(), rng).total_s;

        let mut outcome = SlotOutcome {
            delivered: 0,
            attempted: 0,
            payload_bytes: 0,
            overhead_s: overhead,
            data_time_s: 0.0,
        };

        let budget = slot_s - overhead;
        if budget <= 0.0 || self.peripherals.is_empty() {
            return outcome;
        }

        // Phase 3: round-robin data exchange until the slot closes.
        let num_peripherals = self.peripherals.len();
        let mut elapsed = 0.0;
        let mut turn = 0usize;
        loop {
            let index = turn % num_peripherals;
            turn += 1;

            let busy = self.cca_busy_prob;
            // Pre-draw the (at most max_backoffs+1) CCA outcomes into the
            // reusable scratch so the closure does not capture `rng`
            // alongside its other uses (draw order is unchanged).
            self.cca_scratch.clear();
            for _ in 0..=self.csma.max_backoffs {
                self.cca_scratch.push(rng.gen_bool(busy));
            }
            let cca_draws = &self.cca_scratch;
            let access = csma_ca(&self.csma, rng, |attempt| cca_draws[attempt as usize]);
            elapsed += access.elapsed_s;
            if elapsed >= budget {
                break;
            }
            if !access.granted {
                continue;
            }

            let frame = self.peripherals[index].next_data_frame(self.payload_len);
            let cycle = self.timing.packet_cycle(frame.airtime_s(), rng);
            if elapsed + cycle > budget {
                break;
            }
            elapsed += cycle;
            outcome.attempted += 1;

            let delivered = link_up && !rng.gen_bool(residual_per);
            if delivered {
                if let Some(ack) = self.hub.handle_data(&frame) {
                    let granted = self.peripherals[index].handle_ack(&ack);
                    debug_assert!(granted);
                    outcome.delivered += 1;
                    if let MacFrame::Data { payload, .. } = &frame {
                        outcome.payload_bytes += payload.len() as u64;
                    }
                }
            }
        }
        outcome.data_time_s = elapsed.min(budget);
        outcome
    }

    /// [`StarNetwork::run_slot`], with deterministic fault injection and
    /// recovery.
    ///
    /// On top of the regular slot the plan may fire:
    ///
    /// * [`FaultSite::HubStall`] — the hub stalls at the start of the
    ///   slot (recovery-scale dead air charged as overhead),
    /// * negotiation faults — see
    ///   [`crate::negotiation::negotiate_with_faults`],
    /// * [`FaultSite::FrameCorruption`] — a data frame's serialized PSDU
    ///   gets a bit flipped in flight; the hub's FCS check rejects it,
    ///   so the transmission is attempted but never delivered.
    ///
    /// All fault-only work is gated on [`FaultPoint::is_enabled`] or
    /// happens inside fired branches, so with a
    /// [`ctjam_fault::NullFaultPlan`] or an all-zero-rate plan this is
    /// bit-exact with [`StarNetwork::run_slot`] on the same RNG state.
    ///
    /// # Panics
    ///
    /// Panics if `residual_per` is outside `[0, 1]`.
    pub fn run_slot_with_faults<R: Rng + ?Sized, F: FaultPoint>(
        &mut self,
        slot_s: f64,
        link_up: bool,
        residual_per: f64,
        retry: &RetryPolicy,
        rng: &mut R,
        fault: &mut F,
    ) -> FaultySlotOutcome {
        assert!(
            (0.0..=1.0).contains(&residual_per),
            "residual_per must be a probability, got {residual_per}"
        );
        // Phase 0: the hub itself may stall (GC pause, flash write).
        let mut stall_s = 0.0;
        let hub_stalled = fault.should_fire(FaultSite::HubStall);
        if hub_stalled {
            stall_s = self.timing.straggler_recovery(rng);
        }

        // Phase 1+2: decision inference + polling negotiation.
        let mut overhead = stall_s + self.timing.dqn_inference(rng);
        let negotiation =
            negotiate_with_faults(&self.timing, self.peripherals.len(), retry, rng, fault);
        overhead += negotiation.report.total_s;

        let mut faulty = FaultySlotOutcome {
            outcome: SlotOutcome {
                delivered: 0,
                attempted: 0,
                payload_bytes: 0,
                overhead_s: overhead,
                data_time_s: 0.0,
            },
            corrupted_frames: 0,
            hub_stalled,
            stall_s,
            negotiation,
        };

        let budget = slot_s - overhead;
        if budget <= 0.0 || self.peripherals.is_empty() {
            return faulty;
        }

        // Phase 3: round-robin data exchange until the slot closes.
        let num_peripherals = self.peripherals.len();
        let mut elapsed = 0.0;
        let mut turn = 0usize;
        loop {
            let index = turn % num_peripherals;
            turn += 1;

            let busy = self.cca_busy_prob;
            self.cca_scratch.clear();
            for _ in 0..=self.csma.max_backoffs {
                self.cca_scratch.push(rng.gen_bool(busy));
            }
            let cca_draws = &self.cca_scratch;
            let access = csma_ca(&self.csma, rng, |attempt| cca_draws[attempt as usize]);
            elapsed += access.elapsed_s;
            if elapsed >= budget {
                break;
            }
            if !access.granted {
                continue;
            }

            let frame = self.peripherals[index].next_data_frame(self.payload_len);
            let cycle = self.timing.packet_cycle(frame.airtime_s(), rng);
            if elapsed + cycle > budget {
                break;
            }
            elapsed += cycle;
            faulty.outcome.attempted += 1;

            // In-flight corruption beyond the channel model: flip one
            // bit of the serialized PSDU and let the FCS decide. Gated
            // on is_enabled() so the fault-free path never serializes.
            let mut corrupted = false;
            if fault.is_enabled() {
                if let Ok(mut psdu) = frame.to_psdu() {
                    if fault.corrupt_bytes(FaultSite::FrameCorruption, &mut psdu)
                        && MacFrame::from_psdu(&psdu).is_err()
                    {
                        corrupted = true;
                        faulty.corrupted_frames += 1;
                    }
                }
            }

            let delivered = link_up && !rng.gen_bool(residual_per);
            if delivered && !corrupted {
                if let Some(ack) = self.hub.handle_data(&frame) {
                    let granted = self.peripherals[index].handle_ack(&ack);
                    debug_assert!(granted);
                    faulty.outcome.delivered += 1;
                    if let MacFrame::Data { payload, .. } = &frame {
                        faulty.outcome.payload_bytes += payload.len() as u64;
                    }
                }
            }
        }
        faulty.outcome.data_time_s = elapsed.min(budget);
        faulty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn clean_slot_delivers_hundreds_of_packets() {
        let mut net = StarNetwork::new(3);
        let mut rng = rng(1);
        let o = net.run_slot(3.0, true, 0.0, &mut rng);
        assert!(
            (350..700).contains(&(o.delivered as i64)),
            "delivered = {}",
            o.delivered
        );
        assert_eq!(o.delivered, o.attempted);
    }

    #[test]
    fn jammed_slot_delivers_nothing() {
        let mut net = StarNetwork::new(3);
        let mut rng = rng(2);
        let o = net.run_slot(3.0, false, 0.0, &mut rng);
        assert_eq!(o.delivered, 0);
        assert!(o.attempted > 0, "transmissions should still be attempted");
    }

    #[test]
    fn residual_per_degrades_goodput() {
        let mut rng1 = rng(3);
        let clean = StarNetwork::new(3).run_slot(3.0, true, 0.0, &mut rng1);
        let mut rng2 = rng(3);
        let lossy = StarNetwork::new(3).run_slot(3.0, true, 0.4, &mut rng2);
        assert!(lossy.delivered < clean.delivered);
        assert!(lossy.delivered > 0);
    }

    #[test]
    fn longer_slots_deliver_more() {
        let mut out = Vec::new();
        for (i, slot) in [1.0f64, 3.0, 5.0].iter().enumerate() {
            let mut net = StarNetwork::new(3);
            let mut r = rng(10 + i as u64);
            out.push(net.run_slot(*slot, true, 0.0, &mut r).delivered);
        }
        assert!(out[0] < out[1] && out[1] < out[2], "{out:?}");
    }

    #[test]
    fn utilization_improves_with_slot_length() {
        let mut net = StarNetwork::new(3);
        let mut r = rng(4);
        let short = net.run_slot(1.0, true, 0.0, &mut r);
        let long = net.run_slot(5.0, true, 0.0, &mut r);
        assert!(long.utilization(5.0) > short.utilization(1.0));
        assert!(short.utilization(1.0) > 0.8);
        assert!(long.utilization(5.0) < 1.0);
    }

    #[test]
    fn overhead_shorter_than_slot_leaves_data_time() {
        let mut net = StarNetwork::new(3);
        let mut r = rng(5);
        let o = net.run_slot(2.0, true, 0.0, &mut r);
        assert!(o.overhead_s < 0.5);
        assert!(o.data_time_s > 1.0);
    }

    #[test]
    fn tiny_slot_consumed_by_negotiation() {
        // Paper §IV.D.4: below ~0.5 s the FH negotiation can eat the slot.
        let mut net = StarNetwork::new(10);
        let mut r = rng(6);
        let mut worst_ratio = 1.0f64;
        for _ in 0..50 {
            let o = net.run_slot(0.2, true, 0.0, &mut r);
            let ratio = o.data_time_s / 0.2;
            worst_ratio = worst_ratio.min(ratio);
        }
        assert!(
            worst_ratio < 0.6,
            "negotiation never dominated: {worst_ratio}"
        );
    }

    #[test]
    fn apply_decision_reaches_every_peripheral() {
        let mut net = StarNetwork::new(4);
        let mut r = rng(7);
        let overhead = net.apply_decision(22, 5, &mut r);
        assert!(overhead > 0.0);
        for p in net.peripherals() {
            assert_eq!(p.channel(), 22);
            assert_eq!(p.power_level(), 5);
        }
        assert_eq!(net.hub().channel(), 22);
    }

    #[test]
    fn zero_rate_faulted_slot_matches_plain_path() {
        use ctjam_fault::{FaultPlan, FaultPoint, FaultRates, NullFaultPlan};

        let retry = RetryPolicy::default();
        for seed in 0..3u64 {
            let mut plain_net = StarNetwork::new(4);
            let mut plain_rng = rng(seed);
            let plain = plain_net.run_slot(2.0, true, 0.1, &mut plain_rng);

            let mut null_net = StarNetwork::new(4);
            let mut null_rng = rng(seed);
            let mut null = NullFaultPlan;
            let with_null =
                null_net.run_slot_with_faults(2.0, true, 0.1, &retry, &mut null_rng, &mut null);

            let mut zero_net = StarNetwork::new(4);
            let mut zero_rng = rng(seed);
            let mut zero = FaultPlan::new(seed, FaultRates::zero());
            let with_zero =
                zero_net.run_slot_with_faults(2.0, true, 0.1, &retry, &mut zero_rng, &mut zero);

            assert_eq!(with_null.outcome, plain);
            assert_eq!(with_zero.outcome, plain);
            assert_eq!(with_null.corrupted_frames, 0);
            assert_eq!(zero.total_fired(), 0);
            let follow: u64 = plain_rng.gen();
            assert_eq!(null_rng.gen::<u64>(), follow);
            assert_eq!(zero_rng.gen::<u64>(), follow);
        }
    }

    #[test]
    fn frame_corruption_suppresses_delivery() {
        use ctjam_fault::{FaultPlan, FaultRates, FaultSite};

        let retry = RetryPolicy::default();
        let mut net = StarNetwork::new(3);
        let mut r = rng(21);
        let mut plan = FaultPlan::new(5, FaultRates::zero().with(FaultSite::FrameCorruption, 1.0));
        let o = net.run_slot_with_faults(2.0, true, 0.0, &retry, &mut r, &mut plan);
        // Every frame is corrupted; CRC-16 catches all single-bit flips.
        assert!(o.outcome.attempted > 0);
        assert_eq!(o.outcome.delivered, 0);
        assert_eq!(o.corrupted_frames, o.outcome.attempted);
    }

    #[test]
    fn hub_stall_eats_slot_budget() {
        use ctjam_fault::{FaultPlan, FaultRates, FaultSite};

        let retry = RetryPolicy::default();
        let mut clean_net = StarNetwork::new(3);
        let mut r1 = rng(22);
        let clean = clean_net.run_slot(1.5, true, 0.0, &mut r1);

        let mut net = StarNetwork::new(3);
        let mut r2 = rng(22);
        let mut plan = FaultPlan::new(6, FaultRates::zero().with(FaultSite::HubStall, 1.0));
        let o = net.run_slot_with_faults(1.5, true, 0.0, &retry, &mut r2, &mut plan);
        assert!(o.hub_stalled);
        assert!(o.stall_s > 1.0, "stall_s = {}", o.stall_s);
        assert!(o.outcome.overhead_s > clean.overhead_s);
        assert!(o.outcome.delivered < clean.delivered);
    }

    #[test]
    fn empty_network_idles() {
        let mut net = StarNetwork::new(0);
        let mut r = rng(8);
        let o = net.run_slot(1.0, true, 0.0, &mut r);
        assert_eq!(o.delivered, 0);
        assert_eq!(o.attempted, 0);
    }
}
