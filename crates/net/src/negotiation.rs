//! Polling-mode FH/PC negotiation (paper §IV.D.1 "Polling Mode" and
//! Fig. 9(b)).
//!
//! At the start of each slot the hub announces next-slot channel and power
//! to every peripheral in turn, waits for each confirmation, then commands
//! the simultaneous switch. A node that is off-channel (e.g. it lost the
//! previous announcement to jamming) must be recovered over the control
//! channel, which costs seconds — the outliers visible in Fig. 9(b).

use crate::timing::TimingModel;
use ctjam_fault::{FaultPoint, FaultSite, RetryPolicy};
use rand::Rng;

/// Breakdown of one negotiation round.
#[derive(Debug, Clone, PartialEq)]
pub struct NegotiationReport {
    /// Total wall-clock duration, seconds.
    pub total_s: f64,
    /// Time spent on regular polling, seconds.
    pub polling_s: f64,
    /// Time spent recovering stragglers over the control channel, seconds.
    pub recovery_s: f64,
    /// Indices of nodes that had to be recovered.
    pub stragglers: Vec<usize>,
}

/// Simulates one polling round over `num_nodes` peripherals.
///
/// Every node costs one [`TimingModel::poll_one_node`] draw; nodes flagged
/// as stragglers additionally cost a control-channel recovery.
///
/// # Example
///
/// ```
/// use ctjam_net::negotiation::negotiate;
/// use ctjam_net::timing::TimingModel;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let report = negotiate(&TimingModel::noiseless(), 3, &mut rng);
/// assert!((report.total_s - 3.0 * 0.0131).abs() < 1e-9);
/// ```
pub fn negotiate<R: Rng + ?Sized>(
    timing: &TimingModel,
    num_nodes: usize,
    rng: &mut R,
) -> NegotiationReport {
    let mut polling = 0.0;
    let mut recovery = 0.0;
    let mut stragglers = Vec::new();
    for node in 0..num_nodes {
        polling += timing.poll_one_node(rng);
        if timing.is_straggler(rng) {
            recovery += timing.straggler_recovery(rng);
            stragglers.push(node);
        }
    }
    NegotiationReport {
        total_s: polling + recovery,
        polling_s: polling,
        recovery_s: recovery,
        stragglers,
    }
}

/// A [`NegotiationReport`] augmented with fault-injection accounting.
///
/// Produced by [`negotiate_with_faults`]; with no faults firing the
/// embedded `report` is bit-exact with [`negotiate`] on the same RNG
/// state and every counter is zero.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyNegotiationReport {
    /// The timing breakdown (fault costs are folded into `recovery_s`
    /// and `total_s`).
    pub report: NegotiationReport,
    /// Announcements lost to [`FaultSite::ControlDrop`].
    pub drops: u64,
    /// Announcements answered twice ([`FaultSite::ControlDuplicate`]).
    pub duplicates: u64,
    /// Announcements stalled by [`FaultSite::ControlDelay`].
    pub delays: u64,
    /// Re-poll attempts spent recovering dropped announcements.
    pub retries: u64,
    /// Nodes whose retry budget ran out and fell back to a
    /// control-channel recovery.
    pub exhausted: Vec<usize>,
    /// Seconds charged purely to fault handling (backoffs, re-polls,
    /// duplicate answers, delay stalls, fallback recoveries).
    pub fault_time_s: f64,
}

/// [`negotiate`], with deterministic fault injection and bounded-retry
/// recovery.
///
/// Per node, after the regular poll the plan may fire:
///
/// * [`FaultSite::ControlDrop`] — the announcement is lost. The hub
///   re-polls under `retry` (each attempt charges a jittered backoff
///   plus one more poll); if every attempt is dropped too, the node is
///   recovered over the control channel like a straggler.
/// * [`FaultSite::ControlDuplicate`] — the node answers twice, costing
///   one extra poll's worth of airtime.
/// * [`FaultSite::ControlDelay`] — the exchange stalls for one
///   base-backoff interval before completing.
///
/// All fault-only RNG draws happen inside fired branches, so when no
/// fault fires (a [`ctjam_fault::NullFaultPlan`] or an all-zero-rate
/// plan) this consumes exactly the same `rng` stream as [`negotiate`].
pub fn negotiate_with_faults<R: Rng + ?Sized, F: FaultPoint>(
    timing: &TimingModel,
    num_nodes: usize,
    retry: &RetryPolicy,
    rng: &mut R,
    fault: &mut F,
) -> FaultyNegotiationReport {
    let mut polling = 0.0;
    let mut recovery = 0.0;
    let mut stragglers = Vec::new();
    let mut faulty = FaultyNegotiationReport {
        report: NegotiationReport {
            total_s: 0.0,
            polling_s: 0.0,
            recovery_s: 0.0,
            stragglers: Vec::new(),
        },
        drops: 0,
        duplicates: 0,
        delays: 0,
        retries: 0,
        exhausted: Vec::new(),
        fault_time_s: 0.0,
    };
    for node in 0..num_nodes {
        polling += timing.poll_one_node(rng);
        if fault.should_fire(FaultSite::ControlDrop) {
            faulty.drops += 1;
            let mut recovered = false;
            for attempt in 1..=retry.max_attempts.max(1) {
                faulty.retries += 1;
                faulty.fault_time_s += retry.backoff_s(attempt, rng);
                faulty.fault_time_s += timing.poll_one_node(rng);
                if !fault.should_fire(FaultSite::ControlDrop) {
                    recovered = true;
                    break;
                }
            }
            if !recovered {
                faulty.fault_time_s += timing.straggler_recovery(rng);
                faulty.exhausted.push(node);
            }
        }
        if fault.should_fire(FaultSite::ControlDuplicate) {
            faulty.duplicates += 1;
            faulty.fault_time_s += timing.poll_one_node(rng);
        }
        if fault.should_fire(FaultSite::ControlDelay) {
            faulty.delays += 1;
            faulty.fault_time_s += retry.backoff_s(1, rng);
        }
        if timing.is_straggler(rng) {
            recovery += timing.straggler_recovery(rng);
            stragglers.push(node);
        }
    }
    faulty.report = NegotiationReport {
        total_s: polling + recovery + faulty.fault_time_s,
        polling_s: polling,
        recovery_s: recovery + faulty.fault_time_s,
        stragglers,
    };
    faulty
}

/// Mean negotiation duration over `trials` rounds — one Fig. 9(b) point.
pub fn mean_negotiation_s<R: Rng + ?Sized>(
    timing: &TimingModel,
    num_nodes: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    (0..trials)
        .map(|_| negotiate(timing, num_nodes, rng).total_s)
        .sum::<f64>()
        / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_cost_is_linear_in_nodes() {
        let t = TimingModel::noiseless();
        let mut rng = StdRng::seed_from_u64(0);
        for n in 0..10 {
            let r = negotiate(&t, n, &mut rng);
            assert!((r.total_s - n as f64 * 0.0131).abs() < 1e-9);
            assert!(r.stragglers.is_empty());
        }
    }

    #[test]
    fn mean_grows_with_network_size() {
        // Fig. 9(b): negotiation time scales with the number of peripherals.
        // Strict monotonicity of the sample mean only holds in expectation:
        // with the default 1% straggler rate a single 1.2 s recovery shifts a
        // 400-trial mean by ~3 ms — more than the 25 ms/node slope — so the
        // per-n comparison is made straggler-free (polling cost only, where
        // jitter noise is ~80x below the slope) and the straggler tail is
        // checked separately as a level shift at fixed n.
        let polling_only = TimingModel {
            straggler_prob: 0.0,
            ..TimingModel::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut prev = 0.0;
        for n in 1..=10 {
            let mean = mean_negotiation_s(&polling_only, n, 400, &mut rng);
            assert!(mean > prev, "mean at {n} nodes did not grow");
            prev = mean;
        }
        // Stragglers can only add time: at n = 10 the default model's mean
        // must exceed the straggler-free mean (expected gap 10 * 0.01 * 1.2 s
        // = 120 ms, ~6 sigma over 400 trials).
        let with_stragglers = mean_negotiation_s(&TimingModel::default(), 10, 400, &mut rng);
        assert!(
            with_stragglers > prev,
            "straggler recoveries did not raise the mean ({with_stragglers} <= {prev})"
        );
    }

    #[test]
    fn stragglers_cost_seconds() {
        let t = TimingModel {
            straggler_prob: 1.0,
            ..TimingModel::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let r = negotiate(&t, 4, &mut rng);
        assert_eq!(r.stragglers, vec![0, 1, 2, 3]);
        assert!(
            r.total_s > 4.0,
            "4 stragglers should cost > 4 s, got {}",
            r.total_s
        );
    }

    #[test]
    fn occasional_outliers_exist_at_default_rate() {
        // Fig. 9(b): "in some cases, it can be several seconds".
        let t = TimingModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let worst = (0..500)
            .map(|_| negotiate(&t, 10, &mut rng).total_s)
            .fold(0.0f64, f64::max);
        assert!(
            worst > 1.0,
            "no multi-second outlier in 500 rounds ({worst})"
        );
    }

    #[test]
    fn zero_rate_faulted_negotiation_matches_plain_path() {
        use ctjam_fault::{FaultPlan, FaultRates, NullFaultPlan};

        let t = TimingModel::default();
        let retry = RetryPolicy::default();
        for seed in 0..5u64 {
            let mut plain_rng = StdRng::seed_from_u64(seed);
            let plain = negotiate(&t, 8, &mut plain_rng);

            let mut null_rng = StdRng::seed_from_u64(seed);
            let mut null = NullFaultPlan;
            let with_null = negotiate_with_faults(&t, 8, &retry, &mut null_rng, &mut null);

            let mut zero_rng = StdRng::seed_from_u64(seed);
            let mut zero = FaultPlan::new(seed, FaultRates::zero());
            let with_zero = negotiate_with_faults(&t, 8, &retry, &mut zero_rng, &mut zero);

            assert_eq!(with_null.report, plain);
            assert_eq!(with_zero.report, plain);
            assert_eq!(with_null.fault_time_s, 0.0);
            assert_eq!(zero.total_fired(), 0);
            // The main streams stayed aligned past the call too.
            let follow: u64 = plain_rng.gen();
            assert_eq!(null_rng.gen::<u64>(), follow);
            assert_eq!(zero_rng.gen::<u64>(), follow);
        }
    }

    #[test]
    fn dropped_announcements_are_retried_and_charged() {
        use ctjam_fault::{FaultPlan, FaultPoint, FaultRates, FaultSite};

        let t = TimingModel::noiseless();
        let retry = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(3);
        // 50% drops: some polls need retries, and with 3 bounded
        // attempts a few nodes should exhaust and fall back.
        let mut plan = FaultPlan::new(11, FaultRates::zero().with(FaultSite::ControlDrop, 0.5));
        let out = negotiate_with_faults(&t, 200, &retry, &mut rng, &mut plan);
        assert!(out.drops > 50, "drops = {}", out.drops);
        assert!(out.retries >= out.drops);
        assert!(!out.exhausted.is_empty(), "no node exhausted its retries");
        assert!(out.fault_time_s > 0.0);
        assert!(out.report.total_s > 200.0 * 0.0131);
        // Every initial drop fired the site once; retry-round drops add more.
        assert!(plan.fired(FaultSite::ControlDrop) >= out.drops);
    }

    #[test]
    fn duplicates_and_delays_only_add_time() {
        use ctjam_fault::{FaultPlan, FaultRates, FaultSite};

        let t = TimingModel::noiseless();
        let retry = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(4);
        let rates = FaultRates::zero()
            .with(FaultSite::ControlDuplicate, 1.0)
            .with(FaultSite::ControlDelay, 1.0);
        let mut plan = FaultPlan::new(2, rates);
        let out = negotiate_with_faults(&t, 10, &retry, &mut rng, &mut plan);
        assert_eq!(out.duplicates, 10);
        assert_eq!(out.delays, 10);
        assert_eq!(out.drops, 0);
        assert!(out.exhausted.is_empty());
        // 10 regular polls + 10 duplicate polls + 10 base backoffs.
        assert!(out.fault_time_s > 10.0 * 0.0131);
        assert!((out.report.polling_s - 10.0 * 0.0131).abs() < 1e-9);
    }

    #[test]
    fn zero_trials_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            mean_negotiation_s(&TimingModel::default(), 5, 0, &mut rng),
            0.0
        );
    }
}
