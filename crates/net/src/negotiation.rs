//! Polling-mode FH/PC negotiation (paper §IV.D.1 "Polling Mode" and
//! Fig. 9(b)).
//!
//! At the start of each slot the hub announces next-slot channel and power
//! to every peripheral in turn, waits for each confirmation, then commands
//! the simultaneous switch. A node that is off-channel (e.g. it lost the
//! previous announcement to jamming) must be recovered over the control
//! channel, which costs seconds — the outliers visible in Fig. 9(b).

use crate::timing::TimingModel;
use rand::Rng;

/// Breakdown of one negotiation round.
#[derive(Debug, Clone, PartialEq)]
pub struct NegotiationReport {
    /// Total wall-clock duration, seconds.
    pub total_s: f64,
    /// Time spent on regular polling, seconds.
    pub polling_s: f64,
    /// Time spent recovering stragglers over the control channel, seconds.
    pub recovery_s: f64,
    /// Indices of nodes that had to be recovered.
    pub stragglers: Vec<usize>,
}

/// Simulates one polling round over `num_nodes` peripherals.
///
/// Every node costs one [`TimingModel::poll_one_node`] draw; nodes flagged
/// as stragglers additionally cost a control-channel recovery.
///
/// # Example
///
/// ```
/// use ctjam_net::negotiation::negotiate;
/// use ctjam_net::timing::TimingModel;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let report = negotiate(&TimingModel::noiseless(), 3, &mut rng);
/// assert!((report.total_s - 3.0 * 0.0131).abs() < 1e-9);
/// ```
pub fn negotiate<R: Rng + ?Sized>(
    timing: &TimingModel,
    num_nodes: usize,
    rng: &mut R,
) -> NegotiationReport {
    let mut polling = 0.0;
    let mut recovery = 0.0;
    let mut stragglers = Vec::new();
    for node in 0..num_nodes {
        polling += timing.poll_one_node(rng);
        if timing.is_straggler(rng) {
            recovery += timing.straggler_recovery(rng);
            stragglers.push(node);
        }
    }
    NegotiationReport {
        total_s: polling + recovery,
        polling_s: polling,
        recovery_s: recovery,
        stragglers,
    }
}

/// Mean negotiation duration over `trials` rounds — one Fig. 9(b) point.
pub fn mean_negotiation_s<R: Rng + ?Sized>(
    timing: &TimingModel,
    num_nodes: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    (0..trials)
        .map(|_| negotiate(timing, num_nodes, rng).total_s)
        .sum::<f64>()
        / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_cost_is_linear_in_nodes() {
        let t = TimingModel::noiseless();
        let mut rng = StdRng::seed_from_u64(0);
        for n in 0..10 {
            let r = negotiate(&t, n, &mut rng);
            assert!((r.total_s - n as f64 * 0.0131).abs() < 1e-9);
            assert!(r.stragglers.is_empty());
        }
    }

    #[test]
    fn mean_grows_with_network_size() {
        // Fig. 9(b): negotiation time scales with the number of peripherals.
        // Strict monotonicity of the sample mean only holds in expectation:
        // with the default 1% straggler rate a single 1.2 s recovery shifts a
        // 400-trial mean by ~3 ms — more than the 25 ms/node slope — so the
        // per-n comparison is made straggler-free (polling cost only, where
        // jitter noise is ~80x below the slope) and the straggler tail is
        // checked separately as a level shift at fixed n.
        let polling_only = TimingModel {
            straggler_prob: 0.0,
            ..TimingModel::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut prev = 0.0;
        for n in 1..=10 {
            let mean = mean_negotiation_s(&polling_only, n, 400, &mut rng);
            assert!(mean > prev, "mean at {n} nodes did not grow");
            prev = mean;
        }
        // Stragglers can only add time: at n = 10 the default model's mean
        // must exceed the straggler-free mean (expected gap 10 * 0.01 * 1.2 s
        // = 120 ms, ~6 sigma over 400 trials).
        let with_stragglers = mean_negotiation_s(&TimingModel::default(), 10, 400, &mut rng);
        assert!(
            with_stragglers > prev,
            "straggler recoveries did not raise the mean ({with_stragglers} <= {prev})"
        );
    }

    #[test]
    fn stragglers_cost_seconds() {
        let t = TimingModel {
            straggler_prob: 1.0,
            ..TimingModel::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let r = negotiate(&t, 4, &mut rng);
        assert_eq!(r.stragglers, vec![0, 1, 2, 3]);
        assert!(
            r.total_s > 4.0,
            "4 stragglers should cost > 4 s, got {}",
            r.total_s
        );
    }

    #[test]
    fn occasional_outliers_exist_at_default_rate() {
        // Fig. 9(b): "in some cases, it can be several seconds".
        let t = TimingModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let worst = (0..500)
            .map(|_| negotiate(&t, 10, &mut rng).total_s)
            .fold(0.0f64, f64::max);
        assert!(
            worst > 1.0,
            "no multi-second outlier in 500 rounds ({worst})"
        );
    }

    #[test]
    fn zero_trials_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            mean_negotiation_s(&TimingModel::default(), 5, 0, &mut rng),
            0.0
        );
    }
}
