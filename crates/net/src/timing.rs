//! The field experiment's timing model (paper §IV.D.1, Fig. 9(a)).
//!
//! The paper measures four functions over 100 trials each on the
//! TI CC26X2R1 / USRP testbed:
//!
//! | function                    | typical time |
//! |-----------------------------|--------------|
//! | DQN inference on the hub    | 9 ms         |
//! | data → ACK round trip       | 0.9 ms       |
//! | hub-side packet processing  | 0.6 ms       |
//! | polling one node (FH info)  | 13.1 ms      |
//!
//! Those constants are hardware measurements we cannot re-run, so they are
//! injected here as the simulation's timing model, with multiplicative
//! jitter so Fig. 9(a)'s distributions have realistic spread.

use rand::Rng;

/// Measured time constants of the testbed, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// One DQN forward pass on the hub MCU.
    pub dqn_inference_s: f64,
    /// Data frame → ACK round trip as seen by a peripheral.
    pub ack_round_trip_s: f64,
    /// Hub-side processing per received data frame.
    pub data_processing_s: f64,
    /// Polling one peripheral with next-slot FH/PC info (including its
    /// confirmation).
    pub polling_per_node_s: f64,
    /// Relative jitter (standard deviation / mean) applied to each draw.
    pub jitter_rel: f64,
    /// Probability that a peripheral missed the channel and must be
    /// recovered over the control channel during negotiation.
    pub straggler_prob: f64,
    /// Time to recover one straggler over the control channel (waiting
    /// for it to fall back), in seconds. The paper observes multi-second
    /// negotiations "because some nodes may not be in the correct channel".
    pub straggler_recovery_s: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            dqn_inference_s: 0.009,
            ack_round_trip_s: 0.0009,
            data_processing_s: 0.0006,
            polling_per_node_s: 0.0131,
            jitter_rel: 0.08,
            straggler_prob: 0.01,
            straggler_recovery_s: 1.2,
        }
    }
}

impl TimingModel {
    /// A jitter-free model for deterministic tests.
    pub fn noiseless() -> Self {
        TimingModel {
            jitter_rel: 0.0,
            straggler_prob: 0.0,
            ..TimingModel::default()
        }
    }

    /// Draws one jittered sample around `mean` (truncated at 10% of the
    /// mean so durations stay positive).
    pub fn sample<R: Rng + ?Sized>(&self, mean: f64, rng: &mut R) -> f64 {
        if self.jitter_rel == 0.0 {
            return mean;
        }
        let g = gaussian(rng);
        (mean * (1.0 + self.jitter_rel * g)).max(mean * 0.1)
    }

    /// One DQN inference duration.
    pub fn dqn_inference<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample(self.dqn_inference_s, rng)
    }

    /// One data → ACK round trip duration.
    pub fn ack_round_trip<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample(self.ack_round_trip_s, rng)
    }

    /// One hub-side processing duration.
    pub fn data_processing<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample(self.data_processing_s, rng)
    }

    /// Duration of polling one (reachable) node.
    pub fn poll_one_node<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample(self.polling_per_node_s, rng)
    }

    /// Whether a node turns out to be a straggler this negotiation.
    pub fn is_straggler<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.straggler_prob > 0.0 && rng.gen_bool(self.straggler_prob)
    }

    /// Time to recover one straggler over the control channel.
    pub fn straggler_recovery<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample(self.straggler_recovery_s, rng)
    }

    /// Duration of one complete data exchange (frame airtime + ACK wait +
    /// hub processing) for a frame of the given airtime.
    pub fn packet_cycle<R: Rng + ?Sized>(&self, airtime_s: f64, rng: &mut R) -> f64 {
        airtime_s + self.ack_round_trip(rng) + self.data_processing(rng)
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn defaults_match_paper_measurements() {
        let t = TimingModel::default();
        assert_eq!(t.dqn_inference_s, 0.009);
        assert_eq!(t.ack_round_trip_s, 0.0009);
        assert_eq!(t.data_processing_s, 0.0006);
        assert_eq!(t.polling_per_node_s, 0.0131);
    }

    #[test]
    fn noiseless_is_deterministic() {
        let t = TimingModel::noiseless();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(t.dqn_inference(&mut rng), 0.009);
        assert_eq!(t.poll_one_node(&mut rng), 0.0131);
        assert!(!t.is_straggler(&mut rng));
    }

    #[test]
    fn jittered_samples_center_on_mean() {
        let t = TimingModel::default();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 5000;
        let mean: f64 = (0..n).map(|_| t.dqn_inference(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.009).abs() < 0.0005, "mean = {mean}");
    }

    #[test]
    fn samples_stay_positive() {
        let t = TimingModel {
            jitter_rel: 2.0,
            ..TimingModel::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            assert!(t.ack_round_trip(&mut rng) > 0.0);
        }
    }

    #[test]
    fn packet_cycle_adds_components() {
        let t = TimingModel::noiseless();
        let mut rng = StdRng::seed_from_u64(0);
        let cycle = t.packet_cycle(0.004, &mut rng);
        assert!((cycle - (0.004 + 0.0009 + 0.0006)).abs() < 1e-12);
    }

    #[test]
    fn straggler_rate_respected() {
        let t = TimingModel::default();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20000;
        let hits = (0..n).filter(|_| t.is_straggler(&mut rng)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - t.straggler_prob).abs() < 0.01, "rate = {rate}");
    }
}
