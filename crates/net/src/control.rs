//! The control-channel rendezvous protocol.
//!
//! §II.C.2 / §IV.A.2: "In the case when the hub cannot contact peripheral
//! nodes using the current channel, we assume the existence of a control
//! channel for negotiating the communication channel."
//!
//! This module makes that assumption concrete. A peripheral that missed
//! an FH announcement (its channel was jammed, or it lost the polling
//! frame) falls back to a duty-cycled listen schedule on the well-known
//! control channel: it wakes every [`ControlChannel::check_interval_s`]
//! and listens for [`ControlChannel::listen_window_s`]. The hub pages the
//! missing node continuously; rendezvous completes at the first overlap
//! of a page with a listen window, plus a fixed handshake.
//!
//! The distribution this produces — roughly `U(0, check_interval) +
//! handshake` — is where the timing model's multi-second straggler
//! recoveries (Fig. 9(b)'s outliers) come from.

use rand::Rng;

/// Control-channel rendezvous parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlChannel {
    /// Period of the lost node's listen schedule, seconds.
    pub check_interval_s: f64,
    /// Length of each listen window, seconds.
    pub listen_window_s: f64,
    /// Duration of one hub page transmission, seconds.
    pub page_duration_s: f64,
    /// Fixed re-sync handshake once a page is heard, seconds.
    pub handshake_s: f64,
}

impl Default for ControlChannel {
    /// Defaults sized so the mean recovery matches the timing model's
    /// `straggler_recovery_s ≈ 1.2 s`: a 2.2 s check interval gives a
    /// ~1.1 s mean wait plus a ~0.1 s handshake.
    fn default() -> Self {
        ControlChannel {
            check_interval_s: 2.2,
            listen_window_s: 0.05,
            page_duration_s: 0.01,
            handshake_s: 0.1,
        }
    }
}

/// Outcome of one rendezvous.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rendezvous {
    /// Wall-clock time from "node declared lost" to re-sync complete.
    pub recovery_s: f64,
    /// Pages the hub transmitted before being heard.
    pub pages_sent: u64,
}

impl ControlChannel {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any duration is non-positive or the listen window is
    /// shorter than a page (the node could never hear a full page).
    pub fn validate(&self) {
        assert!(
            self.check_interval_s > 0.0,
            "check interval must be positive"
        );
        assert!(self.listen_window_s > 0.0, "listen window must be positive");
        assert!(self.page_duration_s > 0.0, "page duration must be positive");
        assert!(self.handshake_s >= 0.0, "handshake cannot be negative");
        assert!(
            self.listen_window_s >= self.page_duration_s,
            "listen window must fit at least one page"
        );
    }

    /// Simulates one rendezvous: the lost node's schedule has a uniformly
    /// random phase relative to the moment the hub starts paging.
    pub fn rendezvous<R: Rng + ?Sized>(&self, rng: &mut R) -> Rendezvous {
        self.validate();
        // The node's next listen window starts `phase` seconds from now.
        let phase: f64 = rng.gen_range(0.0..self.check_interval_s);
        // The hub pages back-to-back; the node hears the first page that
        // fully fits inside its window. The window must contain one full
        // page, which it does by validation, so the node syncs in its
        // first window.
        let heard_at = phase + self.page_duration_s;
        let pages_sent = (heard_at / self.page_duration_s).ceil() as u64;
        Rendezvous {
            recovery_s: heard_at + self.handshake_s,
            pages_sent,
        }
    }

    /// Mean recovery time over `trials` simulated rendezvous.
    pub fn mean_recovery_s<R: Rng + ?Sized>(&self, trials: usize, rng: &mut R) -> f64 {
        if trials == 0 {
            return 0.0;
        }
        (0..trials)
            .map(|_| self.rendezvous(rng).recovery_s)
            .sum::<f64>()
            / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovery_bounded_by_interval_plus_handshake() {
        let cc = ControlChannel::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let r = cc.rendezvous(&mut rng);
            assert!(r.recovery_s >= cc.handshake_s);
            assert!(
                r.recovery_s <= cc.check_interval_s + cc.page_duration_s + cc.handshake_s,
                "recovery {} exceeded the worst case",
                r.recovery_s
            );
            assert!(r.pages_sent >= 1);
        }
    }

    #[test]
    fn mean_recovery_matches_the_timing_models_constant() {
        // The defaults must justify straggler_recovery_s ≈ 1.2 s.
        let cc = ControlChannel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mean = cc.mean_recovery_s(20_000, &mut rng);
        assert!(
            (mean - 1.2).abs() < 0.05,
            "mean recovery {mean} should sit near the 1.2 s constant"
        );
    }

    #[test]
    fn denser_listening_recovers_faster_but_costs_energy() {
        let mut rng = StdRng::seed_from_u64(3);
        let lazy = ControlChannel::default();
        let eager = ControlChannel {
            check_interval_s: 0.4,
            ..ControlChannel::default()
        };
        let lazy_mean = lazy.mean_recovery_s(5_000, &mut rng);
        let eager_mean = eager.mean_recovery_s(5_000, &mut rng);
        assert!(eager_mean < lazy_mean / 2.0, "{eager_mean} vs {lazy_mean}");
    }

    #[test]
    fn pages_scale_with_wait() {
        let cc = ControlChannel::default();
        let mut rng = StdRng::seed_from_u64(4);
        let r = cc.rendezvous(&mut rng);
        // Pages are sent back to back for the whole wait.
        let expected = (r.recovery_s - cc.handshake_s) / cc.page_duration_s;
        assert!((r.pages_sent as f64 - expected).abs() <= 1.0);
    }

    #[test]
    #[should_panic]
    fn window_shorter_than_page_rejected() {
        let cc = ControlChannel {
            listen_window_s: 0.001,
            page_duration_s: 0.01,
            ..ControlChannel::default()
        };
        let mut rng = StdRng::seed_from_u64(0);
        cc.rendezvous(&mut rng);
    }

    #[test]
    fn zero_trials_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(ControlChannel::default().mean_recovery_s(0, &mut rng), 0.0);
    }
}
