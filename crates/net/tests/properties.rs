//! Property-based tests for the network substrate.

use ctjam_net::fcs::{append_fcs, crc16, verify_and_strip};
use ctjam_net::frame::{MacFrame, NodeId, MAX_PAYLOAD};
use ctjam_net::mac::{csma_ca, CsmaConfig};
use ctjam_net::star::StarNetwork;
use ctjam_net::timing::TimingModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #[test]
    fn fcs_roundtrip(body in prop::collection::vec(any::<u8>(), 0..200)) {
        let framed = append_fcs(body.clone());
        prop_assert_eq!(verify_and_strip(&framed).unwrap(), &body[..]);
    }

    #[test]
    fn fcs_detects_any_single_byte_change(
        body in prop::collection::vec(any::<u8>(), 1..64),
        idx in 0usize..64,
        delta in 1u8..=255,
    ) {
        let mut framed = append_fcs(body);
        let i = idx % framed.len();
        framed[i] = framed[i].wrapping_add(delta);
        prop_assert!(verify_and_strip(&framed).is_none());
    }

    #[test]
    fn crc_is_deterministic(body in prop::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(crc16(&body), crc16(&body));
    }

    #[test]
    fn mac_data_roundtrip(
        src in 1u8..=200,
        seq in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..=MAX_PAYLOAD),
    ) {
        let frame = MacFrame::Data { src: NodeId(src), seq, payload };
        let psdu = frame.to_psdu().unwrap();
        prop_assert_eq!(MacFrame::from_psdu(&psdu).unwrap(), frame);
    }

    #[test]
    fn mutated_frame_decode_never_panics_or_lies(
        src in 1u8..=200,
        seq in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..=MAX_PAYLOAD),
        num_flips in 1usize..=3,
        flip_seed in any::<u64>(),
    ) {
        // Encode → random bit-flip(s) → decode must never panic, and must
        // either fail (FCS/shape rejects the mutation) or return the exact
        // original frame (the flips cancelled — impossible for distinct
        // positions, but decode is the oracle, not our assumption). What
        // is *never* allowed is silently accepting different bytes.
        // CRC-16/CCITT detects all ≤3-bit errors at these lengths, so
        // distinct-position flips must be rejected.
        let frame = MacFrame::Data { src: NodeId(src), seq, payload };
        let psdu = frame.to_psdu().unwrap();

        let mut flip_rng = StdRng::seed_from_u64(flip_seed);
        let total_bits = psdu.len() * 8;
        let mut positions = Vec::with_capacity(num_flips);
        while positions.len() < num_flips {
            let bit = flip_rng.gen_range(0..total_bits);
            if !positions.contains(&bit) {
                positions.push(bit);
            }
        }
        let mut mutated = psdu.clone();
        for bit in &positions {
            mutated[bit / 8] ^= 1 << (bit % 8);
        }

        match MacFrame::from_psdu(&mutated) {
            Err(_) => {} // rejected: the only acceptable fate for a mutation
            Ok(decoded) => prop_assert_eq!(&decoded, &frame),
        }
        // Un-mutated control: still decodes to the original.
        prop_assert_eq!(MacFrame::from_psdu(&psdu).unwrap(), frame);
    }

    #[test]
    fn csma_never_exceeds_backoff_budget(seed in any::<u64>(), p_busy in 0.0f64..1.0) {
        let cfg = CsmaConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut busy_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let o = csma_ca(&cfg, &mut rng, |_| busy_rng.gen_bool(p_busy));
        prop_assert!(o.cca_attempts <= cfg.max_backoffs + 1);
        prop_assert!(o.elapsed_s > 0.0);
    }

    #[test]
    fn slot_invariants(seed in any::<u64>(), slot_ds in 5u32..=50, up in any::<bool>()) {
        let slot_s = f64::from(slot_ds) / 10.0;
        let mut net = StarNetwork::new(3);
        let mut rng = StdRng::seed_from_u64(seed);
        let o = net.run_slot(slot_s, up, 0.1, &mut rng);
        prop_assert!(o.delivered <= o.attempted);
        prop_assert!(o.data_time_s <= slot_s);
        prop_assert!(o.overhead_s >= 0.0);
        if !up {
            prop_assert_eq!(o.delivered, 0);
        }
    }

    #[test]
    fn noiseless_timing_is_reproducible(nodes in 0usize..8) {
        let t = TimingModel::noiseless();
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(2);
        let a = ctjam_net::negotiation::negotiate(&t, nodes, &mut rng1).total_s;
        let b = ctjam_net::negotiation::negotiate(&t, nodes, &mut rng2).total_s;
        prop_assert_eq!(a, b);
    }
}
