//! Parser fuzz/property tests for the scenario DSL.
//!
//! The decoding contract is *total*: no input — byte soup, truncated
//! files, single-byte mutations of valid files — may panic the parser;
//! everything either decodes or returns a typed [`ScenarioError`]. And
//! canonical emission is a *fixpoint*: any file that parses round-trips
//! parse → emit → parse to bit-identical canonical bytes, which is what
//! makes the scenario fingerprint a stable identity.

use ctjam_scenario::{Scenario, ScenarioError};
use proptest::prelude::*;

/// The checked-in scenario corpus, one file per kind — the mutation and
/// round-trip properties perturb real inputs, not synthetic ones.
const FIXTURES: [&str; 4] = [
    include_str!("../../../scenarios/fig02_jamming_effect.json"),
    include_str!("../../../scenarios/fig06_07_08_sweeps.json"),
    include_str!("../../../scenarios/fig10_goodput_utilization.json"),
    include_str!("../../../scenarios/zoo_campaign.json"),
];

/// Exercises the full decode surface on arbitrary bytes. Panics inside
/// `parse` fail the test; a returned error is the expected outcome.
fn assert_total(bytes: &[u8]) {
    match Scenario::parse(bytes) {
        Ok(scenario) => {
            // Anything that decodes must re-emit parseably.
            let emitted = scenario.canonical_bytes();
            Scenario::parse(&emitted).expect("emitted scenario must re-parse");
        }
        Err(ScenarioError::FingerprintMismatch { .. }) => {
            panic!("parse cannot produce a checkpoint error")
        }
        Err(_) => {}
    }
}

#[test]
fn checked_in_scenarios_parse_and_round_trip() {
    for text in FIXTURES {
        let scenario = Scenario::parse_str(text).expect("fixture must parse");
        let emitted = scenario.canonical_bytes();
        let reparsed = Scenario::parse(&emitted).expect("canonical bytes must parse");
        assert_eq!(
            emitted,
            reparsed.canonical_bytes(),
            "canonical emission must be a fixpoint for {}",
            scenario.name
        );
        // Quick mode must change the identity, not crash it.
        assert_ne!(
            scenario.fingerprint(false),
            scenario.fingerprint(true),
            "quick overrides must move the fingerprint for {}",
            scenario.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the parser.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        assert_total(&bytes);
    }

    /// Truncating a valid scenario at any offset never panics; the
    /// result is either a parse error or (at full length) the original.
    #[test]
    fn truncation_never_panics(which in 0usize..4, cut in 0usize..2048) {
        let bytes = FIXTURES[which].as_bytes();
        let cut = cut.min(bytes.len());
        assert_total(&bytes[..cut]);
    }

    /// Overwriting one byte of a valid scenario never panics, and
    /// whatever still parses still round-trips bit-identically.
    #[test]
    fn single_byte_mutation_never_panics(
        which in 0usize..4,
        offset in 0usize..2048,
        byte in any::<u8>(),
    ) {
        let mut bytes = FIXTURES[which].as_bytes().to_vec();
        let offset = offset % bytes.len();
        bytes[offset] = byte;
        assert_total(&bytes);
    }

    /// Splicing a chunk of noise into a valid scenario never panics.
    #[test]
    fn spliced_noise_never_panics(
        which in 0usize..4,
        offset in 0usize..2048,
        noise in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let base = FIXTURES[which].as_bytes();
        let offset = offset % (base.len() + 1);
        let mut bytes = base[..offset].to_vec();
        bytes.extend_from_slice(&noise);
        bytes.extend_from_slice(&base[offset..]);
        assert_total(&bytes);
    }

    /// Generated campaign scenarios (random seeds, slots, budgets)
    /// round-trip parse → emit → parse to identical canonical bytes,
    /// and the fingerprint is a pure function of those bytes.
    #[test]
    fn generated_campaigns_round_trip(
        base_seed in 0u64..(1 << 53),
        slots in 1usize..10_000,
        train in 1usize..20_000,
        eval in 1usize..20_000,
        seed_a in 0u64..1000,
        seed_b in 1000u64..2000,
    ) {
        let text = format!(
            r#"{{
                "schema": "ctjam-scenario/v1",
                "name": "generated",
                "kind": "campaign",
                "base_seed": {base_seed},
                "slots": {slots},
                "seeds": [{seed_a}, {seed_b}],
                "adversaries": ["sweep", "pursuit"],
                "policies": ["random-fh"],
                "budget": {{ "train_slots": {train}, "eval_slots": {eval} }}
            }}"#
        );
        let scenario = Scenario::parse_str(&text).unwrap();
        let emitted = scenario.canonical_bytes();
        let reparsed = Scenario::parse(&emitted).unwrap();
        prop_assert_eq!(&emitted, &reparsed.canonical_bytes());
        prop_assert_eq!(scenario.fingerprint(false), reparsed.fingerprint(false));
    }
}
