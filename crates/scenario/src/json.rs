//! A total JSON parser producing [`ctjam_telemetry::JsonValue`] trees.
//!
//! The container has no network access, so — exactly like the telemetry
//! serializer and the serve wire codec — this is a hand-written
//! recursive-descent parser with **total decoding**: any byte sequence
//! either parses or returns a typed [`JsonError`] with the byte offset
//! of the failure. It never panics, and a depth cap keeps adversarial
//! nesting (`[[[[…`) from overflowing the stack.
//!
//! Deviations from a maximally permissive reader, chosen so that
//! `parse → emit → parse` is bit-exact against the canonical
//! [`JsonValue`] serializer:
//!
//! * Non-finite numbers (`1e999`) are rejected — the serializer prints
//!   non-finite floats as `null`, which would not round-trip.
//! * Duplicate object keys are rejected — insertion-order objects have
//!   no canonical "last wins" story, and a scenario carrying the same
//!   knob twice is a bug worth rejecting loudly.
//! * Trailing content after the top-level value is rejected.

use ctjam_telemetry::JsonValue;
use std::fmt;

/// Nesting depth beyond which parsing fails instead of recursing.
/// Scenario files are a few levels deep; 64 is far above any legitimate
/// document and far below stack exhaustion.
const MAX_DEPTH: usize = 64;

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document from `input` (UTF-8 bytes).
///
/// Returns the value tree, or the first error encountered. Total: never
/// panics, for any input.
pub fn parse(input: &[u8]) -> Result<JsonValue, JsonError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing content after the top-level value"));
    }
    Ok(value)
}

/// Parses one JSON document from a string slice.
pub fn parse_str(input: &str) -> Result<JsonValue, JsonError> {
    parse(input.as_bytes())
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    /// Consumes `word` if the input continues with it.
    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.input[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 64 levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    offset: key_offset,
                    message: format!("duplicate key {key:?}"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue; // unicode_escape consumed everything
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input may be invalid
                    // UTF-8: validate the multi-byte sequence).
                    let rest = &self.input[self.pos..];
                    match std::str::from_utf8(&rest[..rest.len().min(4)]) {
                        Ok(s) => {
                            // Entire prefix is valid; take its first char.
                            let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        Err(e) if e.valid_up_to() > 0 => {
                            let valid = &rest[..e.valid_up_to()];
                            // Safe: from_utf8 just validated this prefix.
                            let c = match std::str::from_utf8(valid) {
                                Ok(s) => s.chars().next(),
                                Err(_) => None,
                            };
                            let c = c.ok_or_else(|| self.err("empty char"))?;
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the `u`),
    /// plus a low-surrogate pair when the first unit is a high surrogate.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let unit = self.hex4()?;
        if (0xD800..0xDC00).contains(&unit) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.input[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.err("invalid low surrogate"));
                }
                let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))
            } else {
                Err(self.err("lone high surrogate"))
            }
        } else if (0xDC00..0xE000).contains(&unit) {
            Err(self.err("lone low surrogate"))
        } else {
            char::from_u32(unit).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The lexed slice is ASCII by construction.
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("non-ASCII number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("unreadable number"))?;
        if !n.is_finite() {
            return Err(JsonError {
                offset: start,
                message: format!("number {text} overflows f64"),
            });
        }
        Ok(JsonValue::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_str("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_str("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_str(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_str("3.5").unwrap(), JsonValue::Num(3.5));
        assert_eq!(parse_str("-0.125e1").unwrap(), JsonValue::Num(-1.25));
        assert_eq!(
            parse_str("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_containers() {
        let v = parse_str(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.to_string_compact(), r#"{"a":[1,2,{"b":null}],"c":"x"}"#);
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(
            parse_str(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            JsonValue::Str("Aé😀".into())
        );
        assert!(parse_str(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "nul",
            "truex",
            "\"abc",
            "[1] 2",
            "{\"a\":1,\"a\":2}",
            "1e999",
            "-",
            "\"\\q\"",
        ] {
            assert!(parse_str(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn deep_nesting_fails_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        assert!(parse(deep.as_bytes()).is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse_str("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn canonical_emission_reparses_bit_exactly() {
        let text =
            r#"{"name":"x","seed":51105,"values":[1,2.5,-0.125],"flag":true,"nothing":null}"#;
        let v = parse_str(text).unwrap();
        let emitted = v.to_string_compact();
        assert_eq!(parse_str(&emitted).unwrap(), v);
        assert_eq!(parse_str(&emitted).unwrap().to_string_compact(), emitted);
    }
}
