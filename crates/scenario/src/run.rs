//! Deterministic scenario runners.
//!
//! Each runner replays the exact RNG discipline of the figure bin it
//! replaced, so a scenario run is bit-identical to the historical
//! hand-coded run (the migration acceptance criterion). The campaign
//! runner adds resumability: a [`ScenarioProgress`] checkpoint embeds
//! one fleet [`CampaignProgress`] per completed policy, gated by the
//! scenario fingerprint so `--resume` against an edited file fails with
//! a typed error instead of silently mixing runs.

use crate::error::ScenarioError;
use crate::schema::{Campaign, Field, LinkSweep, Sweep};
use ctjam_channel::link::LinkReport;
use ctjam_core::defender::{DqnDefender, NoDefense};
use ctjam_core::field::{FieldConfig, FieldExperiment, FieldReport};
use ctjam_core::jammer::JammerMode;
use ctjam_core::metrics::Metrics;
use ctjam_core::runner::{capture_sweep, RunBuilder};
use ctjam_dqn::checkpoint;
use ctjam_fleet::{CampaignProgress, CampaignResult, CampaignSpec, Fleet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

use crate::compile::apply_mode;

/// Result of a `link_sweep` scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSweepRun {
    /// The jammer-free baseline.
    pub clean: LinkReport,
    /// One row per distance, in sweep order.
    pub rows: Vec<LinkRow>,
}

/// One distance of a `link_sweep`: a report per jammer family, in
/// scenario order.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRow {
    /// Jammer distance, meters.
    pub distance_m: f64,
    /// Reports parallel to [`LinkSweep::jammers`].
    pub reports: Vec<LinkReport>,
}

/// Runs a `link_sweep` scenario. RNG discipline: one `StdRng` seeded
/// from the scenario seed, consumed by `evaluate_faded` per family per
/// distance in order — exactly the historical `fig02` loop.
pub fn run_link_sweep(scenario: &LinkSweep) -> LinkSweepRun {
    let link = scenario.scenario();
    let kinds = scenario.kinds();
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let clean = link.evaluate_clean();
    let mut rows = Vec::new();
    for d in scenario.distance_start..=scenario.distance_end {
        let d = f64::from(d);
        let reports = kinds
            .iter()
            .map(|&kind| link.evaluate_faded(kind, d, scenario.draws, &mut rng))
            .collect();
        rows.push(LinkRow {
            distance_m: d,
            reports,
        });
    }
    LinkSweepRun { clean, rows }
}

/// One (axis, jammer-mode) table of a `sweep` scenario.
#[derive(Debug, Clone)]
pub struct SweepTableRun {
    /// Axis display name.
    pub name: String,
    /// Filename-safe slug of the axis name.
    pub slug: String,
    /// X-axis labels.
    pub xs: Vec<String>,
    /// The jammer mode this table ran under.
    pub mode: JammerMode,
    /// One Table-I metrics block per x value.
    pub metrics: Vec<Metrics>,
    /// Where the deterministic-replay trace landed, if one was
    /// requested: `Ok(path)` or the write error's message.
    pub trace: Option<Result<PathBuf, String>>,
}

/// Runs every (axis, mode) table of a `sweep` scenario, in scenario
/// order (axes outer, modes inner — the historical bin order). When
/// `trace_dir` is set, a deterministic-replay trace named
/// `<trace_prefix><slug>_<mode:?>` is captured and written per table
/// before the sweep runs, as the `fig06` bin always did.
pub fn run_sweep(
    scenario: &Sweep,
    trace_dir: Option<&Path>,
    trace_prefix: &str,
) -> Vec<SweepTableRun> {
    let budget = scenario.budget();
    let mut tables = Vec::new();
    for compiled in scenario.tables() {
        for mode in scenario.jammer_modes() {
            let mode_points = apply_mode(&compiled.points, mode);
            let trace = trace_dir.map(|dir| {
                let trace = capture_sweep(
                    &format!("{trace_prefix}{}_{mode:?}", compiled.slug),
                    &mode_points,
                    budget,
                    scenario.seed,
                );
                trace.write(dir).map_err(|err| err.to_string())
            });
            let metrics = RunBuilder::new(&mode_points[0])
                .kernel(scenario.kernel)
                .budget(budget)
                .seed(scenario.seed)
                .sweep(&mode_points, |_, _| {});
            tables.push(SweepTableRun {
                name: compiled.name.clone(),
                slug: compiled.slug.clone(),
                xs: compiled.xs.clone(),
                mode,
                metrics,
                trace,
            });
        }
    }
    tables
}

/// One duration point of a `field` scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldRow {
    /// Tx/Jx slot duration, seconds.
    pub duration_s: f64,
    /// The defended, jammed run.
    pub report: FieldReport,
    /// The no-jammer, no-defense reference run.
    pub reference: FieldReport,
}

/// Runs a `field` scenario. RNG discipline: one `StdRng` seeded from
/// the scenario seed drives defender init, training, and both
/// experiments per duration in order — exactly the historical `fig10`
/// loop, so the numbers are bit-identical to the pre-migration bin.
pub fn run_field(scenario: &Field) -> Vec<FieldRow> {
    let base = scenario.config();
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let mut defender = DqnDefender::paper_default(&base.env, &mut rng);
    RunBuilder::new(&base.env).train(&mut defender, scenario.train_slots, &mut rng);
    defender.set_training(false);

    let mut rows = Vec::new();
    for &duration in &scenario.durations {
        let config = FieldConfig {
            tx_slot_s: duration,
            jx_slot_s: duration,
            ..base.clone()
        };
        let mut experiment = FieldExperiment::new(config.clone(), defender.clone(), &mut rng);
        let report = experiment.run(scenario.slots, &mut rng);

        let reference_config = FieldConfig {
            jammer_enabled: false,
            ..config
        };
        let reference = NoDefense::new(&reference_config.env, &mut rng);
        let mut reference_exp = FieldExperiment::new(reference_config, reference, &mut rng);
        let reference_report = reference_exp.run(scenario.slots, &mut rng);
        rows.push(FieldRow {
            duration_s: duration,
            report,
            reference: reference_report,
        });
    }
    rows
}

/// One completed policy of a `campaign` scenario.
#[derive(Debug, Clone)]
pub struct CampaignPolicyRun {
    /// The policy label from the scenario.
    pub policy: String,
    /// The compiled fleet spec the fleet ran.
    pub spec: CampaignSpec,
    /// The campaign result (bit-exact at any worker count).
    pub result: CampaignResult,
}

/// How to run a `campaign` scenario.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Worker threads (`None` = the fleet default).
    pub threads: Option<usize>,
    /// Where to keep the progress checkpoint (`None` = no
    /// checkpointing).
    pub checkpoint: Option<PathBuf>,
    /// Resume from the checkpoint if it exists (a missing file starts
    /// fresh; a fingerprint mismatch is an error).
    pub resume: bool,
}

/// The scenario-level progress checkpoint: one fleet
/// [`CampaignProgress`] per completed policy, gated by the scenario
/// fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioProgress {
    /// [`crate::Scenario::fingerprint`] of the effective scenario this
    /// progress belongs to.
    pub fingerprint: u64,
    /// Completed policies: `(policy index, progress)` in completion
    /// order.
    pub entries: Vec<(u64, CampaignProgress)>,
}

impl ScenarioProgress {
    /// Writes the progress into the suite's standard sealed checkpoint
    /// container at `path`.
    pub fn save(&self, path: &Path) -> Result<(), ScenarioError> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.fingerprint.to_le_bytes());
        payload.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (index, progress) in &self.entries {
            payload.extend_from_slice(&index.to_le_bytes());
            progress.encode_payload(&mut payload);
        }
        checkpoint::write_checkpoint(path, &payload)
            .map_err(|err| ScenarioError::Checkpoint(format!("{err:?}")))
    }

    /// Reads progress written by [`ScenarioProgress::save`].
    pub fn load(path: &Path) -> Result<Self, ScenarioError> {
        let malformed = || ScenarioError::Checkpoint("malformed progress payload".into());
        let payload = checkpoint::read_checkpoint(path)
            .map_err(|err| ScenarioError::Checkpoint(format!("{err:?}")))?;
        let mut cursor = payload.as_slice();
        let fingerprint = checkpoint::take_u64(&mut cursor).map_err(|_| malformed())?;
        let count = checkpoint::take_u64(&mut cursor).map_err(|_| malformed())? as usize;
        if count > 1 << 16 {
            return Err(malformed());
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let index = checkpoint::take_u64(&mut cursor).map_err(|_| malformed())?;
            let progress =
                CampaignProgress::decode_payload(&mut cursor).map_err(|_| malformed())?;
            entries.push((index, progress));
        }
        if !cursor.is_empty() {
            return Err(malformed());
        }
        Ok(ScenarioProgress {
            fingerprint,
            entries,
        })
    }
}

/// Runs a `campaign` scenario: every policy in scenario order through
/// the fleet. With a checkpoint path, progress is saved after each
/// completed policy; with `resume`, completed policies are
/// reconstituted from the checkpoint instead of re-run (bit-exact, via
/// the fleet's partition-invariant merge).
///
/// `scenario_fingerprint` must be the fingerprint of the *effective*
/// scenario (see [`crate::Scenario::fingerprint`]); a checkpoint
/// carrying any other fingerprint is rejected with
/// [`ScenarioError::FingerprintMismatch`].
pub fn run_campaign(
    scenario_name: &str,
    campaign: &Campaign,
    scenario_fingerprint: u64,
    options: &CampaignOptions,
) -> Result<Vec<CampaignPolicyRun>, ScenarioError> {
    let mut fleet = Fleet::new();
    if let Some(threads) = options.threads {
        fleet = fleet.threads(threads);
    }
    let mut progress = match &options.checkpoint {
        Some(path) if options.resume && path.exists() => {
            let loaded = ScenarioProgress::load(path)?;
            if loaded.fingerprint != scenario_fingerprint {
                return Err(ScenarioError::FingerprintMismatch {
                    checkpoint: loaded.fingerprint,
                    scenario: scenario_fingerprint,
                });
            }
            loaded
        }
        _ => ScenarioProgress {
            fingerprint: scenario_fingerprint,
            entries: Vec::new(),
        },
    };

    let mut runs = Vec::new();
    for (index, (policy, spec)) in campaign.specs(scenario_name).into_iter().enumerate() {
        let saved = progress
            .entries
            .iter()
            .find(|(i, _)| *i == index as u64)
            .map(|(_, p)| p.clone());
        let result = match saved {
            Some(saved) => {
                if saved.fingerprint != spec.fingerprint() {
                    return Err(ScenarioError::Checkpoint(format!(
                        "policy {policy:?}: checkpointed spec fingerprint \
                         {:016x} != compiled {:016x}",
                        saved.fingerprint,
                        spec.fingerprint()
                    )));
                }
                fleet.resume(&spec, &saved)
            }
            None => {
                let result = fleet.run(&spec);
                progress.entries.push((
                    index as u64,
                    CampaignProgress {
                        fingerprint: spec.fingerprint(),
                        outcomes: result.outcomes.clone(),
                        telemetry: result.telemetry.clone(),
                    },
                ));
                if let Some(path) = &options.checkpoint {
                    progress.save(path)?;
                }
                result
            }
        };
        runs.push(CampaignPolicyRun {
            policy,
            spec,
            result,
        });
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Scenario, ScenarioKind};

    fn campaign_text() -> &'static str {
        r#"{
            "schema": "ctjam-scenario/v1",
            "name": "unit_campaign",
            "kind": "campaign",
            "base_seed": 41,
            "slots": 60,
            "seeds": [1, 2],
            "adversaries": ["sweep", "pursuit"],
            "policies": ["random-fh", "no-defense"]
        }"#
    }

    fn ckpt(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ctjam_scenario_run_{tag}.ckpt"))
    }

    #[test]
    fn campaign_runs_match_at_every_worker_count() {
        let s = Scenario::parse_str(campaign_text()).unwrap();
        let ScenarioKind::Campaign(c) = &s.kind else {
            panic!("wrong kind")
        };
        let fp = s.fingerprint(false);
        let run = |threads| {
            run_campaign(
                &s.name,
                c,
                fp,
                &CampaignOptions {
                    threads: Some(threads),
                    ..CampaignOptions::default()
                },
            )
            .unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.len(), 2);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.result.outcomes, b.result.outcomes);
            assert_eq!(
                a.result.telemetry.to_json().to_string_compact(),
                b.result.telemetry.to_json().to_string_compact()
            );
        }
    }

    #[test]
    fn resume_reconstitutes_completed_policies_bit_exactly() {
        let s = Scenario::parse_str(campaign_text()).unwrap();
        let ScenarioKind::Campaign(c) = &s.kind else {
            panic!("wrong kind")
        };
        let fp = s.fingerprint(false);
        let path = ckpt("resume");
        std::fs::remove_file(&path).ok();
        let options = CampaignOptions {
            threads: Some(2),
            checkpoint: Some(path.clone()),
            resume: true,
        };
        let fresh = run_campaign(&s.name, c, fp, &options).unwrap();
        let resumed = run_campaign(&s.name, c, fp, &options).unwrap();
        std::fs::remove_file(&path).ok();
        for (a, b) in fresh.iter().zip(&resumed) {
            assert_eq!(a.result.outcomes, b.result.outcomes);
            assert_eq!(
                a.result.telemetry.to_json().to_string_compact(),
                b.result.telemetry.to_json().to_string_compact()
            );
        }
    }

    #[test]
    fn resume_rejects_a_foreign_fingerprint() {
        let s = Scenario::parse_str(campaign_text()).unwrap();
        let ScenarioKind::Campaign(c) = &s.kind else {
            panic!("wrong kind")
        };
        let path = ckpt("foreign");
        std::fs::remove_file(&path).ok();
        let options = CampaignOptions {
            threads: Some(1),
            checkpoint: Some(path.clone()),
            resume: true,
        };
        run_campaign(&s.name, c, s.fingerprint(false), &options).unwrap();
        let err = run_campaign(&s.name, c, s.fingerprint(false) ^ 1, &options).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, ScenarioError::FingerprintMismatch { .. }));
    }
}
