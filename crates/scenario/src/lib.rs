//! # ctjam-scenario — campaigns as data
//!
//! The declarative scenario layer of the workspace: experiments that
//! used to be hand-coded figure binaries become checked-in JSON files
//! under `scenarios/`, decoded by a total, strictly-validating parser
//! and compiled onto the existing engines (`RunBuilder` sweeps, the
//! field experiment, the `ctjam-fleet` campaign engine). A small
//! [`report`] module renders byte-deterministic static HTML reports —
//! tables plus inline SVG plots — from the resulting telemetry, with no
//! dependencies beyond the workspace.
//!
//! | module | contents |
//! |--------|----------|
//! | [`json`] | total JSON parser onto `ctjam_telemetry::JsonValue` |
//! | [`error`] | typed [`ScenarioError`] + did-you-mean hints |
//! | [`schema`] | the versioned [`Scenario`] schema: decode, canonical emit, fingerprint |
//! | [`compile`] | scenario → `EnvParams` grids / `CampaignSpec`s |
//! | [`run`] | deterministic runners + resumable campaign progress |
//! | [`report`] | deterministic offline HTML/SVG report builder |
//!
//! ## Determinism contract
//!
//! A scenario's identity is its [`Scenario::fingerprint`]: FNV-1a over
//! the canonical (parse → emit) byte form of the *effective* scenario
//! (quick-mode overrides applied). Everything downstream — episode
//! seeds, campaign checkpoints, report bytes — is a pure function of
//! that effective scenario, so the same file produces the same report
//! byte-for-byte at any worker count, and a `--resume` against an
//! edited file is rejected instead of silently mixing runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod error;
pub mod json;
pub mod report;
pub mod run;
pub mod schema;

/// The schema tag this build reads and writes.
pub const SCHEMA: &str = "ctjam-scenario/v1";

pub use error::ScenarioError;
pub use report::Report;
pub use schema::{Campaign, Field, LinkSweep, Scenario, ScenarioKind, Sweep, SweepAxis};
