//! Deterministic offline HTML reports: tables plus inline SVG plots.
//!
//! [`Report`] is a write-once builder; [`Report::to_html`] is a pure
//! function of everything appended to it — no timestamps, no
//! randomness, fixed-precision coordinate formatting — so the same
//! inputs always produce the same bytes. That makes report files
//! diffable and lets CI assert byte-equality between two runs of the
//! same scenario directory. The output is a single self-contained file:
//! embedded CSS, inline SVG, no scripts, no external fetches.

use ctjam_telemetry::Histogram;
use std::fmt::Write as _;

/// Fixed series palette (Matplotlib's tab colors, a stable choice).
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

const CHART_W: f64 = 640.0;
const CHART_H: f64 = 300.0;
const MARGIN_L: f64 = 56.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 14.0;
const MARGIN_B: f64 = 34.0;

/// A deterministic static-HTML report under construction.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    body: String,
}

/// Escapes text for HTML element content and attribute values.
pub fn escape_html(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Deterministic short form of a value for table cells and tick labels:
/// integral values print bare, everything else with four significant
/// digits; non-finite values print as `nan`/`inf`/`-inf`.
pub fn fmt_value(value: f64) -> String {
    if value.is_nan() {
        return "nan".into();
    }
    if value.is_infinite() {
        return if value > 0.0 {
            "inf".into()
        } else {
            "-inf".into()
        };
    }
    if value == value.trunc() && value.abs() < 1e15 {
        return format!("{}", value as i64);
    }
    let text = format!("{value:.4}");
    let trimmed = text.trim_end_matches('0').trim_end_matches('.');
    trimmed.to_string()
}

/// SVG coordinate: two decimals, enough for pixel-level placement and
/// stable across platforms.
fn coord(value: f64) -> String {
    format!("{value:.2}")
}

impl Report {
    /// Starts a report with the given page title.
    pub fn new(title: &str) -> Self {
        Report {
            title: title.to_string(),
            body: String::new(),
        }
    }

    /// Appends a section heading.
    pub fn section(&mut self, heading: &str) -> &mut Self {
        let _ = writeln!(self.body, "<h2>{}</h2>", escape_html(heading));
        self
    }

    /// Appends a paragraph of text.
    pub fn paragraph(&mut self, text: &str) -> &mut Self {
        let _ = writeln!(self.body, "<p>{}</p>", escape_html(text));
        self
    }

    /// Appends a two-column key/value table.
    pub fn kv_table(&mut self, rows: &[(String, String)]) -> &mut Self {
        self.body.push_str("<table class=\"kv\">\n");
        for (key, value) in rows {
            let _ = writeln!(
                self.body,
                "<tr><th>{}</th><td>{}</td></tr>",
                escape_html(key),
                escape_html(value)
            );
        }
        self.body.push_str("</table>\n");
        self
    }

    /// Appends a table with a header row.
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<String>]) -> &mut Self {
        self.body.push_str("<table>\n<tr>");
        for h in headers {
            let _ = write!(self.body, "<th>{}</th>", escape_html(h));
        }
        self.body.push_str("</tr>\n");
        for row in rows {
            self.body.push_str("<tr>");
            for cell in row {
                let _ = write!(self.body, "<td>{}</td>", escape_html(cell));
            }
            self.body.push_str("</tr>\n");
        }
        self.body.push_str("</table>\n");
        self
    }

    /// Appends a cross-table (matrix with row labels): `cells[r][c]`
    /// under column `cols[c]` in row `rows[r]`.
    pub fn matrix(
        &mut self,
        corner: &str,
        cols: &[String],
        rows: &[String],
        cells: &[Vec<String>],
    ) -> &mut Self {
        self.body.push_str("<table>\n<tr>");
        let _ = write!(self.body, "<th>{}</th>", escape_html(corner));
        for c in cols {
            let _ = write!(self.body, "<th>{}</th>", escape_html(c));
        }
        self.body.push_str("</tr>\n");
        for (label, row) in rows.iter().zip(cells) {
            let _ = write!(self.body, "<tr><th>{}</th>", escape_html(label));
            for cell in row {
                let _ = write!(self.body, "<td>{}</td>", escape_html(cell));
            }
            self.body.push_str("</tr>\n");
        }
        self.body.push_str("</table>\n");
        self
    }

    /// Appends a line chart: one polyline per `(label, ys)` series over
    /// the shared categorical x axis. Non-finite points are dropped
    /// (the polyline breaks); an all-empty chart renders as a note.
    pub fn line_chart(
        &mut self,
        caption: &str,
        x_labels: &[String],
        series: &[(String, Vec<f64>)],
    ) -> &mut Self {
        let finite: Vec<f64> = series
            .iter()
            .flat_map(|(_, ys)| ys.iter().copied())
            .filter(|y| y.is_finite())
            .collect();
        if x_labels.is_empty() || finite.is_empty() {
            return self.paragraph(&format!("{caption}: no data"));
        }
        let (mut y_lo, mut y_hi) = finite
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &y| {
                (lo.min(y), hi.max(y))
            });
        if y_lo == y_hi {
            y_lo -= 1.0;
            y_hi += 1.0;
        }
        let plot_w = CHART_W - MARGIN_L - MARGIN_R;
        let plot_h = CHART_H - MARGIN_T - MARGIN_B;
        let x_at = |i: usize| {
            let n = x_labels.len();
            if n == 1 {
                MARGIN_L + plot_w / 2.0
            } else {
                MARGIN_L + plot_w * i as f64 / (n - 1) as f64
            }
        };
        let y_at = |y: f64| MARGIN_T + plot_h * (1.0 - (y - y_lo) / (y_hi - y_lo));

        self.open_figure(caption);
        let _ = writeln!(
            self.body,
            "<svg viewBox=\"0 0 {CHART_W} {CHART_H}\" role=\"img\">"
        );
        // Axes and y ticks.
        self.axis_frame();
        for tick in 0..=4 {
            let y = y_lo + (y_hi - y_lo) * f64::from(tick) / 4.0;
            let py = y_at(y);
            let _ = writeln!(
                self.body,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" class=\"grid\"></line>",
                coord(MARGIN_L),
                coord(py),
                coord(CHART_W - MARGIN_R),
                coord(py)
            );
            let _ = writeln!(
                self.body,
                "<text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">{}</text>",
                coord(MARGIN_L - 6.0),
                coord(py + 4.0),
                escape_html(&fmt_value(y))
            );
        }
        // X tick labels (thinned to at most 10).
        let step = x_labels.len().div_ceil(10).max(1);
        for (i, label) in x_labels.iter().enumerate() {
            if i % step != 0 && i != x_labels.len() - 1 {
                continue;
            }
            let _ = writeln!(
                self.body,
                "<text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"middle\">{}</text>",
                coord(x_at(i)),
                coord(CHART_H - MARGIN_B + 16.0),
                escape_html(label)
            );
        }
        // Series.
        for (s, (label, ys)) in series.iter().enumerate() {
            let color = PALETTE[s % PALETTE.len()];
            let mut points = String::new();
            for (i, &y) in ys.iter().enumerate().take(x_labels.len()) {
                if !y.is_finite() {
                    continue;
                }
                if !points.is_empty() {
                    points.push(' ');
                }
                let _ = write!(points, "{},{}", coord(x_at(i)), coord(y_at(y)));
            }
            let _ = writeln!(
                self.body,
                "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.6\" \
                 points=\"{points}\"></polyline>"
            );
            // Legend swatch + label, stacked top-left inside the plot.
            let ly = MARGIN_T + 14.0 + 16.0 * s as f64;
            let _ = writeln!(
                self.body,
                "<rect x=\"{}\" y=\"{}\" width=\"10\" height=\"3\" fill=\"{color}\"></rect>",
                coord(MARGIN_L + 8.0),
                coord(ly - 4.0)
            );
            let _ = writeln!(
                self.body,
                "<text x=\"{}\" y=\"{}\" class=\"tick\">{}</text>",
                coord(MARGIN_L + 24.0),
                coord(ly),
                escape_html(label)
            );
        }
        self.body.push_str("</svg>\n</figure>\n");
        self
    }

    /// Appends a histogram as an SVG bar chart, with the summary stats
    /// (count, mean, p50/p95/p99, out-of-range counts) underneath.
    pub fn histogram(&mut self, caption: &str, hist: &Histogram) -> &mut Self {
        if hist.count() == 0 {
            return self.paragraph(&format!("{caption}: empty"));
        }
        let bins = hist.bins();
        let peak = bins.iter().copied().max().unwrap_or(0).max(1);
        let plot_w = CHART_W - MARGIN_L - MARGIN_R;
        let plot_h = CHART_H - MARGIN_T - MARGIN_B;
        let bar_w = plot_w / bins.len() as f64;

        self.open_figure(caption);
        let _ = writeln!(
            self.body,
            "<svg viewBox=\"0 0 {CHART_W} {CHART_H}\" role=\"img\">"
        );
        self.axis_frame();
        for (i, &count) in bins.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let h = plot_h * count as f64 / peak as f64;
            let _ = writeln!(
                self.body,
                "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" class=\"bar\"></rect>",
                coord(MARGIN_L + bar_w * i as f64),
                coord(MARGIN_T + plot_h - h),
                coord((bar_w - 1.0).max(0.5)),
                coord(h)
            );
        }
        let mid = (hist.lo() + hist.hi()) / 2.0;
        for (frac, value) in [(0.0f64, hist.lo()), (0.5, mid), (1.0, hist.hi())] {
            let _ = writeln!(
                self.body,
                "<text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"middle\">{}</text>",
                coord(MARGIN_L + plot_w * frac),
                coord(CHART_H - MARGIN_B + 16.0),
                escape_html(&fmt_value(value))
            );
        }
        let _ = writeln!(
            self.body,
            "<text x=\"{}\" y=\"{}\" class=\"tick\" text-anchor=\"end\">{}</text>",
            coord(MARGIN_L - 6.0),
            coord(MARGIN_T + 10.0),
            escape_html(&fmt_value(peak as f64))
        );
        self.body.push_str("</svg>\n</figure>\n");
        self.kv_table(&[
            ("count".into(), format!("{}", hist.count())),
            ("mean".into(), fmt_value(hist.mean())),
            ("p50".into(), fmt_value(hist.p50())),
            ("p95".into(), fmt_value(hist.p95())),
            ("p99".into(), fmt_value(hist.p99())),
            (
                "under / over range".into(),
                format!("{} / {}", hist.underflow(), hist.overflow()),
            ),
        ])
    }

    fn open_figure(&mut self, caption: &str) {
        let _ = writeln!(
            self.body,
            "<figure>\n<figcaption>{}</figcaption>",
            escape_html(caption)
        );
    }

    fn axis_frame(&mut self) {
        let _ = writeln!(
            self.body,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" class=\"frame\"></rect>",
            coord(MARGIN_L),
            coord(MARGIN_T),
            coord(CHART_W - MARGIN_L - MARGIN_R),
            coord(CHART_H - MARGIN_T - MARGIN_B)
        );
    }

    /// Renders the complete self-contained HTML document.
    pub fn to_html(&self) -> String {
        let mut out = String::new();
        out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n");
        out.push_str("<meta charset=\"utf-8\">\n");
        let _ = writeln!(out, "<title>{}</title>", escape_html(&self.title));
        out.push_str(
            "<style>\n\
             body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; \
             max-width: 56em; color: #1a1a1a; }\n\
             h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; }\n\
             table { border-collapse: collapse; margin: 0.8em 0; }\n\
             th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; \
             text-align: right; }\n\
             th { background: #f0f0f0; }\n\
             table.kv th { text-align: left; }\n\
             figure { margin: 1em 0; }\n\
             figcaption { font-weight: 600; margin-bottom: 0.3em; }\n\
             svg { width: 100%; max-width: 640px; background: #fff; }\n\
             svg .frame { fill: none; stroke: #444; stroke-width: 1; }\n\
             svg .grid { stroke: #ddd; stroke-width: 0.5; }\n\
             svg .tick { font: 10px system-ui, sans-serif; fill: #333; }\n\
             svg .bar { fill: #1f77b4; }\n\
             </style>\n</head>\n<body>\n",
        );
        let _ = writeln!(out, "<h1>{}</h1>", escape_html(&self.title));
        out.push_str(&self.body);
        out.push_str("</body>\n</html>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new("unit <report>");
        r.section("overview")
            .paragraph("two & two")
            .kv_table(&[("key".into(), "value \"quoted\"".into())])
            .table(
                &["x", "y"],
                &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
            )
            .line_chart(
                "goodput",
                &["1".into(), "2".into(), "3".into()],
                &[
                    ("a".into(), vec![0.1, 0.5, 0.9]),
                    ("b".into(), vec![0.9, f64::NAN, 0.1]),
                ],
            );
        let mut hist = Histogram::new("unit", 0.0, 10.0, 8);
        for i in 0..50 {
            hist.record(f64::from(i % 10));
        }
        r.histogram("latency", &hist);
        r
    }

    #[test]
    fn html_is_deterministic_and_escaped() {
        let a = sample_report().to_html();
        let b = sample_report().to_html();
        assert_eq!(a, b);
        assert!(a.contains("unit &lt;report&gt;"));
        assert!(a.contains("two &amp; two"));
        assert!(!a.contains("<report>"));
    }

    #[test]
    fn tags_balance() {
        let html = sample_report().to_html();
        for tag in [
            "html", "head", "body", "table", "tr", "svg", "figure", "polyline",
        ] {
            let opens = html.matches(&format!("<{tag}")).count();
            let closes = html.matches(&format!("</{tag}>")).count();
            assert_eq!(opens, closes, "unbalanced <{tag}>");
        }
    }

    #[test]
    fn charts_survive_degenerate_inputs() {
        let mut r = Report::new("degenerate");
        r.line_chart("empty", &[], &[]);
        r.line_chart("flat", &["a".into()], &[("s".into(), vec![2.0])]);
        r.line_chart("nan only", &["a".into()], &[("s".into(), vec![f64::NAN])]);
        r.histogram("empty", &Histogram::new("unit", 0.0, 1.0, 4));
        let html = r.to_html();
        assert!(html.contains("empty: no data") || html.contains("no data"));
        assert!(html.contains("empty: empty"));
    }

    #[test]
    fn value_formatting_is_stable() {
        assert_eq!(fmt_value(10.0), "10");
        assert_eq!(fmt_value(0.123456), "0.1235");
        assert_eq!(fmt_value(0.5), "0.5");
        assert_eq!(fmt_value(f64::NAN), "nan");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-inf");
    }
}
