//! The versioned scenario schema: typed decoding and canonical emission.
//!
//! A scenario file is one JSON object tagged `"schema": "ctjam-scenario/v1"`
//! with a `"kind"` choosing one of four experiment shapes:
//!
//! | kind | runs | migrated figure |
//! |------|------|-----------------|
//! | `link_sweep` | PHY link PER/goodput vs jammer distance | `fig02_jamming_effect` |
//! | `sweep` | DQN train+eval over parameter-axis grids | `fig06_07_08_sweeps` |
//! | `field` | the hub+peripherals field experiment | `fig10_goodput_utilization` |
//! | `campaign` | an adversary × seed × policy fleet grid | — (new workload) |
//!
//! Decoding is **total and strict**: every failure is a typed
//! [`ScenarioError`], unknown keys are rejected with a did-you-mean
//! hint, and missing optional keys take the documented defaults (so the
//! decoded value is always fully concrete). Emission
//! ([`Scenario::to_json`]) writes every field in one canonical order;
//! `parse → emit` is a fixpoint (`emit(parse(emit(parse(f)))) ==
//! emit(parse(f))` byte-for-byte), which is what makes the FNV-1a
//! [`Scenario::fingerprint`] a stable identity for resume guards and
//! run manifests.
//!
//! Every scenario may carry a `"quick"` object: numeric knob overrides
//! applied only when the caller asks for quick mode (the CI smoke
//! stages). The fingerprint is computed over the *effective* scenario —
//! quick and full runs of the same file are distinct identities, so a
//! quick checkpoint can never resume into a full campaign.

use crate::compile::parse_policy;
use crate::error::{did_you_mean, ScenarioError};
use crate::json;
use ctjam_core::adversary::AdversaryConfig;
use ctjam_fault::FaultSite;
use ctjam_telemetry::manifest::fnv1a_64;
use ctjam_telemetry::JsonValue;
use std::path::Path;

/// Largest integer exactly representable in the JSON number model
/// (f64): 2⁵³. Seeds and counts beyond this would silently lose bits.
const MAX_EXACT_INT: u64 = 1 << 53;

/// A fully decoded scenario: name, kind-specific description, and the
/// (not yet applied) quick-mode overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (manifests, report headings; not necessarily the
    /// file stem).
    pub name: String,
    /// The experiment this scenario describes.
    pub kind: ScenarioKind,
    /// Quick-mode knob overrides in file order (key, value); applied by
    /// [`Scenario::effective`] when quick mode is requested.
    pub quick: Vec<(String, f64)>,
}

/// The four experiment shapes of schema v1.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// PHY-layer jamming-effect sweep over distance (Fig. 2(b)).
    LinkSweep(LinkSweep),
    /// Kernel/concrete DQN sweeps over parameter axes (Figs. 6–8).
    Sweep(Sweep),
    /// The field experiment over Tx-slot durations (Fig. 10).
    Field(Field),
    /// A fleet campaign grid: adversaries × seeds × policies.
    Campaign(Campaign),
}

/// `kind: "link_sweep"` — jamming effect of each jammer family vs
/// distance, on the channel-crate link model.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSweep {
    /// Base RNG seed of the fading draws.
    pub seed: u64,
    /// Monte-Carlo fading draws per (kind, distance) point.
    pub draws: usize,
    /// First jammer distance, meters (inclusive).
    pub distance_start: u32,
    /// Last jammer distance, meters (inclusive).
    pub distance_end: u32,
    /// Jammer families, in evaluation order: `"emubee"`, `"zigbee"`,
    /// `"wifi-ofdm"`.
    pub jammers: Vec<String>,
    /// Victim link distance, meters.
    pub link_distance_m: f64,
    /// Victim transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Payload size used for PER, bytes.
    pub payload_bytes: usize,
}

/// `kind: "sweep"` — the Figs. 6–8 shape: per sweep axis and jammer
/// mode, train a fresh DQN per point and evaluate it.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Base seed of the whole sweep family.
    pub seed: u64,
    /// `true` for the MDP-kernel environment (the paper's Matlab
    /// setting), `false` for the concrete slot simulator.
    pub kernel: bool,
    /// Training slots per data point.
    pub train_slots: usize,
    /// Evaluation slots per data point.
    pub eval_slots: usize,
    /// Jammer power modes to run each sweep under: `"max-power"`,
    /// `"random-power"`.
    pub modes: Vec<String>,
    /// Adversary label of the base point
    /// ([`AdversaryConfig::parse_label`] grammar).
    pub adversary: String,
    /// The sweep axes.
    pub sweeps: Vec<SweepAxis>,
}

/// One sweep axis of a [`Sweep`] scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Display name (table/report heading), e.g. `"L_J"`.
    pub name: String,
    /// Which parameter the axis moves: `"l_j"`, `"l_h"`, `"l_decoy"`,
    /// `"tj_residual_per"`, `"sweep_cycle"`, or `"tx_lower_bound"`.
    pub axis: String,
    /// Axis values, one environment point each.
    pub values: Vec<f64>,
}

/// `kind: "field"` — the Fig. 10 field experiment: train once, then run
/// the hub+peripherals network at each Tx-slot duration with a
/// no-jammer reference.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Base RNG seed.
    pub seed: u64,
    /// Field slots per duration point.
    pub slots: usize,
    /// Slot-level training budget for the deployed DQN.
    pub train_slots: usize,
    /// Tx/Jx slot durations to run, seconds.
    pub durations: Vec<f64>,
    /// Peripheral count of the star network.
    pub num_peripherals: usize,
    /// Application payload per packet, bytes.
    pub payload_len: usize,
}

/// `kind: "campaign"` — a fleet campaign: every adversary × every
/// replicate seed, once per policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Base seed all episode RNG streams derive from.
    pub base_seed: u64,
    /// Slots per episode (frozen-policy rows; `train-dqn` uses the
    /// budget instead).
    pub slots: usize,
    /// Environment flavour (kernel vs concrete), as in [`Sweep`].
    pub kernel: bool,
    /// Replicate seeds; every grid point runs once per entry.
    pub seeds: Vec<u64>,
    /// Adversary labels forming the grid
    /// ([`AdversaryConfig::parse_label`] grammar).
    pub adversaries: Vec<String>,
    /// Defender policies, one campaign each: `"no-defense"`,
    /// `"passive-fh"`, `"random-fh"`, `"decoy-random-fh(RATE)"`,
    /// `"train-dqn"`.
    pub policies: Vec<String>,
    /// Base-environment overrides in file order; keys as in
    /// [`SweepAxis::axis`] minus `sweep_cycle`.
    pub env: Vec<(String, f64)>,
    /// Training budget of the `train-dqn` policy.
    pub train_slots: usize,
    /// Evaluation budget of the `train-dqn` policy.
    pub eval_slots: usize,
    /// Optional per-episode fault injection.
    pub faults: Option<Faults>,
}

/// Fault injection carried by a [`Campaign`] scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Faults {
    /// Base seed of the per-episode fault-plan streams.
    pub seed: u64,
    /// Per-site rates in file order: `"uniform"` or a
    /// [`FaultSite::name`] per key.
    pub rates: Vec<(String, f64)>,
}

/// Env-override / sweep-axis keys that address scalar
/// [`ctjam_core::env::EnvParams`] fields.
pub(crate) const ENV_KEYS: [&str; 5] =
    ["l_j", "l_h", "l_decoy", "tj_residual_per", "tx_lower_bound"];

/// All sweep-axis keys.
const AXIS_KEYS: [&str; 6] = [
    "l_j",
    "l_h",
    "l_decoy",
    "tj_residual_per",
    "sweep_cycle",
    "tx_lower_bound",
];

/// Jammer-family names accepted by `link_sweep`.
pub(crate) const JAMMER_NAMES: [&str; 3] = ["emubee", "zigbee", "wifi-ofdm"];

/// Jammer power modes accepted by `sweep`.
pub(crate) const MODE_NAMES: [&str; 2] = ["max-power", "random-power"];

impl Scenario {
    /// Parses a scenario from raw file bytes.
    pub fn parse(bytes: &[u8]) -> Result<Scenario, ScenarioError> {
        let doc = json::parse(bytes)?;
        let mut root = Obj::new("", &doc)?;
        let schema = match root.take("schema") {
            Some(v) => expect_str("schema", v)?.to_string(),
            None => String::new(),
        };
        if schema != crate::SCHEMA {
            return Err(ScenarioError::UnsupportedSchema { found: schema });
        }
        let name = expect_str("name", root.require("name")?)?.to_string();
        if name.is_empty() {
            return Err(invalid("name", "must not be empty"));
        }
        let kind_tag = expect_str("kind", root.require("kind")?)?.to_string();
        let kind = match kind_tag.as_str() {
            "link_sweep" => ScenarioKind::LinkSweep(LinkSweep::decode(&mut root)?),
            "sweep" => ScenarioKind::Sweep(Sweep::decode(&mut root)?),
            "field" => ScenarioKind::Field(Field::decode(&mut root)?),
            "campaign" => ScenarioKind::Campaign(Campaign::decode(&mut root)?),
            other => {
                return Err(invalid(
                    "kind",
                    &format!(
                        "unknown kind {other:?} (expected one of \
                         \"link_sweep\", \"sweep\", \"field\", \"campaign\")"
                    ),
                ))
            }
        };
        let quick = decode_quick(&mut root, kind.quick_keys())?;
        root.finish(&kind.root_keys())?;
        Ok(Scenario { name, kind, quick })
    }

    /// Parses a scenario from a string.
    pub fn parse_str(text: &str) -> Result<Scenario, ScenarioError> {
        Scenario::parse(text.as_bytes())
    }

    /// Reads and parses a scenario file.
    pub fn load(path: &Path) -> Result<Scenario, ScenarioError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
        Scenario::parse(&bytes)
    }

    /// The scenario's `"kind"` tag.
    pub fn kind_tag(&self) -> &'static str {
        match &self.kind {
            ScenarioKind::LinkSweep(_) => "link_sweep",
            ScenarioKind::Sweep(_) => "sweep",
            ScenarioKind::Field(_) => "field",
            ScenarioKind::Campaign(_) => "campaign",
        }
    }

    /// Canonical JSON form: every field explicit, fixed key order.
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::object();
        o.set("schema", crate::SCHEMA)
            .set("name", self.name.as_str());
        o.set("kind", self.kind_tag());
        match &self.kind {
            ScenarioKind::LinkSweep(s) => s.emit(&mut o),
            ScenarioKind::Sweep(s) => s.emit(&mut o),
            ScenarioKind::Field(s) => s.emit(&mut o),
            ScenarioKind::Campaign(s) => s.emit(&mut o),
        }
        if !self.quick.is_empty() {
            let mut q = JsonValue::object();
            for (k, v) in &self.quick {
                q.set(k, *v);
            }
            o.set("quick", q);
        }
        o
    }

    /// The canonical byte form: pretty-printed canonical JSON. Stable
    /// across parse/emit cycles; the base of [`Scenario::fingerprint`].
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.to_json().to_string_pretty().into_bytes()
    }

    /// The scenario with quick-mode overrides applied (when `quick`)
    /// and the override list cleared — the form that actually runs.
    pub fn effective(&self, quick: bool) -> Scenario {
        let mut out = self.clone();
        if quick {
            for (key, value) in &self.quick {
                out.kind.apply_quick(key, *value);
            }
        }
        out.quick = Vec::new();
        out
    }

    /// FNV-1a fingerprint over the effective scenario's canonical
    /// bytes: the identity recorded in run manifests and checked by
    /// `--resume`.
    pub fn fingerprint(&self, quick: bool) -> u64 {
        fnv1a_64(&self.effective(quick).canonical_bytes())
    }
}

impl ScenarioKind {
    /// Keys the root object may carry for this kind.
    fn root_keys(&self) -> Vec<&'static str> {
        let mut keys = vec!["schema", "name", "kind", "quick"];
        keys.extend_from_slice(match self {
            ScenarioKind::LinkSweep(_) => &["seed", "draws", "distances", "jammers", "link"][..],
            ScenarioKind::Sweep(_) => {
                &["seed", "kernel", "budget", "modes", "adversary", "sweeps"][..]
            }
            ScenarioKind::Field(_) => &["seed", "slots", "train_slots", "durations", "config"][..],
            ScenarioKind::Campaign(_) => &[
                "base_seed",
                "slots",
                "kernel",
                "seeds",
                "adversaries",
                "policies",
                "env",
                "budget",
                "faults",
            ][..],
        });
        keys
    }

    /// Knobs `"quick"` may override for this kind.
    fn quick_keys(&self) -> &'static [&'static str] {
        match self {
            ScenarioKind::LinkSweep(_) => &["draws"],
            ScenarioKind::Sweep(_) => &["train_slots", "eval_slots"],
            ScenarioKind::Field(_) => &["slots", "train_slots"],
            ScenarioKind::Campaign(_) => &["slots", "train_slots", "eval_slots", "seeds_limit"],
        }
    }

    /// Applies one validated quick override in place.
    fn apply_quick(&mut self, key: &str, value: f64) {
        let v = value as usize;
        match self {
            ScenarioKind::LinkSweep(s) => {
                if key == "draws" {
                    s.draws = v;
                }
            }
            ScenarioKind::Sweep(s) => match key {
                "train_slots" => s.train_slots = v,
                "eval_slots" => s.eval_slots = v,
                _ => {}
            },
            ScenarioKind::Field(s) => match key {
                "slots" => s.slots = v,
                "train_slots" => s.train_slots = v,
                _ => {}
            },
            ScenarioKind::Campaign(s) => match key {
                "slots" => s.slots = v,
                "train_slots" => s.train_slots = v,
                "eval_slots" => s.eval_slots = v,
                "seeds_limit" => s.seeds.truncate(v.max(1)),
                _ => {}
            },
        }
    }
}

impl LinkSweep {
    fn decode(root: &mut Obj<'_>) -> Result<Self, ScenarioError> {
        let seed = expect_seed("seed", root.require("seed")?)?;
        let draws = match root.take("draws") {
            Some(v) => expect_count("draws", v, 1)?,
            None => 2_000,
        };
        let (distance_start, distance_end) = match root.take("distances") {
            Some(v) => {
                let mut d = Obj::new("distances", v)?;
                let start = expect_count("distances.start", d.require("start")?, 1)? as u32;
                let end = expect_count("distances.end", d.require("end")?, 1)? as u32;
                d.finish(&["start", "end"])?;
                if end < start {
                    return Err(invalid("distances", "end must be >= start"));
                }
                (start, end)
            }
            None => (1, 15),
        };
        let jammers = match root.take("jammers") {
            Some(v) => {
                let items = expect_arr("jammers", v)?;
                if items.is_empty() {
                    return Err(invalid("jammers", "need at least one jammer family"));
                }
                let mut names = Vec::new();
                for (i, item) in items.iter().enumerate() {
                    let path = format!("jammers[{i}]");
                    let name = expect_str(&path, item)?;
                    if !JAMMER_NAMES.contains(&name) {
                        return Err(ScenarioError::InvalidValue {
                            path,
                            message: format!(
                                "unknown jammer family {name:?} (expected one of {JAMMER_NAMES:?})"
                            ),
                        });
                    }
                    names.push(name.to_string());
                }
                names
            }
            None => JAMMER_NAMES.iter().map(|s| s.to_string()).collect(),
        };
        let (link_distance_m, tx_power_dbm, payload_bytes) = match root.take("link") {
            Some(v) => {
                let mut l = Obj::new("link", v)?;
                let dist = match l.take("distance_m") {
                    Some(v) => expect_positive("link.distance_m", v)?,
                    None => 3.0,
                };
                let power = match l.take("tx_power_dbm") {
                    Some(v) => expect_num("link.tx_power_dbm", v)?,
                    None => 0.0,
                };
                let payload = match l.take("payload_bytes") {
                    Some(v) => expect_count("link.payload_bytes", v, 1)?,
                    None => 100,
                };
                l.finish(&["distance_m", "tx_power_dbm", "payload_bytes"])?;
                (dist, power, payload)
            }
            None => (3.0, 0.0, 100),
        };
        Ok(LinkSweep {
            seed,
            draws,
            distance_start,
            distance_end,
            jammers,
            link_distance_m,
            tx_power_dbm,
            payload_bytes,
        })
    }

    fn emit(&self, o: &mut JsonValue) {
        o.set("seed", self.seed);
        o.set("draws", self.draws);
        let mut d = JsonValue::object();
        d.set("start", self.distance_start as u64)
            .set("end", self.distance_end as u64);
        o.set("distances", d);
        o.set(
            "jammers",
            JsonValue::Arr(self.jammers.iter().map(|j| j.as_str().into()).collect()),
        );
        let mut l = JsonValue::object();
        l.set("distance_m", self.link_distance_m)
            .set("tx_power_dbm", self.tx_power_dbm)
            .set("payload_bytes", self.payload_bytes);
        o.set("link", l);
    }
}

impl Sweep {
    fn decode(root: &mut Obj<'_>) -> Result<Self, ScenarioError> {
        let seed = expect_seed("seed", root.require("seed")?)?;
        let kernel = match root.take("kernel") {
            Some(v) => expect_bool("kernel", v)?,
            None => true,
        };
        let (train_slots, eval_slots) = decode_budget(root, 12_000, 20_000)?;
        let modes = match root.take("modes") {
            Some(v) => decode_name_list("modes", v, &MODE_NAMES)?,
            None => MODE_NAMES.iter().map(|s| s.to_string()).collect(),
        };
        let adversary = match root.take("adversary") {
            Some(v) => expect_adversary_label("adversary", v)?,
            None => "sweep".to_string(),
        };
        let sweeps_value = root.require("sweeps")?;
        let items = expect_arr("sweeps", sweeps_value)?;
        if items.is_empty() {
            return Err(invalid("sweeps", "need at least one sweep axis"));
        }
        let mut sweeps = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let path = format!("sweeps[{i}]");
            let mut s = Obj::new(&path, item)?;
            let name = expect_str(&format!("{path}.name"), s.require("name")?)?.to_string();
            let axis = expect_str(&format!("{path}.axis"), s.require("axis")?)?.to_string();
            if !AXIS_KEYS.contains(&axis.as_str()) {
                return Err(ScenarioError::InvalidValue {
                    path: format!("{path}.axis"),
                    message: format!("unknown axis {axis:?} (expected one of {AXIS_KEYS:?})"),
                });
            }
            let values_path = format!("{path}.values");
            let raw = expect_arr(&values_path, s.require("values")?)?;
            if raw.is_empty() {
                return Err(ScenarioError::InvalidValue {
                    path: values_path,
                    message: "need at least one value".into(),
                });
            }
            let mut values = Vec::new();
            for (j, v) in raw.iter().enumerate() {
                let vp = format!("{path}.values[{j}]");
                let n = expect_num(&vp, v)?;
                match axis.as_str() {
                    "sweep_cycle" => {
                        expect_count(&vp, v, 1)?;
                    }
                    "tx_lower_bound" => {
                        expect_integer(&vp, v)?;
                    }
                    _ => {}
                }
                values.push(n);
            }
            s.finish(&["name", "axis", "values"])?;
            sweeps.push(SweepAxis { name, axis, values });
        }
        Ok(Sweep {
            seed,
            kernel,
            train_slots,
            eval_slots,
            modes,
            adversary,
            sweeps,
        })
    }

    fn emit(&self, o: &mut JsonValue) {
        o.set("seed", self.seed);
        o.set("kernel", self.kernel);
        emit_budget(o, self.train_slots, self.eval_slots);
        o.set(
            "modes",
            JsonValue::Arr(self.modes.iter().map(|m| m.as_str().into()).collect()),
        );
        o.set("adversary", self.adversary.as_str());
        let sweeps = self
            .sweeps
            .iter()
            .map(|s| {
                let mut obj = JsonValue::object();
                obj.set("name", s.name.as_str())
                    .set("axis", s.axis.as_str());
                obj.set(
                    "values",
                    JsonValue::Arr(s.values.iter().map(|&v| v.into()).collect()),
                );
                obj
            })
            .collect();
        o.set("sweeps", JsonValue::Arr(sweeps));
    }
}

impl Field {
    fn decode(root: &mut Obj<'_>) -> Result<Self, ScenarioError> {
        let seed = expect_seed("seed", root.require("seed")?)?;
        let slots = match root.take("slots") {
            Some(v) => expect_count("slots", v, 1)?,
            None => 120,
        };
        let train_slots = match root.take("train_slots") {
            Some(v) => expect_count("train_slots", v, 1)?,
            None => 12_000,
        };
        let durations = match root.take("durations") {
            Some(v) => {
                let raw = expect_arr("durations", v)?;
                if raw.is_empty() {
                    return Err(invalid("durations", "need at least one duration"));
                }
                let mut out = Vec::new();
                for (i, item) in raw.iter().enumerate() {
                    out.push(expect_positive(&format!("durations[{i}]"), item)?);
                }
                out
            }
            None => vec![1.0, 2.0, 3.0, 4.0, 5.0],
        };
        let (num_peripherals, payload_len) = match root.take("config") {
            Some(v) => {
                let mut c = Obj::new("config", v)?;
                let n = match c.take("num_peripherals") {
                    Some(v) => expect_count("config.num_peripherals", v, 1)?,
                    None => 3,
                };
                let p = match c.take("payload_len") {
                    Some(v) => expect_count("config.payload_len", v, 1)?,
                    None => 100,
                };
                c.finish(&["num_peripherals", "payload_len"])?;
                (n, p)
            }
            None => (3, 100),
        };
        Ok(Field {
            seed,
            slots,
            train_slots,
            durations,
            num_peripherals,
            payload_len,
        })
    }

    fn emit(&self, o: &mut JsonValue) {
        o.set("seed", self.seed);
        o.set("slots", self.slots);
        o.set("train_slots", self.train_slots);
        o.set(
            "durations",
            JsonValue::Arr(self.durations.iter().map(|&d| d.into()).collect()),
        );
        let mut c = JsonValue::object();
        c.set("num_peripherals", self.num_peripherals)
            .set("payload_len", self.payload_len);
        o.set("config", c);
    }
}

impl Campaign {
    fn decode(root: &mut Obj<'_>) -> Result<Self, ScenarioError> {
        let base_seed = expect_seed("base_seed", root.require("base_seed")?)?;
        let slots = expect_count("slots", root.require("slots")?, 1)?;
        let kernel = match root.take("kernel") {
            Some(v) => expect_bool("kernel", v)?,
            None => false,
        };
        let seeds_raw = expect_arr("seeds", root.require("seeds")?)?;
        if seeds_raw.is_empty() {
            return Err(invalid("seeds", "need at least one replicate seed"));
        }
        let mut seeds = Vec::new();
        for (i, v) in seeds_raw.iter().enumerate() {
            seeds.push(expect_seed(&format!("seeds[{i}]"), v)?);
        }
        let adversaries_raw = expect_arr("adversaries", root.require("adversaries")?)?;
        if adversaries_raw.is_empty() {
            return Err(invalid("adversaries", "need at least one adversary"));
        }
        let mut adversaries = Vec::new();
        for (i, v) in adversaries_raw.iter().enumerate() {
            adversaries.push(expect_adversary_label(&format!("adversaries[{i}]"), v)?);
        }
        let policies_raw = expect_arr("policies", root.require("policies")?)?;
        if policies_raw.is_empty() {
            return Err(invalid("policies", "need at least one policy"));
        }
        let mut policies = Vec::new();
        for (i, v) in policies_raw.iter().enumerate() {
            let path = format!("policies[{i}]");
            let s = expect_str(&path, v)?;
            if parse_policy(s).is_none() {
                return Err(ScenarioError::InvalidValue {
                    path,
                    message: format!(
                        "unknown policy {s:?} (expected \"no-defense\", \"passive-fh\", \
                         \"random-fh\", \"decoy-random-fh(RATE)\", or \"train-dqn\")"
                    ),
                });
            }
            policies.push(s.to_string());
        }
        let env = match root.take("env") {
            Some(v) => {
                let e = Obj::new("env", v)?;
                let mut overrides = Vec::new();
                for (key, value) in e.pairs {
                    let path = format!("env.{key}");
                    if !ENV_KEYS.contains(&key.as_str()) {
                        return Err(ScenarioError::UnknownKey {
                            path: "env".into(),
                            key: key.clone(),
                            hint: did_you_mean(key, &ENV_KEYS),
                        });
                    }
                    let n = expect_num(&path, value)?;
                    if key == "tx_lower_bound" {
                        expect_integer(&path, value)?;
                    }
                    overrides.push((key.clone(), n));
                }
                overrides
            }
            None => Vec::new(),
        };
        let (train_slots, eval_slots) = decode_budget(root, 12_000, 20_000)?;
        let faults = match root.take("faults") {
            Some(v) => {
                let mut f = Obj::new("faults", v)?;
                let seed = expect_seed("faults.seed", f.require("seed")?)?;
                let rates_value = f.require("rates")?;
                let r = Obj::new("faults.rates", rates_value)?;
                let site_names: Vec<&str> = std::iter::once("uniform")
                    .chain(FaultSite::ALL.iter().map(|s| s.name()))
                    .collect();
                let mut rates = Vec::new();
                for (key, value) in r.pairs {
                    let path = format!("faults.rates.{key}");
                    if !site_names.contains(&key.as_str()) {
                        return Err(ScenarioError::UnknownKey {
                            path: "faults.rates".into(),
                            key: key.clone(),
                            hint: did_you_mean(key, &site_names),
                        });
                    }
                    let p = expect_num(&path, value)?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(ScenarioError::InvalidValue {
                            path,
                            message: format!("rate {p} not in [0, 1]"),
                        });
                    }
                    rates.push((key.clone(), p));
                }
                f.finish(&["seed", "rates"])?;
                Some(Faults { seed, rates })
            }
            None => None,
        };
        Ok(Campaign {
            base_seed,
            slots,
            kernel,
            seeds,
            adversaries,
            policies,
            env,
            train_slots,
            eval_slots,
            faults,
        })
    }

    fn emit(&self, o: &mut JsonValue) {
        o.set("base_seed", self.base_seed);
        o.set("slots", self.slots);
        o.set("kernel", self.kernel);
        o.set(
            "seeds",
            JsonValue::Arr(self.seeds.iter().map(|&s| s.into()).collect()),
        );
        o.set(
            "adversaries",
            JsonValue::Arr(self.adversaries.iter().map(|a| a.as_str().into()).collect()),
        );
        o.set(
            "policies",
            JsonValue::Arr(self.policies.iter().map(|p| p.as_str().into()).collect()),
        );
        if !self.env.is_empty() {
            let mut e = JsonValue::object();
            for (k, v) in &self.env {
                e.set(k, *v);
            }
            o.set("env", e);
        }
        emit_budget(o, self.train_slots, self.eval_slots);
        if let Some(f) = &self.faults {
            let mut fo = JsonValue::object();
            fo.set("seed", f.seed);
            let mut ro = JsonValue::object();
            for (k, v) in &f.rates {
                ro.set(k, *v);
            }
            fo.set("rates", ro);
            o.set("faults", fo);
        }
    }
}

// ---------------------------------------------------------------------
// Decoding machinery.

/// An object walker that tracks which keys were consumed, so
/// [`Obj::finish`] can reject leftovers with a did-you-mean hint.
struct Obj<'a> {
    path: String,
    pairs: &'a [(String, JsonValue)],
    taken: Vec<bool>,
}

impl<'a> Obj<'a> {
    fn new(path: &str, value: &'a JsonValue) -> Result<Self, ScenarioError> {
        match value {
            JsonValue::Obj(pairs) => Ok(Obj {
                path: path.to_string(),
                pairs,
                taken: vec![false; pairs.len()],
            }),
            _ => Err(ScenarioError::TypeMismatch {
                path: if path.is_empty() {
                    "scenario".into()
                } else {
                    path.into()
                },
                expected: "an object",
            }),
        }
    }

    fn take(&mut self, key: &str) -> Option<&'a JsonValue> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == key {
                self.taken[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn require(&mut self, key: &str) -> Result<&'a JsonValue, ScenarioError> {
        self.take(key).ok_or_else(|| ScenarioError::MissingKey {
            path: self.path.clone(),
            key: key.to_string(),
        })
    }

    fn finish(&self, allowed: &[&str]) -> Result<(), ScenarioError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.taken[i] {
                return Err(ScenarioError::UnknownKey {
                    path: self.path.clone(),
                    key: k.clone(),
                    hint: did_you_mean(k, allowed),
                });
            }
        }
        Ok(())
    }
}

fn invalid(path: &str, message: &str) -> ScenarioError {
    ScenarioError::InvalidValue {
        path: path.to_string(),
        message: message.to_string(),
    }
}

fn expect_num(path: &str, v: &JsonValue) -> Result<f64, ScenarioError> {
    match v {
        JsonValue::Num(n) => Ok(*n),
        _ => Err(ScenarioError::TypeMismatch {
            path: path.to_string(),
            expected: "a number",
        }),
    }
}

fn expect_positive(path: &str, v: &JsonValue) -> Result<f64, ScenarioError> {
    let n = expect_num(path, v)?;
    if n > 0.0 {
        Ok(n)
    } else {
        Err(invalid(path, "must be positive"))
    }
}

/// An integral number within ±2⁵³ (exactly representable), as i64.
fn expect_integer(path: &str, v: &JsonValue) -> Result<i64, ScenarioError> {
    let n = expect_num(path, v)?;
    if n.trunc() == n && n.abs() <= MAX_EXACT_INT as f64 {
        Ok(n as i64)
    } else {
        Err(invalid(path, "must be an integer within ±2^53"))
    }
}

/// A non-negative integral number within 2⁵³, as u64 (seeds).
fn expect_seed(path: &str, v: &JsonValue) -> Result<u64, ScenarioError> {
    let n = expect_integer(path, v)?;
    if n >= 0 {
        Ok(n as u64)
    } else {
        Err(invalid(path, "must be non-negative"))
    }
}

/// An integral count with a lower bound, as usize.
fn expect_count(path: &str, v: &JsonValue, min: usize) -> Result<usize, ScenarioError> {
    let n = expect_integer(path, v)?;
    if n >= min as i64 {
        Ok(n as usize)
    } else {
        Err(invalid(path, &format!("must be at least {min}")))
    }
}

fn expect_bool(path: &str, v: &JsonValue) -> Result<bool, ScenarioError> {
    match v {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(ScenarioError::TypeMismatch {
            path: path.to_string(),
            expected: "a boolean",
        }),
    }
}

fn expect_str<'a>(path: &str, v: &'a JsonValue) -> Result<&'a str, ScenarioError> {
    match v {
        JsonValue::Str(s) => Ok(s),
        _ => Err(ScenarioError::TypeMismatch {
            path: path.to_string(),
            expected: "a string",
        }),
    }
}

fn expect_arr<'a>(path: &str, v: &'a JsonValue) -> Result<&'a [JsonValue], ScenarioError> {
    match v {
        JsonValue::Arr(items) => Ok(items),
        _ => Err(ScenarioError::TypeMismatch {
            path: path.to_string(),
            expected: "an array",
        }),
    }
}

/// A string the adversary-label grammar accepts.
fn expect_adversary_label(path: &str, v: &JsonValue) -> Result<String, ScenarioError> {
    let s = expect_str(path, v)?;
    if AdversaryConfig::parse_label(s).is_none() {
        return Err(ScenarioError::InvalidValue {
            path: path.to_string(),
            message: format!(
                "unknown adversary label {s:?} (grammar: \"none\", \"sweep\", \"pursuit\", \
                 \"dqn\", \"reactive(tT,lL)\", \"energy(CAP/RECHARGE,INNER)\", \
                 \"adaptive-lastblock|markov|rnn[+eaves]\", optional \"-rnd\" suffix)"
            ),
        });
    }
    Ok(s.to_string())
}

/// A list of strings drawn from `names`, duplicates rejected.
fn decode_name_list(
    path: &str,
    v: &JsonValue,
    names: &[&str],
) -> Result<Vec<String>, ScenarioError> {
    let items = expect_arr(path, v)?;
    if items.is_empty() {
        return Err(invalid(path, "must not be empty"));
    }
    let mut out: Vec<String> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        let ip = format!("{path}[{i}]");
        let s = expect_str(&ip, item)?;
        if !names.contains(&s) {
            return Err(ScenarioError::InvalidValue {
                path: ip,
                message: format!("unknown name {s:?} (expected one of {names:?})"),
            });
        }
        if out.iter().any(|seen| seen == s) {
            return Err(ScenarioError::InvalidValue {
                path: ip,
                message: format!("{s:?} listed twice"),
            });
        }
        out.push(s.to_string());
    }
    Ok(out)
}

/// The shared `budget: {train_slots, eval_slots}` sub-object.
fn decode_budget(
    root: &mut Obj<'_>,
    default_train: usize,
    default_eval: usize,
) -> Result<(usize, usize), ScenarioError> {
    match root.take("budget") {
        Some(v) => {
            let mut b = Obj::new("budget", v)?;
            let train = match b.take("train_slots") {
                Some(v) => expect_count("budget.train_slots", v, 1)?,
                None => default_train,
            };
            let eval = match b.take("eval_slots") {
                Some(v) => expect_count("budget.eval_slots", v, 1)?,
                None => default_eval,
            };
            b.finish(&["train_slots", "eval_slots"])?;
            Ok((train, eval))
        }
        None => Ok((default_train, default_eval)),
    }
}

fn emit_budget(o: &mut JsonValue, train_slots: usize, eval_slots: usize) {
    let mut b = JsonValue::object();
    b.set("train_slots", train_slots)
        .set("eval_slots", eval_slots);
    o.set("budget", b);
}

/// Decodes the `"quick"` override object against the kind's allowed
/// knob list: every value must be a count (integral, ≥ 1).
fn decode_quick(root: &mut Obj<'_>, allowed: &[&str]) -> Result<Vec<(String, f64)>, ScenarioError> {
    match root.take("quick") {
        Some(v) => {
            let q = Obj::new("quick", v)?;
            let mut out = Vec::new();
            for (key, value) in q.pairs {
                if !allowed.contains(&key.as_str()) {
                    return Err(ScenarioError::UnknownKey {
                        path: "quick".into(),
                        key: key.clone(),
                        hint: did_you_mean(key, allowed),
                    });
                }
                let n = expect_count(&format!("quick.{key}"), value, 1)?;
                out.push((key.clone(), n as f64));
            }
            Ok(out)
        }
        None => Ok(Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_text() -> &'static str {
        r#"{
            "schema": "ctjam-scenario/v1",
            "name": "unit_sweep",
            "kind": "sweep",
            "seed": 51105,
            "budget": { "train_slots": 300, "eval_slots": 400 },
            "sweeps": [
                { "name": "L_J", "axis": "l_j", "values": [50, 100] }
            ],
            "quick": { "train_slots": 10, "eval_slots": 20 }
        }"#
    }

    #[test]
    fn decodes_a_sweep_with_defaults() {
        let s = Scenario::parse_str(sweep_text()).unwrap();
        assert_eq!(s.name, "unit_sweep");
        let ScenarioKind::Sweep(sw) = &s.kind else {
            panic!("wrong kind")
        };
        assert!(sw.kernel, "kernel defaults to true");
        assert_eq!(sw.modes, vec!["max-power", "random-power"]);
        assert_eq!(sw.adversary, "sweep");
        assert_eq!(sw.train_slots, 300);
    }

    #[test]
    fn emission_is_a_fixpoint() {
        let s = Scenario::parse_str(sweep_text()).unwrap();
        let once = s.canonical_bytes();
        let reparsed = Scenario::parse(&once).unwrap();
        assert_eq!(reparsed, s);
        assert_eq!(reparsed.canonical_bytes(), once);
    }

    #[test]
    fn quick_mode_moves_the_fingerprint() {
        let s = Scenario::parse_str(sweep_text()).unwrap();
        assert_ne!(s.fingerprint(false), s.fingerprint(true));
        let ScenarioKind::Sweep(sw) = s.effective(true).kind else {
            panic!("wrong kind")
        };
        assert_eq!((sw.train_slots, sw.eval_slots), (10, 20));
    }

    #[test]
    fn unknown_keys_get_hints() {
        let text = sweep_text().replace("\"seed\": 51105,", "\"seed\": 51105, \"sede\": 1,");
        match Scenario::parse_str(&text) {
            Err(ScenarioError::UnknownKey { key, hint, .. }) => {
                assert_eq!(key, "sede");
                assert_eq!(hint.as_deref(), Some("seed"));
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
    }

    #[test]
    fn wrong_schema_tag_is_rejected() {
        let text = sweep_text().replace("ctjam-scenario/v1", "ctjam-scenario/v9");
        assert!(matches!(
            Scenario::parse_str(&text),
            Err(ScenarioError::UnsupportedSchema { .. })
        ));
    }

    #[test]
    fn campaign_round_trips_with_faults_and_env() {
        let text = r#"{
            "schema": "ctjam-scenario/v1",
            "name": "zoo",
            "kind": "campaign",
            "base_seed": 77,
            "slots": 200,
            "seeds": [1, 2],
            "adversaries": ["none", "reactive(t8,l1)", "energy(40/2,pursuit)"],
            "policies": ["random-fh", "decoy-random-fh(0.5)", "train-dqn"],
            "env": { "l_j": 100, "tx_lower_bound": 6 },
            "budget": { "train_slots": 50, "eval_slots": 60 },
            "faults": { "seed": 9, "rates": { "uniform": 0.01 } }
        }"#;
        let s = Scenario::parse_str(text).unwrap();
        let bytes = s.canonical_bytes();
        assert_eq!(Scenario::parse(&bytes).unwrap(), s);
        let ScenarioKind::Campaign(c) = &s.kind else {
            panic!("wrong kind")
        };
        assert_eq!(c.env.len(), 2);
        assert!(c.faults.is_some());
    }

    #[test]
    fn bad_adversary_labels_and_rates_are_rejected() {
        let bad_label = r#"{"schema":"ctjam-scenario/v1","name":"x","kind":"campaign",
            "base_seed":1,"slots":10,"seeds":[1],"adversaries":["sweeep"],
            "policies":["random-fh"]}"#;
        assert!(matches!(
            Scenario::parse_str(bad_label),
            Err(ScenarioError::InvalidValue { .. })
        ));
        let bad_rate = r#"{"schema":"ctjam-scenario/v1","name":"x","kind":"campaign",
            "base_seed":1,"slots":10,"seeds":[1],"adversaries":["sweep"],
            "policies":["random-fh"],"faults":{"seed":1,"rates":{"uniform":1.5}}}"#;
        assert!(matches!(
            Scenario::parse_str(bad_rate),
            Err(ScenarioError::InvalidValue { .. })
        ));
    }

    #[test]
    fn seeds_beyond_exact_f64_range_are_rejected() {
        let text = r#"{"schema":"ctjam-scenario/v1","name":"x","kind":"field",
            "seed":18446744073709551615}"#;
        assert!(Scenario::parse_str(text).is_err());
    }
}
