//! Typed scenario-decoding errors.
//!
//! Every failure mode of the DSL — from a malformed byte to a knob the
//! schema does not know — maps onto one [`ScenarioError`] variant, so
//! callers (the `campaign` bin, the wrapper figure bins, tests) can
//! match on *what* went wrong. Unknown keys carry a did-you-mean hint
//! computed by edit distance over the keys the schema does accept.

use crate::json::JsonError;
use std::fmt;

/// Why a scenario failed to decode, compile, or resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The file is not JSON (offset + lexer message).
    Json(JsonError),
    /// The schema tag is missing or names a version this build cannot
    /// read.
    UnsupportedSchema {
        /// The tag found in the file (empty if absent).
        found: String,
    },
    /// An object carries a key the schema does not define.
    UnknownKey {
        /// Dotted path of the object (e.g. `"budget"`, `""` for the
        /// scenario root).
        path: String,
        /// The offending key.
        key: String,
        /// Closest accepted key by edit distance, if one is close
        /// enough to plausibly be a typo.
        hint: Option<String>,
    },
    /// A required key is absent.
    MissingKey {
        /// Dotted path of the object the key was expected in.
        path: String,
        /// The missing key.
        key: String,
    },
    /// A value has the wrong JSON type.
    TypeMismatch {
        /// Dotted path of the value.
        path: String,
        /// What the schema wanted (e.g. `"number"`, `"array of strings"`).
        expected: &'static str,
    },
    /// A value has the right type but an impossible content
    /// (negative slot count, unknown adversary label, empty grid…).
    InvalidValue {
        /// Dotted path of the value.
        path: String,
        /// What is wrong with it.
        message: String,
    },
    /// A `--resume` checkpoint does not belong to this scenario
    /// (the scenario file changed since the checkpoint was written).
    FingerprintMismatch {
        /// Fingerprint recorded in the checkpoint.
        checkpoint: u64,
        /// Fingerprint of the scenario as loaded now.
        scenario: u64,
    },
    /// A progress checkpoint exists but cannot be read back.
    Checkpoint(String),
    /// A scenario file (or its directory) could not be read.
    Io(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Json(err) => write!(f, "invalid JSON at {err}"),
            ScenarioError::UnsupportedSchema { found } if found.is_empty() => {
                write!(f, "missing \"schema\" tag (expected {:?})", crate::SCHEMA)
            }
            ScenarioError::UnsupportedSchema { found } => {
                write!(
                    f,
                    "unsupported schema {found:?} (expected {:?})",
                    crate::SCHEMA
                )
            }
            ScenarioError::UnknownKey { path, key, hint } => {
                let at = if path.is_empty() {
                    "the scenario root"
                } else {
                    path
                };
                write!(f, "unknown key {key:?} in {at}")?;
                if let Some(hint) = hint {
                    write!(f, " (did you mean {hint:?}?)")?;
                }
                Ok(())
            }
            ScenarioError::MissingKey { path, key } => {
                let at = if path.is_empty() {
                    "the scenario root"
                } else {
                    path
                };
                write!(f, "missing required key {key:?} in {at}")
            }
            ScenarioError::TypeMismatch { path, expected } => {
                write!(f, "{path}: expected {expected}")
            }
            ScenarioError::InvalidValue { path, message } => {
                write!(f, "{path}: {message}")
            }
            ScenarioError::FingerprintMismatch {
                checkpoint,
                scenario,
            } => write!(
                f,
                "progress checkpoint belongs to scenario fingerprint \
                 {checkpoint:016x}, but the file on disk now fingerprints to \
                 {scenario:016x}; the scenario changed since the checkpoint \
                 was written (delete it or restore the file to resume)"
            ),
            ScenarioError::Checkpoint(message) => {
                write!(f, "progress checkpoint unreadable: {message}")
            }
            ScenarioError::Io(message) => write!(f, "cannot read scenario: {message}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<JsonError> for ScenarioError {
    fn from(err: JsonError) -> Self {
        ScenarioError::Json(err)
    }
}

/// Damerau–Levenshtein edit distance (optimal string alignment:
/// insert, delete, substitute, or swap adjacent characters — the four
/// classic typos). Iterative three-row DP; both inputs are short
/// schema keys.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev2 = vec![0usize; b.len() + 1];
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            let mut best = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
            if i > 0 && j > 0 && ca == b[j - 1] && a[i - 1] == cb {
                best = best.min(prev2[j - 1] + 1);
            }
            curr[j + 1] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// The closest candidate to `key`, if plausibly a typo: distance at most
/// 1/3 of the key length (minimum 1, so one-letter slips always match),
/// ties broken by candidate order.
pub fn did_you_mean(key: &str, candidates: &[&str]) -> Option<String> {
    let budget = (key.chars().count() / 3).max(1);
    candidates
        .iter()
        .map(|c| (edit_distance(key, c), *c))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("seed", "seed"), 0);
        assert_eq!(edit_distance("seed", "sed"), 1);
        assert_eq!(
            edit_distance("sede", "seed"),
            1,
            "adjacent swap is one edit"
        );
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn did_you_mean_finds_near_misses_only() {
        let keys = ["seed", "slots", "kernel", "train_slots"];
        assert_eq!(did_you_mean("sede", &keys), Some("seed".into()));
        assert_eq!(
            did_you_mean("train_slot", &keys),
            Some("train_slots".into())
        );
        assert_eq!(did_you_mean("adversaries", &keys), None);
    }

    #[test]
    fn display_carries_the_hint() {
        let err = ScenarioError::UnknownKey {
            path: "budget".into(),
            key: "train_slot".into(),
            hint: Some("train_slots".into()),
        };
        let text = err.to_string();
        assert!(text.contains("did you mean"), "{text}");
        assert!(text.contains("train_slots"), "{text}");
    }
}
