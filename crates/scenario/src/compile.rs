//! Compiling decoded scenarios onto the engines: `EnvParams` grids,
//! `JammingScenario`s, `FieldConfig`s, and fleet `CampaignSpec`s.
//!
//! Everything here is pure construction — no RNG, no IO. A scenario
//! validated by [`crate::schema`] always compiles (the `expect`s below
//! restate invariants the decoder already enforced), and two parses of
//! the same bytes compile to identical specs, so campaign fingerprints
//! are stable.

use crate::schema::{Campaign, Field, LinkSweep, Sweep, SweepAxis};
use ctjam_channel::link::{JammerKind, JammingScenario};
use ctjam_core::adversary::AdversaryConfig;
use ctjam_core::env::EnvParams;
use ctjam_core::field::FieldConfig;
use ctjam_core::jammer::JammerMode;
use ctjam_core::runner::SweepBudget;
use ctjam_fault::{FaultRates, FaultSite};
use ctjam_fleet::{CampaignFaults, CampaignPolicy, CampaignSpec};

/// A defender policy named in a campaign scenario, before it is turned
/// into a [`CampaignPolicy`] (which is not `PartialEq`/`Debug`-friendly
/// because of the shared-weights variant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyChoice {
    /// Fixed channel, lowest power.
    NoDefense,
    /// Hop only after a jammed slot.
    PassiveFh,
    /// Hop to a uniformly random channel every slot.
    RandomFh,
    /// Random hopping plus decoy transmissions at the given rate.
    DecoyRandomFh(f64),
    /// Train a fresh DQN per episode under the scenario budget.
    TrainDqn,
}

/// Parses a policy name from the scenario grammar: `"no-defense"`,
/// `"passive-fh"`, `"random-fh"`, `"decoy-random-fh(RATE)"` with a
/// decoy rate in `[0, 1]`, or `"train-dqn"`.
pub fn parse_policy(s: &str) -> Option<PolicyChoice> {
    match s {
        "no-defense" => return Some(PolicyChoice::NoDefense),
        "passive-fh" => return Some(PolicyChoice::PassiveFh),
        "random-fh" => return Some(PolicyChoice::RandomFh),
        "train-dqn" => return Some(PolicyChoice::TrainDqn),
        _ => {}
    }
    let rate = s
        .strip_prefix("decoy-random-fh(")
        .and_then(|r| r.strip_suffix(')'))?;
    let rate: f64 = rate.parse().ok()?;
    if rate.is_finite() && (0.0..=1.0).contains(&rate) {
        Some(PolicyChoice::DecoyRandomFh(rate))
    } else {
        None
    }
}

impl PolicyChoice {
    /// The fleet policy this choice names, with `budget` supplying the
    /// `train-dqn` slots.
    pub fn to_campaign_policy(self, budget: SweepBudget) -> CampaignPolicy {
        match self {
            PolicyChoice::NoDefense => CampaignPolicy::NoDefense,
            PolicyChoice::PassiveFh => CampaignPolicy::PassiveFh,
            PolicyChoice::RandomFh => CampaignPolicy::RandomFh,
            PolicyChoice::DecoyRandomFh(rate) => CampaignPolicy::DecoyRandomFh(rate),
            PolicyChoice::TrainDqn => CampaignPolicy::TrainDqn(budget),
        }
    }
}

/// Parses a label the schema already validated; panics otherwise
/// (decoder invariant).
fn adversary(label: &str) -> AdversaryConfig {
    AdversaryConfig::parse_label(label)
        .unwrap_or_else(|| panic!("validated adversary label {label:?} failed to parse"))
}

/// Applies one env-override / sweep-axis assignment to a point.
fn apply_axis(base: &EnvParams, axis: &str, value: f64) -> EnvParams {
    let mut p = base.clone();
    match axis {
        "l_j" => p.l_j = value,
        "l_h" => p.l_h = value,
        "l_decoy" => p.l_decoy = value,
        "tj_residual_per" => p.tj_residual_per = value,
        "sweep_cycle" => p.adversary = p.adversary.with_sweep_cycle(value as usize),
        "tx_lower_bound" => p = p.with_tx_lower_bound(value as i64),
        other => panic!("validated axis {other:?} failed to compile"),
    }
    p
}

/// One sweep axis compiled to a runnable table: display labels plus the
/// environment point for each value (jammer mode not yet applied).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSweep {
    /// Display name (`SweepAxis::name`).
    pub name: String,
    /// Filename-safe slug of the name (alphanumerics lowercased,
    /// everything else `_`) — used in replay-trace and CSV names.
    pub slug: String,
    /// X-axis labels, one per value (`Display` of the value).
    pub xs: Vec<String>,
    /// One environment point per value.
    pub points: Vec<EnvParams>,
}

/// The filename-safe slug the sweep bins have always used.
pub fn slugify(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Clones `points` with the jammer mode forced on every point.
pub fn apply_mode(points: &[EnvParams], mode: JammerMode) -> Vec<EnvParams> {
    points
        .iter()
        .cloned()
        .map(|mut p| {
            p.adversary.mode = mode;
            p
        })
        .collect()
}

impl LinkSweep {
    /// The channel-crate scenario this sweep evaluates.
    pub fn scenario(&self) -> JammingScenario {
        JammingScenario {
            link_distance_m: self.link_distance_m,
            tx_power_dbm: self.tx_power_dbm,
            payload_bytes: self.payload_bytes,
            ..JammingScenario::default()
        }
    }

    /// The jammer kinds, in evaluation order.
    pub fn kinds(&self) -> Vec<JammerKind> {
        self.jammers
            .iter()
            .map(|name| match name.as_str() {
                "emubee" => JammerKind::EmuBee,
                "zigbee" => JammerKind::ZigBee,
                "wifi-ofdm" => JammerKind::WifiOfdm,
                other => panic!("validated jammer family {other:?} failed to compile"),
            })
            .collect()
    }
}

impl Sweep {
    /// The per-point training/evaluation budget.
    pub fn budget(&self) -> SweepBudget {
        SweepBudget {
            train_slots: self.train_slots,
            eval_slots: self.eval_slots,
        }
    }

    /// The jammer modes to run, in scenario order.
    pub fn jammer_modes(&self) -> Vec<JammerMode> {
        self.modes
            .iter()
            .map(|m| match m.as_str() {
                "max-power" => JammerMode::MaxPower,
                "random-power" => JammerMode::RandomPower,
                other => panic!("validated jammer mode {other:?} failed to compile"),
            })
            .collect()
    }

    /// Every sweep axis compiled to its point grid.
    pub fn tables(&self) -> Vec<CompiledSweep> {
        let base = EnvParams {
            adversary: adversary(&self.adversary),
            ..EnvParams::default()
        };
        self.sweeps
            .iter()
            .map(|axis| compile_axis(&base, axis))
            .collect()
    }
}

fn compile_axis(base: &EnvParams, axis: &SweepAxis) -> CompiledSweep {
    CompiledSweep {
        name: axis.name.clone(),
        slug: slugify(&axis.name),
        xs: axis.values.iter().map(|v| format!("{v}")).collect(),
        points: axis
            .values
            .iter()
            .map(|&v| apply_axis(base, &axis.axis, v))
            .collect(),
    }
}

impl Field {
    /// The field-experiment configuration (defaults plus overrides).
    pub fn config(&self) -> FieldConfig {
        FieldConfig {
            num_peripherals: self.num_peripherals,
            payload_len: self.payload_len,
            ..FieldConfig::default()
        }
    }
}

impl Campaign {
    /// The base environment: defaults plus the scenario's env overrides,
    /// applied in file order. The adversary is replaced per grid point.
    pub fn base_env(&self) -> EnvParams {
        let mut base = EnvParams::default();
        for (key, value) in &self.env {
            base = apply_axis(&base, key, *value);
        }
        base
    }

    /// The grid points: one per adversary label, sharing the base env.
    pub fn points(&self) -> Vec<EnvParams> {
        let base = self.base_env();
        self.adversaries
            .iter()
            .map(|label| EnvParams {
                adversary: adversary(label),
                ..base.clone()
            })
            .collect()
    }

    /// The fleet fault plan, if the scenario injects faults. Rates apply
    /// in file order; a `"uniform"` entry sets every site (so later
    /// named sites override it).
    pub fn campaign_faults(&self) -> Option<CampaignFaults> {
        self.faults.as_ref().map(|f| {
            let mut rates = FaultRates::zero();
            for (key, p) in &f.rates {
                if key == "uniform" {
                    rates = FaultRates::uniform(*p);
                } else {
                    let site = FaultSite::ALL
                        .iter()
                        .copied()
                        .find(|s| s.name() == key)
                        .unwrap_or_else(|| {
                            panic!("validated fault site {key:?} failed to compile")
                        });
                    rates = rates.with(site, *p);
                }
            }
            CampaignFaults {
                seed: f.seed,
                rates,
            }
        })
    }

    /// The `train-dqn` budget.
    pub fn budget(&self) -> SweepBudget {
        SweepBudget {
            train_slots: self.train_slots,
            eval_slots: self.eval_slots,
        }
    }

    /// One fleet spec per policy, in scenario order, named
    /// `"<scenario_name>::<policy>"`.
    pub fn specs(&self, scenario_name: &str) -> Vec<(String, CampaignSpec)> {
        let points = self.points();
        let faults = self.campaign_faults();
        self.policies
            .iter()
            .map(|label| {
                let choice = parse_policy(label)
                    .unwrap_or_else(|| panic!("validated policy {label:?} failed to compile"));
                let spec = CampaignSpec {
                    name: format!("{scenario_name}::{label}"),
                    points: points.clone(),
                    seeds: self.seeds.clone(),
                    policy: choice.to_campaign_policy(self.budget()),
                    slots: self.slots,
                    kernel: self.kernel,
                    base_seed: self.base_seed,
                    faults,
                };
                (label.clone(), spec)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_grammar_parses_and_rejects() {
        assert_eq!(parse_policy("no-defense"), Some(PolicyChoice::NoDefense));
        assert_eq!(parse_policy("train-dqn"), Some(PolicyChoice::TrainDqn));
        assert_eq!(
            parse_policy("decoy-random-fh(0.25)"),
            Some(PolicyChoice::DecoyRandomFh(0.25))
        );
        for junk in [
            "",
            "dqn",
            "decoy-random-fh",
            "decoy-random-fh()",
            "decoy-random-fh(1.5)",
            "decoy-random-fh(nan)",
        ] {
            assert_eq!(parse_policy(junk), None, "{junk:?}");
        }
    }

    #[test]
    fn axis_application_matches_hand_construction() {
        let base = EnvParams::default();
        assert_eq!(apply_axis(&base, "l_j", 65.0).l_j, 65.0);
        assert_eq!(
            apply_axis(&base, "tx_lower_bound", 9.0).tx_powers,
            EnvParams::default().with_tx_lower_bound(9).tx_powers
        );
        assert_eq!(
            apply_axis(&base, "sweep_cycle", 4.0)
                .adversary
                .sweep_cycle(),
            4
        );
    }

    #[test]
    fn slug_matches_the_historical_fig_bins() {
        assert_eq!(slugify("L_J"), "l_j");
        assert_eq!(slugify("sweep cycle"), "sweep_cycle");
        assert_eq!(slugify("lb(L_p)"), "lb_l_p_");
    }
}
