//! Property-based tests over the competition environments and metrics.

use ctjam_core::adaptive::PredictorKind;
use ctjam_core::adversary::{AdversaryConfig, SlotSense};
use ctjam_core::defender::{Defender, NoDefense, PassiveFh, RandomFh};
use ctjam_core::env::{CompetitionEnv, Decision, EnvParams, Environment, Outcome};
use ctjam_core::jammer::{JammerConfig, JammerMode, SweepJammer};
use ctjam_core::kernel::KernelEnv;
use ctjam_core::metrics::Metrics;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_params() -> impl Strategy<Value = EnvParams> {
    (
        1usize..5,       // sweep cycle multiplier (cycle = this value + 1)
        2usize..6,       // number of tx power levels
        1.0f64..20.0,    // tx power lower bound
        0.0f64..120.0,   // l_h
        0.0f64..300.0,   // l_j
        prop::bool::ANY, // random-power mode
    )
        .prop_map(|(cycle_m1, m, tx_lo, l_h, l_j, random)| {
            let mut p = EnvParams::default();
            p.adversary = p.adversary.with_sweep_cycle(cycle_m1 + 1);
            p.adversary.mode = if random {
                JammerMode::RandomPower
            } else {
                JammerMode::MaxPower
            };
            p.tx_powers = (0..m).map(|i| tx_lo + i as f64).collect();
            p.l_h = l_h;
            p.l_j = l_j;
            p
        })
}

/// Every member of the adversary zoo, including stacked and learning
/// configurations.
fn arb_adversary() -> impl Strategy<Value = AdversaryConfig> {
    (
        0usize..9,
        0.0f64..15.0,
        0usize..3,
        0.5f64..60.0,
        0.0f64..4.0,
    )
        .prop_map(
            |(kind, threshold, latency, capacity, recharge)| match kind {
                0 => AdversaryConfig::none(),
                1 => AdversaryConfig::sweep(),
                2 => AdversaryConfig::sweep().random_power(),
                3 => AdversaryConfig::reactive(threshold).latency(latency),
                4 => AdversaryConfig::pursuit(),
                5 => AdversaryConfig::pursuit().energy_budget(capacity, recharge),
                6 => AdversaryConfig::adaptive(PredictorKind::Markov),
                7 => AdversaryConfig::adaptive(PredictorKind::LastBlock).eavesdrop(),
                _ => AdversaryConfig::dqn(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rewards_decompose_correctly(params in arb_params(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env = CompetitionEnv::new(params.clone(), &mut rng);
        for _ in 0..60 {
            let decision = Decision {
                channel: rng.gen_range(0..params.num_channels()),
                power_level: rng.gen_range(0..params.num_powers()),
            };
            let was = env.current_channel();
            let result = Environment::step(&mut env, decision, &mut rng);
            let mut expected = -params.tx_powers[decision.power_level];
            if result.outcome == Outcome::Jammed {
                expected -= params.l_j;
            }
            if decision.channel != was {
                expected -= params.l_h;
            }
            prop_assert!((result.reward - expected).abs() < 1e-9);
            prop_assert_eq!(result.hopped, decision.channel != was);
        }
    }

    #[test]
    fn kernel_env_outcomes_are_consistent(params in arb_params(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env = KernelEnv::new(params.clone(), &mut rng);
        for _ in 0..60 {
            let decision = Decision {
                channel: rng.gen_range(0..params.num_channels()),
                power_level: rng.gen_range(0..params.num_powers()),
            };
            let result = env.step(decision, &mut rng);
            // Rewards are never positive; jammed slots always pay L_J.
            prop_assert!(result.reward <= 0.0);
            if result.outcome == Outcome::Jammed {
                prop_assert!(
                    result.reward
                        <= -params.l_j - params.tx_powers[decision.power_level] + 1e-9
                );
            }
        }
    }

    #[test]
    fn metrics_stay_in_unit_interval(params in arb_params(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env = CompetitionEnv::new(params.clone(), &mut rng);
        let mut defender = RandomFh::new(&params, &mut rng);
        let mut metrics = Metrics::new();
        for _ in 0..120 {
            let d = defender.decide(&mut rng);
            let r = Environment::step(&mut env, d, &mut rng);
            defender.feedback(&r, &mut rng);
            metrics.record(&r);
        }
        for value in [
            metrics.success_rate(),
            metrics.fh_adoption_rate(),
            metrics.fh_success_rate(),
            metrics.pc_adoption_rate(),
            metrics.pc_success_rate(),
            metrics.jam_rate(),
            metrics.tj_rate(),
        ] {
            prop_assert!((0.0..=1.0).contains(&value), "metric {value} out of range");
        }
        prop_assert!(metrics.jam_rate() + metrics.success_rate() <= 1.0 + 1e-12);
    }

    #[test]
    fn jammer_always_attacks_a_valid_block(seed in any::<u64>(), cycle in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = JammerConfig::default().with_sweep_cycle(cycle);
        let channels = config.num_channels;
        let width = config.jam_width;
        let mut jammer = SweepJammer::new(config, &mut rng);
        for _ in 0..100 {
            let victim = rng.gen_range(0..channels);
            let action = jammer.step(victim, &mut rng);
            prop_assert_eq!(action.block.start % width, 0);
            prop_assert!(action.block.start + width <= channels);
            prop_assert!(action.power >= 11.0 && action.power <= 20.0);
        }
    }

    #[test]
    fn every_zoo_adversary_is_bit_exact_under_clone_and_replay(
        config in arb_adversary(),
        seed in any::<u64>(),
    ) {
        // clone_box mid-run must capture the complete adversary state
        // (locks, latency queues, charge, predictor history, network
        // weights and replay): the clone driven by a cloned RNG and the
        // identical sense sequence must emit identical actions forever.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sense_rng = StdRng::seed_from_u64(seed ^ 0x5E5E_5E5E);
        let channels = config.num_channels;
        let mut draw_sense = move || SlotSense {
            victim_channel: sense_rng.gen_range(0..channels),
            victim_power: sense_rng.gen_range(1.0..12.0),
            decoy: sense_rng
                .gen_bool(0.3)
                .then(|| sense_rng.gen_range(0..channels)),
        };

        let mut original = config.build(&mut rng);
        for _ in 0..40 {
            original.jam(&draw_sense(), &mut rng);
        }

        let mut replica = original.clone_box();
        let mut replica_rng = rng.clone();
        for slot in 0..40 {
            let sense = draw_sense();
            let a = original.jam(&sense, &mut rng);
            let b = replica.jam(&sense, &mut replica_rng);
            prop_assert_eq!(a, b, "{} diverged at slot {} after clone", original.name(), slot);
        }
        prop_assert_eq!(original.probe(), replica.probe());
    }

    #[test]
    fn passive_defender_never_uses_power_control(params in arb_params(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env = CompetitionEnv::new(params.clone(), &mut rng);
        let mut psv = PassiveFh::new(&params, &mut rng);
        for _ in 0..80 {
            let d = psv.decide(&mut rng);
            prop_assert_eq!(d.power_level, 0);
            let r = Environment::step(&mut env, d, &mut rng);
            psv.feedback(&r, &mut rng);
        }
    }

    #[test]
    fn no_defense_never_changes_anything(params in arb_params(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut env = CompetitionEnv::new(params.clone(), &mut rng);
        let mut floor = NoDefense::new(&params, &mut rng);
        let first = floor.decide(&mut rng);
        for _ in 0..40 {
            let d = floor.decide(&mut rng);
            prop_assert_eq!(d, first);
            let r = Environment::step(&mut env, d, &mut rng);
            floor.feedback(&r, &mut rng);
        }
    }
}
