//! Work-stealing shard pool over `std::thread`.
//!
//! The suite has no external thread-pool dependency, so this module
//! hand-rolls the smallest scheduler that still load-balances: a shared
//! atomic injector. Every worker claims the next item index with a
//! single `fetch_add`, so a slow item (a long episode, a page fault)
//! never strands work behind it the way fixed contiguous chunks do.
//!
//! **Determinism contract.** Which worker runs which item — the "steal
//! order" — is scheduler-dependent and varies run to run. Results stay
//! bit-exact anyway because the API forces them to be pure functions of
//! `(index, item)`:
//!
//! * [`parallel_map`] keys every result by its item index, so the output
//!   vector is identical no matter which worker produced each entry.
//! * [`parallel_fold`] hands back the per-worker accumulators; callers
//!   combine them with an associative, commutative merge (see
//!   `ctjam-telemetry`'s `ShardSink`), which makes the combined result
//!   independent of both thread count and steal order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads visible to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(1)
}

/// Applies `f(index, &item)` to every item across `threads` workers and
/// returns the results in item order.
///
/// Work is distributed dynamically through a shared atomic injector, so
/// uneven item costs balance automatically. `f` must be a pure function
/// of `(index, item)` for the output to be thread-count-invariant —
/// which it then is, bit for bit, because results are placed by index.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let mut produced: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(items.len(), || None);
    for (i, value) in produced.drain(..).flatten() {
        out[i] = Some(value);
    }
    out.into_iter()
        .map(|o| o.expect("every index claimed exactly once"))
        .collect()
}

/// Runs `step(&mut acc, index, &item)` for every item across `threads`
/// workers, each worker folding into its own accumulator created by
/// `init`, and returns the per-worker accumulators (one per worker that
/// ran; a sequential run returns exactly one).
///
/// This is the fleet engine's substrate: each shard aggregates locally
/// in O(1) memory and the caller reduces the returned accumulators with
/// an associative, commutative merge, so the combined result is
/// independent of thread count and steal order.
pub fn parallel_fold<T, A, I, F>(items: &[T], threads: usize, init: &I, step: &F) -> Vec<A>
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, &T) + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        let mut acc = init();
        for (i, item) in items.iter().enumerate() {
            step(&mut acc, i, item);
        }
        return vec![acc];
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut acc = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        step(&mut acc, i, &items[i]);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|v| v * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, threads, &|_, &v| v * 3 + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_passes_the_true_index() {
        let items = vec!["a"; 100];
        let got = parallel_map(&items, 4, &|i, _| i);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, &|_, &v| v).is_empty());
        assert_eq!(parallel_map(&[7u32], 8, &|_, &v| v + 1), vec![8]);
    }

    #[test]
    fn fold_accumulators_cover_every_item_exactly_once() {
        let items: Vec<u64> = (1..=1000).collect();
        for threads in [1, 2, 5, 16] {
            let accs = parallel_fold(&items, threads, &Vec::new, &|acc: &mut Vec<u64>, _, &v| {
                acc.push(v)
            });
            assert!(accs.len() <= threads.max(1));
            let mut all: Vec<u64> = accs.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, items, "threads={threads}");
        }
    }

    #[test]
    fn fold_sequential_returns_one_accumulator() {
        let accs = parallel_fold(&[1u64, 2, 3], 1, &|| 0u64, &|acc, _, &v| *acc += v);
        assert_eq!(accs, vec![6]);
    }

    #[test]
    fn more_threads_than_items_does_not_oversubscribe() {
        let accs = parallel_fold(&[1u64, 2], 16, &|| 0u64, &|acc, _, &v| *acc += v);
        assert!(accs.len() <= 2);
        assert_eq!(accs.iter().sum::<u64>(), 3);
    }
}
