//! The slot-level Tx↔Jx competition environment.
//!
//! Every slot the defender commits to a `(channel, power level)` decision;
//! the jammer sweeps or tracks; the environment resolves the slot into the
//! paper's three outcomes and pays the Eq. (5) loss:
//!
//! * **Clean** — the jammer's block missed the defender's channel.
//! * **`TJ`** — jammed, but the Tx power level won the duel
//!   (`L^T ≥ L^J`, §IV.A.1): data still flows, at an observable penalty.
//! * **`J`** — jammed and lost: the slot's traffic is gone.

use crate::adversary::{Adversary, AdversaryConfig, AdversaryProbe, JamAction, SlotSense};
use crate::jammer::{JammerConfig, JammerMode};
use rand::{Rng, RngCore};

/// Slot outcome (the observable projection of the MDP state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Not jammed this slot.
    Clean,
    /// Jammed but survived (`TJ`).
    JammedSurvived,
    /// Jammed and lost (`J`).
    Jammed,
}

impl Outcome {
    /// Whether the slot carried data successfully (ST counts these).
    pub fn is_success(self) -> bool {
        !matches!(self, Outcome::Jammed)
    }
}

/// Environment parameters (paper §IV.A.1 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct EnvParams {
    /// The adversary faced (front end + behaviour kind).
    pub adversary: AdversaryConfig,
    /// Tx power levels; each value is also its loss `L_{p_i}`.
    pub tx_powers: Vec<f64>,
    /// Loss of a frequency hop `L_H`.
    pub l_h: f64,
    /// Loss of a successful jam `L_J`.
    pub l_j: f64,
    /// Loss of emitting a decoy/bait transmission (the fake-transmission
    /// cost a deception defender pays to trigger reactive jammers).
    pub l_decoy: f64,
    /// Residual packet loss while in `TJ` (the duel is won but the
    /// interference still costs some packets in the field experiment).
    pub tj_residual_per: f64,
}

impl Default for EnvParams {
    fn default() -> Self {
        EnvParams {
            adversary: AdversaryConfig::default(),
            tx_powers: (6..=15).map(f64::from).collect(),
            l_h: 50.0,
            l_j: 100.0,
            l_decoy: 5.0,
            tj_residual_per: 0.1,
        }
    }
}

impl EnvParams {
    /// Number of selectable channels.
    pub fn num_channels(&self) -> usize {
        self.adversary.num_channels
    }

    /// Number of Tx power levels.
    pub fn num_powers(&self) -> usize {
        self.tx_powers.len()
    }

    /// The minimum Tx power level index (the "no power control" level).
    pub fn min_power_level(&self) -> usize {
        0
    }

    /// Jammer mode shortcut.
    pub fn jammer_mode(&self) -> JammerMode {
        self.adversary.mode
    }

    /// Replaces the adversary's shared front end with a legacy
    /// [`JammerConfig`], keeping the sweep behaviour it used to imply.
    #[deprecated(
        since = "0.3.0",
        note = "set the `adversary` field with an `AdversaryConfig` instead"
    )]
    #[must_use]
    pub fn with_jammer(mut self, jammer: JammerConfig) -> Self {
        self.adversary = AdversaryConfig::from(jammer);
        self
    }

    /// The adversary's front-end parameters as a legacy [`JammerConfig`].
    #[deprecated(since = "0.3.0", note = "read the `adversary` field instead")]
    pub fn jammer(&self) -> JammerConfig {
        self.adversary.front_end()
    }

    /// Shifts the Tx power range to `[lower, lower + count − 1]`
    /// (the Fig. 6(d) sweep).
    #[must_use]
    pub fn with_tx_lower_bound(mut self, lower: i64) -> Self {
        let count = self.tx_powers.len() as i64;
        self.tx_powers = (lower..lower + count).map(|v| v as f64).collect();
        self
    }
}

/// The defender's per-slot decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decision {
    /// Channel to transmit on (`0..num_channels`).
    pub channel: usize,
    /// Power level index (`0..num_powers`).
    pub power_level: usize,
}

/// Everything that happened in one slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotResult {
    /// The defender's decision this slot.
    pub decision: Decision,
    /// Resolved outcome.
    pub outcome: Outcome,
    /// Whether the decision changed channel relative to the previous slot
    /// (frequency hopping adopted).
    pub hopped: bool,
    /// Whether the decision used a power level above the minimum
    /// (power control adopted).
    pub power_control: bool,
    /// The Eq. (5) reward (a non-positive loss).
    pub reward: f64,
    /// The jammer's action, for diagnostics.
    pub jam_action: JamAction,
}

impl SlotResult {
    /// Whether the jammer's block covered the defender's channel this
    /// slot (both jam outcomes imply coverage; `Clean` implies a miss).
    pub fn jammer_on_channel(&self) -> bool {
        self.outcome != Outcome::Clean
    }

    /// This slot as a structured telemetry event.
    pub fn telemetry_event(&self, slot: u64) -> ctjam_telemetry::SlotEvent {
        use ctjam_telemetry::SlotOutcome;
        ctjam_telemetry::SlotEvent {
            slot,
            channel: self.decision.channel as u16,
            power_level: self.decision.power_level as u16,
            hopped: self.hopped,
            power_control: self.power_control,
            outcome: match self.outcome {
                Outcome::Clean => SlotOutcome::Delivered,
                Outcome::JammedSurvived => SlotOutcome::SurvivedJam,
                Outcome::Jammed => SlotOutcome::Jammed,
            },
            jammer_on_channel: self.jammer_on_channel(),
            reward: self.reward,
        }
    }
}

/// A slot-level environment the runner can drive.
///
/// Two implementations exist: [`CompetitionEnv`] (the concrete
/// 16-channel radio game used by the field experiment) and
/// [`crate::kernel::KernelEnv`] (the paper's abstract Eqs. 6–14 kernel
/// used by the simulation figures).
pub trait Environment {
    /// The parameters in force.
    fn params(&self) -> &EnvParams;

    /// The channel the defender used last.
    fn current_channel(&self) -> usize;

    /// Advances one slot with the defender's decision.
    fn step(&mut self, decision: Decision, rng: &mut dyn rand::RngCore) -> SlotResult;

    /// Advances one slot with the defender's decision plus an optional
    /// decoy/bait transmission on another channel. The default ignores
    /// the decoy (abstract environments have no sensing adversary to
    /// bait); concrete environments charge `l_decoy` and expose the
    /// decoy to the adversary's sensing.
    fn step_with_decoy(
        &mut self,
        decision: Decision,
        _decoy: Option<usize>,
        rng: &mut dyn rand::RngCore,
    ) -> SlotResult {
        self.step(decision, rng)
    }
}

/// The competition environment.
#[derive(Debug, Clone)]
pub struct CompetitionEnv {
    params: EnvParams,
    adversary: Box<dyn Adversary>,
    current_channel: usize,
}

impl CompetitionEnv {
    /// Creates an environment with the defender starting on a random
    /// channel, building the adversary described by
    /// `params.adversary`.
    ///
    /// # Panics
    ///
    /// Panics if `tx_powers` is empty or the adversary configuration is
    /// degenerate.
    pub fn new<R: Rng + ?Sized>(params: EnvParams, rng: &mut R) -> Self {
        let adversary = params.adversary.build(rng);
        Self::with_adversary(params, adversary, rng)
    }

    /// Creates an environment around an already-built adversary (e.g. a
    /// league-trained attacker carried across episodes). Draws only the
    /// defender's starting channel from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `tx_powers` is empty.
    pub fn with_adversary<R: Rng + ?Sized>(
        params: EnvParams,
        adversary: Box<dyn Adversary>,
        rng: &mut R,
    ) -> Self {
        assert!(
            !params.tx_powers.is_empty(),
            "need at least one Tx power level"
        );
        let current_channel = rng.gen_range(0..params.adversary.num_channels);
        CompetitionEnv {
            params,
            adversary,
            current_channel,
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> &EnvParams {
        &self.params
    }

    /// The channel the defender used last.
    pub fn current_channel(&self) -> usize {
        self.current_channel
    }

    /// The adversary's introspection counters.
    pub fn adversary_probe(&self) -> AdversaryProbe {
        self.adversary.probe()
    }

    /// The adversary's stable name ("sweep", "reactive", …).
    pub fn adversary_name(&self) -> &str {
        self.adversary.name()
    }

    /// Consumes the environment and hands back its adversary (with all
    /// learned state), for threading one attacker through many episodes.
    pub fn into_adversary(self) -> Box<dyn Adversary> {
        self.adversary
    }

    /// Advances one slot with the defender's decision.
    ///
    /// # Panics
    ///
    /// Panics if the decision indexes out of range.
    pub fn step(&mut self, decision: Decision, rng: &mut dyn RngCore) -> SlotResult {
        self.step_with_decoy(decision, None, rng)
    }

    /// [`CompetitionEnv::step`] with an optional decoy transmission:
    /// the adversary senses the decoy as if it were the victim, and the
    /// defender pays `l_decoy` for the fake transmission.
    ///
    /// # Panics
    ///
    /// Panics if the decision or decoy indexes out of range.
    pub fn step_with_decoy(
        &mut self,
        decision: Decision,
        decoy: Option<usize>,
        rng: &mut dyn RngCore,
    ) -> SlotResult {
        assert!(
            decision.channel < self.params.num_channels(),
            "channel {} out of range",
            decision.channel
        );
        assert!(
            decision.power_level < self.params.num_powers(),
            "power level {} out of range",
            decision.power_level
        );
        if let Some(decoy) = decoy {
            assert!(
                decoy < self.params.num_channels(),
                "decoy channel {decoy} out of range"
            );
        }

        let hopped = decision.channel != self.current_channel;
        self.current_channel = decision.channel;
        let power_control = decision.power_level > self.params.min_power_level();
        let tx_power = self.params.tx_powers[decision.power_level];

        let sense = SlotSense {
            victim_channel: decision.channel,
            victim_power: tx_power,
            decoy,
        };
        let jam_action = self.adversary.jam(&sense, rng);
        let outcome = if jam_action.covers(decision.channel) {
            // The duel (paper §IV.A.1): success iff L^T ≥ L^J.
            if tx_power >= jam_action.power {
                Outcome::JammedSurvived
            } else {
                Outcome::Jammed
            }
        } else {
            Outcome::Clean
        };

        // Eq. (5): −L_p, −L_J on J, −L_H on hop; −L_decoy on bait.
        let mut reward = -tx_power;
        if outcome == Outcome::Jammed {
            reward -= self.params.l_j;
        }
        if hopped {
            reward -= self.params.l_h;
        }
        if decoy.is_some() {
            reward -= self.params.l_decoy;
        }

        SlotResult {
            decision,
            outcome,
            hopped,
            power_control,
            reward,
            jam_action,
        }
    }
}

impl Environment for CompetitionEnv {
    fn params(&self) -> &EnvParams {
        CompetitionEnv::params(self)
    }

    fn current_channel(&self) -> usize {
        CompetitionEnv::current_channel(self)
    }

    fn step(&mut self, decision: Decision, rng: &mut dyn rand::RngCore) -> SlotResult {
        CompetitionEnv::step(self, decision, rng)
    }

    fn step_with_decoy(
        &mut self,
        decision: Decision,
        decoy: Option<usize>,
        rng: &mut dyn rand::RngCore,
    ) -> SlotResult {
        CompetitionEnv::step_with_decoy(self, decision, decoy, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn fixed_decision(channel: usize) -> Decision {
        Decision {
            channel,
            power_level: 0,
        }
    }

    #[test]
    fn static_defender_gets_found_and_stays_jammed() {
        let mut r = rng(1);
        let mut env = CompetitionEnv::new(EnvParams::default(), &mut r);
        let channel = env.current_channel();
        let mut jammed_tail = 0;
        let mut results = Vec::new();
        for _ in 0..40 {
            results.push(env.step(fixed_decision(channel), &mut r));
        }
        // Once found (within one 4-slot cycle) the max-power jammer wins
        // every slot: the tail must be solid J.
        for result in results.iter().skip(4) {
            if result.outcome == Outcome::Jammed {
                jammed_tail += 1;
            }
        }
        assert_eq!(jammed_tail, 36, "jammer must lock onto a static victim");
    }

    #[test]
    fn reward_components_match_eq_5() {
        let mut r = rng(2);
        let params = EnvParams::default();
        let mut env = CompetitionEnv::new(params.clone(), &mut r);
        let channel = env.current_channel();
        // Run until jammed to observe the −L_p − L_J case.
        let mut saw_jammed = false;
        let mut saw_clean = false;
        for _ in 0..20 {
            let result = env.step(fixed_decision(channel), &mut r);
            match result.outcome {
                Outcome::Jammed => {
                    assert_eq!(result.reward, -(6.0 + 100.0));
                    saw_jammed = true;
                }
                Outcome::Clean => {
                    assert_eq!(result.reward, -6.0);
                    saw_clean = true;
                }
                Outcome::JammedSurvived => unreachable!("power 6 cannot beat 20"),
            }
        }
        assert!(saw_jammed && saw_clean);
    }

    #[test]
    fn hop_cost_applied() {
        let mut r = rng(3);
        let params = EnvParams::default();
        let mut env = CompetitionEnv::new(params, &mut r);
        let from = env.current_channel();
        let to = (from + 8) % 16;
        let result = env.step(fixed_decision(to), &mut r);
        assert!(result.hopped);
        assert!(result.reward <= -(6.0 + 50.0));
    }

    #[test]
    fn power_duel_respects_threshold() {
        // Give the Tx a power able to tie the jammer's max: survives.
        let mut r = rng(4);
        let params = EnvParams::default().with_tx_lower_bound(20); // 20..=29
        let mut env = CompetitionEnv::new(params, &mut r);
        let channel = env.current_channel();
        for _ in 0..30 {
            let result = env.step(
                Decision {
                    channel,
                    power_level: 0, // 20 ≥ jammer max 20
                },
                &mut r,
            );
            assert_ne!(result.outcome, Outcome::Jammed);
        }
    }

    #[test]
    fn power_control_flag_tracks_level() {
        let mut r = rng(5);
        let mut env = CompetitionEnv::new(EnvParams::default(), &mut r);
        let channel = env.current_channel();
        let low = env.step(fixed_decision(channel), &mut r);
        assert!(!low.power_control);
        let high = env.step(
            Decision {
                channel,
                power_level: 9,
            },
            &mut r,
        );
        assert!(high.power_control);
    }

    #[test]
    fn hopping_evades_a_locked_jammer_eventually() {
        let mut r = rng(6);
        let mut env = CompetitionEnv::new(EnvParams::default(), &mut r);
        // Hop every slot to a random far channel: the jammer rarely wins
        // twice in a row, so successes dominate.
        let mut successes = 0;
        let slots = 400;
        for _ in 0..slots {
            let channel = r.gen_range(0..16);
            let result = env.step(fixed_decision(channel), &mut r);
            if result.outcome.is_success() {
                successes += 1;
            }
        }
        let rate = f64::from(successes) / f64::from(slots);
        assert!(rate > 0.5, "random hopping success rate {rate}");
    }

    #[test]
    fn decoy_draws_fire_and_costs_l_decoy() {
        // A zero-latency reactive jammer always fires at the loudest
        // thing it hears — the decoy — so the real slot stays clean and
        // the reward only pays the Tx power plus the decoy cost.
        let params = EnvParams {
            adversary: AdversaryConfig::reactive(0.0).latency(0),
            ..EnvParams::default()
        };
        let mut r = rng(8);
        let mut env = CompetitionEnv::new(params, &mut r);
        let channel = env.current_channel();
        let decoy = (channel + 8) % 16;
        let result = env.step_with_decoy(fixed_decision(channel), Some(decoy), &mut r);
        assert_eq!(result.outcome, Outcome::Clean, "fire drawn to the decoy");
        assert_eq!(result.reward, -(6.0 + 5.0));
        // Without a decoy the same jammer hits the victim next slot.
        let result = env.step(fixed_decision(channel), &mut r);
        assert_eq!(result.outcome, Outcome::Jammed);
    }

    #[test]
    fn no_adversary_means_every_slot_is_clean() {
        let params = EnvParams {
            adversary: AdversaryConfig::none(),
            ..EnvParams::default()
        };
        let mut r = rng(9);
        let mut env = CompetitionEnv::new(params, &mut r);
        let channel = env.current_channel();
        for _ in 0..32 {
            let result = env.step(fixed_decision(channel), &mut r);
            assert_eq!(result.outcome, Outcome::Clean);
            assert!(result.jam_action.is_idle());
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_channel_panics() {
        let mut r = rng(7);
        let mut env = CompetitionEnv::new(EnvParams::default(), &mut r);
        env.step(fixed_decision(16), &mut r);
    }
}
