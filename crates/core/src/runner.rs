//! Training and evaluation loops (§IV.A: "the experiment lasts for 20000
//! time slots to get the average value"), plus parameter-sweep helpers.
//!
//! The one entry point is [`RunBuilder`]: a fluent description of *how*
//! to run (telemetry sink, thread count, environment flavour, adversary,
//! sweep budget and seed) terminated by *what* to run
//! ([`RunBuilder::run`], [`RunBuilder::train`], [`RunBuilder::sweep`],
//! …). The 0.2.0 pre-builder free-function shims were removed in 0.3.0;
//! see `CHANGELOG.md`.

use crate::adversary::AdversaryConfig;
use crate::defender::{Defender, DqnDefender};
use crate::env::{CompetitionEnv, EnvParams, Environment};
use crate::kernel::KernelEnv;
use crate::metrics::Metrics;
use ctjam_fault::{FaultPoint, FaultSite, NullFaultPlan};
use ctjam_telemetry::{EpisodeRecord, EventSink, NullSink, ReplayTrace, RunHealth, TrainEvent};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Result of running a defender for a number of slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeReport {
    /// Table I metrics over the run.
    pub metrics: Metrics,
    /// Sum of Eq. (5) rewards.
    pub total_reward: f64,
    /// Fault/recovery accounting for the run (all-zero on a fault-free
    /// run — see [`RunHealth::is_clean`]).
    pub health: RunHealth,
}

impl EpisodeReport {
    /// Mean per-slot reward.
    pub fn mean_reward(&self) -> f64 {
        if self.metrics.slots() == 0 {
            0.0
        } else {
            self.total_reward / self.metrics.slots() as f64
        }
    }
}

/// A fluent description of a run: configure *how* (sink, threads,
/// environment flavour, sweep budget/seed), then call a terminal method
/// saying *what* ([`RunBuilder::run`], [`RunBuilder::run_in`],
/// [`RunBuilder::train`], [`RunBuilder::evaluate`],
/// [`RunBuilder::sweep`]).
///
/// Every terminal takes the RNG explicitly — the repo-wide determinism
/// contract (`tests/determinism.rs`) requires the caller to own the
/// seeded stream. A builder-driven run draws from the RNG in exactly the
/// same order as the 0.2.0 free functions it replaced, so seeded results
/// are unchanged across the 0.3.0 API cleanup.
///
/// # Example
///
/// ```
/// use ctjam_core::env::EnvParams;
/// use ctjam_core::defender::RandomFh;
/// use ctjam_core::runner::RunBuilder;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let params = EnvParams::default();
/// let mut rng = StdRng::seed_from_u64(42);
/// let mut defender = RandomFh::new(&params, &mut rng);
/// let report = RunBuilder::new(&params).run(&mut defender, 1_000, &mut rng);
/// assert_eq!(report.metrics.slots(), 1_000);
/// ```
#[derive(Debug)]
pub struct RunBuilder<'a, S: EventSink = NullSink, F: FaultPoint = NullFaultPlan> {
    params: &'a EnvParams,
    sink: Option<&'a mut S>,
    fault: Option<&'a mut F>,
    threads: Option<usize>,
    kernel: bool,
    adversary: Option<AdversaryConfig>,
    budget: SweepBudget,
    base_seed: u64,
}

impl<'a> RunBuilder<'a, NullSink, NullFaultPlan> {
    /// Starts a builder over `params` with no telemetry, no fault
    /// injection, the concrete environment, default sweep budget/seed,
    /// and automatic sweep threading.
    pub fn new(params: &'a EnvParams) -> Self {
        RunBuilder {
            params,
            sink: None,
            fault: None,
            threads: None,
            kernel: false,
            adversary: None,
            budget: SweepBudget::default(),
            base_seed: 0,
        }
    }
}

impl<'a, S: EventSink, F: FaultPoint> RunBuilder<'a, S, F> {
    /// Attaches a telemetry sink: the run emits one
    /// [`ctjam_telemetry::SlotEvent`] per slot and, for learning
    /// defenders, one [`TrainEvent`] per slot in which a gradient step
    /// ran. Sweeps run their points in parallel and ignore the sink.
    pub fn sink<S2: EventSink>(self, sink: &'a mut S2) -> RunBuilder<'a, S2, F> {
        RunBuilder {
            params: self.params,
            sink: Some(sink),
            fault: self.fault,
            threads: self.threads,
            kernel: self.kernel,
            adversary: self.adversary,
            budget: self.budget,
            base_seed: self.base_seed,
        }
    }

    /// Attaches a fault-injection plan (chaos testing,
    /// `tests/chaos.rs`): the run draws the plan's schedule at every
    /// fault site wired into the slot loop and the DQN training path,
    /// and the report's [`EpisodeReport::health`] accounts for what
    /// fired. Runs without a plan (or with a zero-rate plan) are
    /// bit-exact with the plain path; sweeps ignore the plan.
    pub fn fault_plan<F2: FaultPoint>(self, fault: &'a mut F2) -> RunBuilder<'a, S, F2> {
        RunBuilder {
            params: self.params,
            sink: self.sink,
            fault: Some(fault),
            threads: self.threads,
            kernel: self.kernel,
            adversary: self.adversary,
            budget: self.budget,
            base_seed: self.base_seed,
        }
    }

    /// Sets the worker-thread count for [`RunBuilder::sweep`] (default:
    /// available parallelism, capped at the point count). Results never
    /// depend on this — `tests/determinism.rs` asserts 1-thread and
    /// N-thread sweeps agree bit-exactly.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Selects the environment flavour: `true` for the MDP-kernel
    /// environment (the paper's Matlab simulation setting, Figs. 6–8),
    /// `false` (default) for the concrete slot-level simulator.
    #[must_use]
    pub fn kernel(mut self, kernel: bool) -> Self {
        self.kernel = kernel;
        self
    }

    /// Overrides the adversary the fresh environment is built against
    /// ([`RunBuilder::run`]/[`train`](RunBuilder::train)/
    /// [`evaluate`](RunBuilder::evaluate)), leaving every other
    /// parameter of `params` in force. Without this the builder uses
    /// `params.adversary` as-is. Existing environments
    /// ([`RunBuilder::run_in`]) and sweeps (each point carries its own
    /// params) are unaffected.
    #[must_use]
    pub fn adversary(mut self, adversary: AdversaryConfig) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Sets the per-point train/evaluate budget for
    /// [`RunBuilder::sweep`].
    #[must_use]
    pub fn budget(mut self, budget: SweepBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Opts this **process** in (or out) of the explicit AVX2+FMA GEMM
    /// microkernels for all neural-network math.
    ///
    /// The switch is process-global and sticky (see
    /// [`ctjam_nn::kernel`]): the kernels sit under freely cloned
    /// network types, so there is no per-run flag to thread through.
    /// The default is the scalar oracle, which keeps every golden
    /// value, determinism test, and replay bit-exact; the SIMD path is
    /// ULP-bounded instead (documented in `ctjam_nn::simd`) and only
    /// actually engages when the CPU supports `avx2+fma` and the
    /// `CTJAM_FORCE_SCALAR` escape hatch is unset. Use it for
    /// throughput-oriented work (long training campaigns, benches)
    /// where that tolerance is acceptable.
    #[must_use]
    pub fn simd_kernels(self, enable: bool) -> Self {
        ctjam_nn::kernel::set_backend(if enable {
            ctjam_nn::kernel::Backend::Simd
        } else {
            ctjam_nn::kernel::Backend::Scalar
        });
        self
    }

    /// Sets the base seed from which [`RunBuilder::sweep`] derives every
    /// point's own RNG via [`point_seed`] (default 0).
    #[must_use]
    pub fn seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Drives `defender` against an existing environment for `slots`
    /// slots.
    pub fn run_in<E, D, R>(
        self,
        env: &mut E,
        defender: &mut D,
        slots: usize,
        rng: &mut R,
    ) -> EpisodeReport
    where
        E: Environment + ?Sized,
        D: Defender + ?Sized,
        R: Rng,
    {
        match (self.sink, self.fault) {
            (Some(sink), Some(fault)) => run_loop(env, defender, slots, rng, sink, fault),
            (Some(sink), None) => run_loop(env, defender, slots, rng, sink, &mut NullFaultPlan),
            (None, Some(fault)) => run_loop(env, defender, slots, rng, &mut NullSink, fault),
            (None, None) => run_loop(env, defender, slots, rng, &mut NullSink, &mut NullFaultPlan),
        }
    }

    /// Runs `defender` against a fresh environment (concrete by default,
    /// MDP-kernel after [`RunBuilder::kernel`]).
    pub fn run<D, R>(self, defender: &mut D, slots: usize, rng: &mut R) -> EpisodeReport
    where
        D: Defender + ?Sized,
        R: Rng,
    {
        let params = match &self.adversary {
            Some(adversary) => EnvParams {
                adversary: adversary.clone(),
                ..self.params.clone()
            },
            None => self.params.clone(),
        };
        if self.kernel {
            let mut env = KernelEnv::new(params, rng);
            self.run_in(&mut env, defender, slots, rng)
        } else {
            let mut env = CompetitionEnv::new(params, rng);
            self.run_in(&mut env, defender, slots, rng)
        }
    }

    /// Trains a DQN defender for `slots` slots (learning enabled) against
    /// a fresh environment.
    pub fn train<R: Rng>(
        self,
        defender: &mut DqnDefender,
        slots: usize,
        rng: &mut R,
    ) -> EpisodeReport {
        defender.set_training(true);
        self.run(defender, slots, rng)
    }

    /// Evaluates any defender for `slots` slots against a fresh
    /// environment. (For a DQN defender, freeze learning and exploration
    /// first with `set_training(false)`.)
    pub fn evaluate<D, R>(self, defender: &mut D, slots: usize, rng: &mut R) -> EpisodeReport
    where
        D: Defender + ?Sized,
        R: Rng,
    {
        self.run(defender, slots, rng)
    }

    /// Runs one sweep point (train + evaluate a fresh paper-default DQN)
    /// for each parameterization in `points`, in parallel across the
    /// configured thread count, on the configured environment flavour.
    ///
    /// Each point is seeded deterministically from the configured base
    /// seed and the point index ([`point_seed`]), so results are
    /// reproducible regardless of scheduling. The builder's own `params`
    /// are not consulted — every point carries its own. `f` is invoked
    /// with each finished point's index and report (from a worker
    /// thread).
    pub fn sweep<G>(self, points: &[EnvParams], f: G) -> Vec<Metrics>
    where
        G: Fn(usize, &EpisodeReport) + Sync,
    {
        if points.is_empty() {
            return Vec::new();
        }
        let threads = self
            .threads
            .unwrap_or_else(|| default_sweep_threads(points.len()));
        let kernel = self.kernel;
        let budget = self.budget;
        let base_seed = self.base_seed;
        crate::pool::parallel_map(points, threads, &|index: usize, params: &EnvParams| {
            let mut rng = StdRng::seed_from_u64(point_seed(base_seed, index));
            let (_, report) = if kernel {
                train_and_evaluate_kernel(params, budget.train_slots, budget.eval_slots, &mut rng)
            } else {
                train_and_evaluate(params, budget.train_slots, budget.eval_slots, &mut rng)
            };
            f(index, &report);
            report.metrics
        })
    }
}

/// The slot loop every runner entry point funnels into: emits one
/// [`ctjam_telemetry::SlotEvent`] per slot and, for learning defenders,
/// one [`TrainEvent`] per slot in which a gradient step ran.
///
/// Monomorphised over [`NullSink`] and [`NullFaultPlan`] this is exactly
/// the uninstrumented loop (every sink hook is an empty default body,
/// every fault branch is behind a constant-`false` `is_enabled`).
///
/// With an enabled fault plan the loop draws two sites per slot:
///
/// * [`FaultSite::DeadlineOverrun`] — the defender's decision misses the
///   slot deadline; the radio repeats the *previous* slot's decision.
///   `decide` still runs (the defender burned its compute; its RNG
///   stream advances exactly as on the plain path) but its output is
///   discarded for that slot.
/// * [`FaultSite::SinkWrite`] — a telemetry write fails. The sink is
///   demoted for the rest of the run (the degradation the chaos harness
///   asserts is graceful: the run itself must finish unharmed), and the
///   demotion is accounted in [`RunHealth`].
fn run_loop<E, D, R, S, F>(
    env: &mut E,
    defender: &mut D,
    slots: usize,
    rng: &mut R,
    sink: &mut S,
    fault: &mut F,
) -> EpisodeReport
where
    E: Environment + ?Sized,
    D: Defender + ?Sized,
    R: Rng,
    S: EventSink,
    F: FaultPoint,
{
    let mut metrics = Metrics::new();
    let mut total_reward = 0.0;
    let mut health = RunHealth::clean();
    let fired_at_entry = fault.total_fired();
    let replay_corrupt_at_entry = fault.fired(FaultSite::ReplayCorruption);
    let skipped_at_entry = defender.probe().skipped_train_steps.unwrap_or(0);
    let mut seen_train_steps = defender.probe().train_steps.unwrap_or(0);
    let mut prev_decision: Option<crate::env::Decision> = None;
    for slot in 0..slots {
        let mut decision = defender.decide(rng);
        if fault.is_enabled() && fault.should_fire(FaultSite::DeadlineOverrun) {
            health.deadline_overruns += 1;
            // The fresh decision missed the deadline: the radio repeats
            // the previous slot's configuration (first slot: nothing to
            // repeat, the fresh decision stands).
            if let Some(prev) = prev_decision {
                decision = prev;
            }
        }
        prev_decision = Some(decision);
        // Decoy draws happen after the decision, before the environment
        // resolves the slot; the default (no decoy) draws nothing, so
        // decoy-free runs are bit-exact with pre-0.3.0 ones.
        let decoy = defender.decoy(rng);
        let result = env.step_with_decoy(decision, decoy, rng);
        defender.feedback_with_fault(&result, rng, fault);
        metrics.record(&result);
        total_reward += result.reward;
        if !health.sink_demoted {
            if fault.is_enabled() && fault.should_fire(FaultSite::SinkWrite) {
                // A failed telemetry write demotes the sink to a null
                // sink for the rest of the run: telemetry is best-effort,
                // the run itself must not die with it.
                health.sink_write_failures += 1;
                health.sink_demoted = true;
            } else {
                sink.record_slot(&result.telemetry_event(slot as u64));
            }
        }
        let probe = defender.probe();
        if let Some(epsilon) = probe.epsilon {
            // Attribute a loss to this slot only if feedback actually
            // performed a gradient step (train_steps advanced).
            let train_steps = probe.train_steps.unwrap_or(0);
            let loss = (train_steps > seen_train_steps)
                .then_some(probe.last_loss)
                .flatten();
            seen_train_steps = train_steps;
            if !health.sink_demoted {
                sink.record_train(&TrainEvent {
                    step: slot as u64,
                    loss,
                    epsilon,
                    replay_len: probe.replay_len.unwrap_or(0),
                    replay_capacity: probe.replay_capacity.unwrap_or(0),
                });
            }
        }
    }
    health.skipped_train_steps =
        (defender.probe().skipped_train_steps.unwrap_or(0) - skipped_at_entry) as u64;
    health.corrupted_replay_entries =
        fault.fired(FaultSite::ReplayCorruption) - replay_corrupt_at_entry;
    health.faults_fired = fault.total_fired() - fired_at_entry;
    EpisodeReport {
        metrics,
        total_reward,
        health,
    }
}

/// Outcome of [`train_until`]: how training progressed and why it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingCurve {
    /// Mean Eq. (5) reward of each completed window, in order.
    pub window_rewards: Vec<f64>,
    /// Slots actually trained.
    pub slots_used: usize,
    /// Whether the reward threshold was reached before the slot budget
    /// ran out (the paper's "training goal achieved in advance").
    pub converged: bool,
}

/// Trains with the paper's §IV.B early-stopping rule: "the training
/// process lasts … unless the training goal has been achieved in advance
/// (i.e., the average reward reaches a certain threshold)".
///
/// Training proceeds in windows of `window` slots on a persistent
/// environment; it stops as soon as a window's mean reward reaches
/// `reward_threshold`, or after `max_slots` in total.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn train_until<R: Rng>(
    params: &EnvParams,
    defender: &mut DqnDefender,
    max_slots: usize,
    window: usize,
    reward_threshold: f64,
    rng: &mut R,
) -> TrainingCurve {
    assert!(window > 0, "training window must be positive");
    defender.set_training(true);
    let mut env = CompetitionEnv::new(params.clone(), rng);
    let mut curve = TrainingCurve {
        window_rewards: Vec::new(),
        slots_used: 0,
        converged: false,
    };
    while curve.slots_used < max_slots {
        let this_window = window.min(max_slots - curve.slots_used);
        let report = run_loop(
            &mut env,
            defender,
            this_window,
            rng,
            &mut NullSink,
            &mut NullFaultPlan,
        );
        curve.slots_used += this_window;
        let mean = report.mean_reward();
        curve.window_rewards.push(mean);
        if this_window == window && mean >= reward_threshold {
            curve.converged = true;
            break;
        }
    }
    curve
}

/// Evaluates any defender greedily for `slots` slots. For a DQN defender
/// this freezes learning and exploration first.
pub fn evaluate<D: Defender + ?Sized, R: Rng>(
    params: &EnvParams,
    defender: &mut D,
    slots: usize,
    rng: &mut R,
) -> EpisodeReport {
    RunBuilder::new(params).evaluate(defender, slots, rng)
}

/// Trains a fresh paper-default DQN on the concrete environment and
/// evaluates it.
///
/// Returns `(trained defender, evaluation report)`.
pub fn train_and_evaluate<R: Rng>(
    params: &EnvParams,
    train_slots: usize,
    eval_slots: usize,
    rng: &mut R,
) -> (DqnDefender, EpisodeReport) {
    let mut defender = DqnDefender::paper_default(params, rng);
    RunBuilder::new(params).train(&mut defender, train_slots, rng);
    defender.set_training(false);
    let report = RunBuilder::new(params).evaluate(&mut defender, eval_slots, rng);
    (defender, report)
}

/// Trains a fresh paper-default DQN on the **MDP-kernel** environment
/// (the paper's Matlab simulation setting) and evaluates it — the unit of
/// work behind every Fig. 6–8 data point.
///
/// Returns `(trained defender, evaluation report)`.
pub fn train_and_evaluate_kernel<R: Rng>(
    params: &EnvParams,
    train_slots: usize,
    eval_slots: usize,
    rng: &mut R,
) -> (DqnDefender, EpisodeReport) {
    let mut defender = DqnDefender::paper_default(params, rng);
    RunBuilder::new(params)
        .kernel(true)
        .train(&mut defender, train_slots, rng);
    defender.set_training(false);
    let report = RunBuilder::new(params)
        .kernel(true)
        .evaluate(&mut defender, eval_slots, rng);
    (defender, report)
}

/// A budget for sweep experiments, tunable via the `CTJAM_TRAIN_SLOTS`
/// and `CTJAM_EVAL_SLOTS` environment variables so figure reproduction
/// can trade fidelity for wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepBudget {
    /// Training slots per data point.
    pub train_slots: usize,
    /// Evaluation slots per data point (paper: 20 000).
    pub eval_slots: usize,
}

impl Default for SweepBudget {
    fn default() -> Self {
        SweepBudget {
            train_slots: 12_000,
            eval_slots: 20_000,
        }
    }
}

impl SweepBudget {
    /// Reads the budget from the environment, falling back to defaults.
    pub fn from_env() -> Self {
        let parse = |key: &str, default: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let d = SweepBudget::default();
        SweepBudget {
            train_slots: parse("CTJAM_TRAIN_SLOTS", d.train_slots),
            eval_slots: parse("CTJAM_EVAL_SLOTS", d.eval_slots),
        }
    }
}

/// The per-point RNG seed of a sweep: every point of a sweep with
/// `base_seed` derives its own `StdRng` from this value, so any point can
/// be re-run bit-exactly in isolation (see [`replay`]).
pub fn point_seed(base_seed: u64, index: usize) -> u64 {
    base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9)
}

fn default_sweep_threads(points: usize) -> usize {
    crate::pool::available_threads().min(points.max(1))
}

/// Builds the replay trace of a sweep without running it: one
/// [`EpisodeRecord`] per point, carrying the exact seed and slot budget
/// that [`RunBuilder::sweep`] would use. Because sweep seeding is a
/// pure function of `(base_seed, index)`, capture costs nothing and can
/// be written next to the results before the sweep even starts.
pub fn capture_sweep(
    run: &str,
    points: &[EnvParams],
    budget: SweepBudget,
    base_seed: u64,
) -> ReplayTrace {
    let config = points
        .first()
        .map_or_else(String::new, |p| format!("{p:?}"));
    let mut trace = ReplayTrace::new(run, base_seed, &config);
    for (index, params) in points.iter().enumerate() {
        trace.push(EpisodeRecord {
            index,
            label: format!(
                "{run}[{index}]: {} ch, L_J={}",
                params.num_channels(),
                params.l_j
            ),
            seed: point_seed(base_seed, index),
            train_slots: budget.train_slots,
            eval_slots: budget.eval_slots,
        });
    }
    trace
}

/// Re-runs one captured sweep point bit-exactly on the concrete
/// environment: same seed, same budget → identical [`Metrics`] to the
/// original sweep's point (asserted by `tests/determinism.rs`).
pub fn replay(params: &EnvParams, record: &EpisodeRecord) -> EpisodeReport {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(record.seed);
    let (_, report) = train_and_evaluate(params, record.train_slots, record.eval_slots, &mut rng);
    report
}

/// [`replay`] for MDP-kernel sweeps ([`RunBuilder::kernel`]).
pub fn replay_kernel(params: &EnvParams, record: &EpisodeRecord) -> EpisodeReport {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(record.seed);
    let (_, report) =
        train_and_evaluate_kernel(params, record.train_slots, record.eval_slots, &mut rng);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defender::{NoDefense, PassiveFh, RandomFh};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn run_accumulates_requested_slots() {
        let params = EnvParams::default();
        let mut r = rng(0);
        let mut defender = PassiveFh::new(&params, &mut r);
        let report = RunBuilder::new(&params).run(&mut defender, 500, &mut r);
        assert_eq!(report.metrics.slots(), 500);
        assert!(report.total_reward < 0.0, "losses are negative");
        assert!(report.mean_reward() < 0.0);
    }

    #[test]
    fn baseline_ordering_random_beats_passive_beats_nothing() {
        // Fig. 11(a)'s qualitative ordering on the slot level.
        let params = EnvParams::default();
        let mut r = rng(1);
        let mut none = NoDefense::new(&params, &mut r);
        let mut psv = PassiveFh::new(&params, &mut r);
        let mut rnd = RandomFh::new(&params, &mut r);
        let st_none = RunBuilder::new(&params)
            .run(&mut none, 6_000, &mut r)
            .metrics
            .success_rate();
        let st_psv = RunBuilder::new(&params)
            .run(&mut psv, 6_000, &mut r)
            .metrics
            .success_rate();
        let st_rnd = RunBuilder::new(&params)
            .run(&mut rnd, 6_000, &mut r)
            .metrics
            .success_rate();
        assert!(st_psv > st_none, "passive {st_psv} vs none {st_none}");
        assert!(st_rnd > st_psv, "random {st_rnd} vs passive {st_psv}");
    }

    #[test]
    fn sweep_is_deterministic_given_seed() {
        let params = vec![EnvParams::default(); 2];
        let budget = SweepBudget {
            train_slots: 200,
            eval_slots: 200,
        };
        let a = RunBuilder::new(&params[0])
            .budget(budget)
            .seed(7)
            .sweep(&params, |_, _| {});
        let b = RunBuilder::new(&params[0])
            .budget(budget)
            .seed(7)
            .sweep(&params, |_, _| {});
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.success_rate(), y.success_rate());
        }
    }

    #[test]
    fn train_until_stops_on_budget_or_threshold() {
        let params = EnvParams::default();
        let mut r = rng(5);
        // Impossible threshold: must exhaust the budget.
        let mut d = crate::defender::DqnDefender::small_for_tests(&params, &mut r);
        let curve = train_until(&params, &mut d, 600, 200, 1.0, &mut r);
        assert!(!curve.converged);
        assert_eq!(curve.slots_used, 600);
        assert_eq!(curve.window_rewards.len(), 3);

        // Trivial threshold (rewards are ≤ 0 but > −10_000): stops after
        // the first window.
        let mut d = crate::defender::DqnDefender::small_for_tests(&params, &mut r);
        let curve = train_until(&params, &mut d, 600, 200, -10_000.0, &mut r);
        assert!(curve.converged);
        assert_eq!(curve.slots_used, 200);
    }

    #[test]
    fn train_until_produces_a_useful_policy() {
        // The Eq. (5) reward of a trained policy hovers near the
        // always-hop cost, so the *curve* is flat-ish; the meaningful
        // outcome is that the trained policy transmits successfully.
        let params = EnvParams::default();
        let mut r = rng(6);
        let mut d = crate::defender::DqnDefender::small_for_tests(&params, &mut r);
        let curve = train_until(&params, &mut d, 8_000, 1_000, 0.0, &mut r);
        assert!(curve.slots_used <= 8_000);
        assert!(!curve.window_rewards.is_empty());
        d.set_training(false);
        let st = evaluate(&params, &mut d, 3_000, &mut r)
            .metrics
            .success_rate();
        assert!(st > 0.4, "trained ST too low: {st}");
    }

    #[test]
    fn budget_from_env_falls_back_to_defaults() {
        // (Does not set the variables; just exercises the fallback path.)
        let b = SweepBudget::from_env();
        assert!(b.train_slots > 0 && b.eval_slots > 0);
    }

    #[test]
    fn zero_rate_fault_plan_is_bit_exact_with_the_plain_run() {
        use ctjam_fault::{FaultPlan, FaultRates};
        let params = EnvParams::default();

        let mut r1 = rng(9);
        let mut d1 = crate::defender::DqnDefender::small_for_tests(&params, &mut r1);
        let plain = RunBuilder::new(&params).run(&mut d1, 800, &mut r1);

        let mut r2 = rng(9);
        let mut d2 = crate::defender::DqnDefender::small_for_tests(&params, &mut r2);
        let mut plan = FaultPlan::new(123, FaultRates::zero());
        let faulted = RunBuilder::new(&params)
            .fault_plan(&mut plan)
            .run(&mut d2, 800, &mut r2);

        assert_eq!(plain, faulted);
        assert!(faulted.health.is_clean());
        // The main RNG streams stayed aligned past the run.
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn deadline_overruns_repeat_the_previous_decision() {
        use ctjam_fault::{FaultPlan, FaultRates, FaultSite};
        let params = EnvParams::default();
        let mut r = rng(10);
        let mut defender = RandomFh::new(&params, &mut r);
        let mut plan = FaultPlan::new(7, FaultRates::zero().with(FaultSite::DeadlineOverrun, 1.0));
        let report = RunBuilder::new(&params)
            .fault_plan(&mut plan)
            .run(&mut defender, 300, &mut r);
        assert_eq!(report.metrics.slots(), 300, "run must survive overruns");
        assert_eq!(report.health.deadline_overruns, 300);
        assert_eq!(report.health.faults_fired, 300);
        assert!(!report.health.is_clean());
    }

    #[test]
    fn failed_sink_write_demotes_to_null_for_the_rest_of_the_run() {
        use ctjam_fault::{FaultPlan, FaultRates, FaultSite};
        use ctjam_telemetry::MemorySink;
        let params = EnvParams::default();
        let mut r = rng(11);
        let mut defender = PassiveFh::new(&params, &mut r);
        let mut sink = MemorySink::new();
        let mut plan = FaultPlan::new(5, FaultRates::zero().with(FaultSite::SinkWrite, 1.0));
        let report = RunBuilder::new(&params)
            .sink(&mut sink)
            .fault_plan(&mut plan)
            .run(&mut defender, 100, &mut r);
        assert_eq!(report.metrics.slots(), 100, "run must survive the sink");
        assert!(report.health.sink_demoted);
        assert_eq!(
            report.health.sink_write_failures, 1,
            "demotion is permanent — exactly one failed write"
        );
        assert!(sink.slots.is_empty(), "no event reached the failed sink");
    }

    #[test]
    fn sweep_with_empty_points_returns_empty() {
        let out = RunBuilder::new(&EnvParams::default())
            .threads(0)
            .sweep(&[], |_, _| {});
        assert!(out.is_empty());
    }

    #[test]
    fn adversary_override_swaps_the_opponent_only() {
        use crate::adversary::AdversaryConfig;
        // The unprotected floor survives every slot once the builder
        // swaps the default sweep jammer out for no adversary at all.
        let params = EnvParams::default();
        let mut r = rng(12);
        let mut defender = NoDefense::new(&params, &mut r);
        let report = RunBuilder::new(&params)
            .adversary(AdversaryConfig::none())
            .run(&mut defender, 400, &mut r);
        assert_eq!(report.metrics.success_rate(), 1.0);
    }

    #[test]
    fn decoys_bait_a_reactive_jammer_off_the_victim() {
        use crate::adversary::AdversaryConfig;
        use crate::defender::WithDecoys;
        let params = EnvParams {
            adversary: AdversaryConfig::reactive(0.0),
            ..EnvParams::default()
        };

        let mut r = rng(13);
        let mut plain = NoDefense::new(&params, &mut r);
        let st_plain = RunBuilder::new(&params)
            .run(&mut plain, 400, &mut r)
            .metrics
            .success_rate();

        let mut r = rng(13);
        let inner = NoDefense::new(&params, &mut r);
        let mut baited = WithDecoys::new(inner, 1.0, &params);
        let report = RunBuilder::new(&params).run(&mut baited, 400, &mut r);
        let st_baited = report.metrics.success_rate();

        assert!(
            st_baited > st_plain + 0.3,
            "decoys must draw the reactive jammer away: {st_baited} vs {st_plain}"
        );
        // Every slot paid the fake-transmission cost on top of tx power.
        assert!(report.total_reward <= -(400.0 * params.l_decoy));
    }

    #[test]
    fn sweep_with_zero_threads_matches_sequential() {
        let points = vec![EnvParams::default(); 2];
        let budget = SweepBudget {
            train_slots: 150,
            eval_slots: 150,
        };
        let zero = RunBuilder::new(&points[0])
            .budget(budget)
            .seed(3)
            .threads(0)
            .sweep(&points, |_, _| {});
        let one = RunBuilder::new(&points[0])
            .budget(budget)
            .seed(3)
            .threads(1)
            .sweep(&points, |_, _| {});
        assert_eq!(zero, one);
    }
}
