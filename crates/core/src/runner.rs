//! Training and evaluation loops (§IV.A: "the experiment lasts for 20000
//! time slots to get the average value"), plus parameter-sweep helpers.

use crate::defender::{Defender, DqnDefender};
use crate::env::{CompetitionEnv, EnvParams, Environment};
use crate::kernel::KernelEnv;
use crate::metrics::Metrics;
use ctjam_telemetry::{EpisodeRecord, EventSink, NullSink, ReplayTrace, TrainEvent};
use rand::Rng;

/// Result of running a defender for a number of slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeReport {
    /// Table I metrics over the run.
    pub metrics: Metrics,
    /// Sum of Eq. (5) rewards.
    pub total_reward: f64,
}

impl EpisodeReport {
    /// Mean per-slot reward.
    pub fn mean_reward(&self) -> f64 {
        if self.metrics.slots() == 0 {
            0.0
        } else {
            self.total_reward / self.metrics.slots() as f64
        }
    }
}

/// Drives `defender` against an existing environment for `slots` slots.
pub fn run_in<E: Environment + ?Sized, D: Defender + ?Sized, R: Rng>(
    env: &mut E,
    defender: &mut D,
    slots: usize,
    rng: &mut R,
) -> EpisodeReport {
    run_in_with(env, defender, slots, rng, &mut NullSink)
}

/// [`run_in`] with a telemetry sink attached: emits one
/// [`ctjam_telemetry::SlotEvent`] per slot and, for learning defenders,
/// one [`TrainEvent`] per slot in which a gradient step ran.
///
/// Monomorphised over [`NullSink`] this is exactly the uninstrumented
/// loop (every sink hook is an empty default body), which is why
/// [`run_in`] delegates here unconditionally.
pub fn run_in_with<E, D, R, S>(
    env: &mut E,
    defender: &mut D,
    slots: usize,
    rng: &mut R,
    sink: &mut S,
) -> EpisodeReport
where
    E: Environment + ?Sized,
    D: Defender + ?Sized,
    R: Rng,
    S: EventSink,
{
    let mut metrics = Metrics::new();
    let mut total_reward = 0.0;
    let mut seen_train_steps = defender.probe().train_steps.unwrap_or(0);
    for slot in 0..slots {
        let decision = defender.decide(rng);
        let result = env.step(decision, rng);
        defender.feedback(&result, rng);
        metrics.record(&result);
        total_reward += result.reward;
        sink.record_slot(&result.telemetry_event(slot as u64));
        let probe = defender.probe();
        if let Some(epsilon) = probe.epsilon {
            // Attribute a loss to this slot only if feedback actually
            // performed a gradient step (train_steps advanced).
            let train_steps = probe.train_steps.unwrap_or(0);
            let loss = (train_steps > seen_train_steps)
                .then_some(probe.last_loss)
                .flatten();
            seen_train_steps = train_steps;
            sink.record_train(&TrainEvent {
                step: slot as u64,
                loss,
                epsilon,
                replay_len: probe.replay_len.unwrap_or(0),
                replay_capacity: probe.replay_capacity.unwrap_or(0),
            });
        }
    }
    EpisodeReport {
        metrics,
        total_reward,
    }
}

/// Runs `defender` against a fresh concrete [`CompetitionEnv`].
pub fn run<D: Defender + ?Sized, R: Rng>(
    params: &EnvParams,
    defender: &mut D,
    slots: usize,
    rng: &mut R,
) -> EpisodeReport {
    run_with(params, defender, slots, rng, &mut NullSink)
}

/// [`run`] with a telemetry sink attached.
pub fn run_with<D: Defender + ?Sized, R: Rng, S: EventSink>(
    params: &EnvParams,
    defender: &mut D,
    slots: usize,
    rng: &mut R,
    sink: &mut S,
) -> EpisodeReport {
    let mut env = CompetitionEnv::new(params.clone(), rng);
    run_in_with(&mut env, defender, slots, rng, sink)
}

/// Trains a DQN defender for `slots` slots (learning enabled).
pub fn train<R: Rng>(
    params: &EnvParams,
    defender: &mut DqnDefender,
    slots: usize,
    rng: &mut R,
) -> EpisodeReport {
    train_with(params, defender, slots, rng, &mut NullSink)
}

/// [`train`] with a telemetry sink attached (loss curve, ε decay and
/// replay occupancy arrive as [`TrainEvent`]s).
pub fn train_with<R: Rng, S: EventSink>(
    params: &EnvParams,
    defender: &mut DqnDefender,
    slots: usize,
    rng: &mut R,
    sink: &mut S,
) -> EpisodeReport {
    defender.set_training(true);
    run_with(params, defender, slots, rng, sink)
}

/// Outcome of [`train_until`]: how training progressed and why it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingCurve {
    /// Mean Eq. (5) reward of each completed window, in order.
    pub window_rewards: Vec<f64>,
    /// Slots actually trained.
    pub slots_used: usize,
    /// Whether the reward threshold was reached before the slot budget
    /// ran out (the paper's "training goal achieved in advance").
    pub converged: bool,
}

/// Trains with the paper's §IV.B early-stopping rule: "the training
/// process lasts … unless the training goal has been achieved in advance
/// (i.e., the average reward reaches a certain threshold)".
///
/// Training proceeds in windows of `window` slots on a persistent
/// environment; it stops as soon as a window's mean reward reaches
/// `reward_threshold`, or after `max_slots` in total.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn train_until<R: Rng>(
    params: &EnvParams,
    defender: &mut DqnDefender,
    max_slots: usize,
    window: usize,
    reward_threshold: f64,
    rng: &mut R,
) -> TrainingCurve {
    assert!(window > 0, "training window must be positive");
    defender.set_training(true);
    let mut env = CompetitionEnv::new(params.clone(), rng);
    let mut curve = TrainingCurve {
        window_rewards: Vec::new(),
        slots_used: 0,
        converged: false,
    };
    while curve.slots_used < max_slots {
        let this_window = window.min(max_slots - curve.slots_used);
        let report = run_in(&mut env, defender, this_window, rng);
        curve.slots_used += this_window;
        let mean = report.mean_reward();
        curve.window_rewards.push(mean);
        if this_window == window && mean >= reward_threshold {
            curve.converged = true;
            break;
        }
    }
    curve
}

/// Evaluates any defender greedily for `slots` slots. For a DQN defender
/// this freezes learning and exploration first.
pub fn evaluate<D: Defender + ?Sized, R: Rng>(
    params: &EnvParams,
    defender: &mut D,
    slots: usize,
    rng: &mut R,
) -> EpisodeReport {
    run(params, defender, slots, rng)
}

/// Trains a fresh paper-default DQN on the concrete environment and
/// evaluates it.
///
/// Returns `(trained defender, evaluation report)`.
pub fn train_and_evaluate<R: Rng>(
    params: &EnvParams,
    train_slots: usize,
    eval_slots: usize,
    rng: &mut R,
) -> (DqnDefender, EpisodeReport) {
    let mut defender = DqnDefender::paper_default(params, rng);
    train(params, &mut defender, train_slots, rng);
    defender.set_training(false);
    let report = evaluate(params, &mut defender, eval_slots, rng);
    (defender, report)
}

/// Trains a fresh paper-default DQN on the **MDP-kernel** environment
/// (the paper's Matlab simulation setting) and evaluates it — the unit of
/// work behind every Fig. 6–8 data point.
///
/// Returns `(trained defender, evaluation report)`.
pub fn train_and_evaluate_kernel<R: Rng>(
    params: &EnvParams,
    train_slots: usize,
    eval_slots: usize,
    rng: &mut R,
) -> (DqnDefender, EpisodeReport) {
    let mut defender = DqnDefender::paper_default(params, rng);
    let mut env = KernelEnv::new(params.clone(), rng);
    defender.set_training(true);
    run_in(&mut env, &mut defender, train_slots, rng);
    defender.set_training(false);
    let mut eval_env = KernelEnv::new(params.clone(), rng);
    let report = run_in(&mut eval_env, &mut defender, eval_slots, rng);
    (defender, report)
}

/// A budget for sweep experiments, tunable via the `CTJAM_TRAIN_SLOTS`
/// and `CTJAM_EVAL_SLOTS` environment variables so figure reproduction
/// can trade fidelity for wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepBudget {
    /// Training slots per data point.
    pub train_slots: usize,
    /// Evaluation slots per data point (paper: 20 000).
    pub eval_slots: usize,
}

impl Default for SweepBudget {
    fn default() -> Self {
        SweepBudget {
            train_slots: 12_000,
            eval_slots: 20_000,
        }
    }
}

impl SweepBudget {
    /// Reads the budget from the environment, falling back to defaults.
    pub fn from_env() -> Self {
        let parse = |key: &str, default: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let d = SweepBudget::default();
        SweepBudget {
            train_slots: parse("CTJAM_TRAIN_SLOTS", d.train_slots),
            eval_slots: parse("CTJAM_EVAL_SLOTS", d.eval_slots),
        }
    }
}

/// The per-point RNG seed of a sweep: every point of a sweep with
/// `base_seed` derives its own `StdRng` from this value, so any point can
/// be re-run bit-exactly in isolation (see [`replay`]).
pub fn point_seed(base_seed: u64, index: usize) -> u64 {
    base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9)
}

fn default_sweep_threads(points: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(points.max(1))
}

/// Runs one sweep point (train + evaluate a fresh DQN) for each
/// parameterization, in parallel across available threads.
///
/// Points are seeded deterministically from `base_seed` and the point
/// index ([`point_seed`]), so results are reproducible regardless of
/// scheduling.
pub fn sweep<F>(points: &[EnvParams], budget: SweepBudget, base_seed: u64, f: F) -> Vec<Metrics>
where
    F: Fn(usize, &EpisodeReport) + Sync,
{
    sweep_with_threads(
        points,
        budget,
        base_seed,
        default_sweep_threads(points.len()),
        f,
    )
}

/// [`sweep`] with an explicit worker-thread count. Results must not
/// depend on `threads` — the cross-thread determinism integration test
/// (`tests/determinism.rs`) asserts 1-thread and N-thread sweeps agree
/// bit-exactly.
pub fn sweep_with_threads<F>(
    points: &[EnvParams],
    budget: SweepBudget,
    base_seed: u64,
    threads: usize,
    f: F,
) -> Vec<Metrics>
where
    F: Fn(usize, &EpisodeReport) + Sync,
{
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    parallel_map(points, threads, &|index: usize, params: &EnvParams| {
        let mut rng = StdRng::seed_from_u64(point_seed(base_seed, index));
        let (_, report) =
            train_and_evaluate(params, budget.train_slots, budget.eval_slots, &mut rng);
        f(index, &report);
        report.metrics
    })
}

/// Like [`sweep`] but each point trains and evaluates on the MDP-kernel
/// environment — the paper's simulation setting for Figs. 6–8.
pub fn sweep_kernel<F>(
    points: &[EnvParams],
    budget: SweepBudget,
    base_seed: u64,
    f: F,
) -> Vec<Metrics>
where
    F: Fn(usize, &EpisodeReport) + Sync,
{
    sweep_kernel_with_threads(
        points,
        budget,
        base_seed,
        default_sweep_threads(points.len()),
        f,
    )
}

/// [`sweep_kernel`] with an explicit worker-thread count.
pub fn sweep_kernel_with_threads<F>(
    points: &[EnvParams],
    budget: SweepBudget,
    base_seed: u64,
    threads: usize,
    f: F,
) -> Vec<Metrics>
where
    F: Fn(usize, &EpisodeReport) + Sync,
{
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    parallel_map(points, threads, &|index: usize, params: &EnvParams| {
        let mut rng = StdRng::seed_from_u64(point_seed(base_seed, index));
        let (_, report) =
            train_and_evaluate_kernel(params, budget.train_slots, budget.eval_slots, &mut rng);
        f(index, &report);
        report.metrics
    })
}

/// Builds the replay trace of a sweep without running it: one
/// [`EpisodeRecord`] per point, carrying the exact seed and slot budget
/// that [`sweep`]/[`sweep_kernel`] would use. Because sweep seeding is a
/// pure function of `(base_seed, index)`, capture costs nothing and can
/// be written next to the results before the sweep even starts.
pub fn capture_sweep(
    run: &str,
    points: &[EnvParams],
    budget: SweepBudget,
    base_seed: u64,
) -> ReplayTrace {
    let config = points
        .first()
        .map_or_else(String::new, |p| format!("{p:?}"));
    let mut trace = ReplayTrace::new(run, base_seed, &config);
    for (index, params) in points.iter().enumerate() {
        trace.push(EpisodeRecord {
            index,
            label: format!(
                "{run}[{index}]: {} ch, L_J={}",
                params.num_channels(),
                params.l_j
            ),
            seed: point_seed(base_seed, index),
            train_slots: budget.train_slots,
            eval_slots: budget.eval_slots,
        });
    }
    trace
}

/// Re-runs one captured sweep point bit-exactly on the concrete
/// environment: same seed, same budget → identical [`Metrics`] to the
/// original sweep's point (asserted by `tests/determinism.rs`).
pub fn replay(params: &EnvParams, record: &EpisodeRecord) -> EpisodeReport {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(record.seed);
    let (_, report) = train_and_evaluate(params, record.train_slots, record.eval_slots, &mut rng);
    report
}

/// [`replay`] for MDP-kernel sweeps ([`sweep_kernel`]).
pub fn replay_kernel(params: &EnvParams, record: &EpisodeRecord) -> EpisodeReport {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(record.seed);
    let (_, report) =
        train_and_evaluate_kernel(params, record.train_slots, record.eval_slots, &mut rng);
    report
}

/// Minimal parallel map over chunks using std scoped threads.
fn parallel_map<T, U, F>(items: &[T], threads: usize, f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let mut rest = &mut out[..];
        let mut offset = 0usize;
        for piece in items.chunks(chunk) {
            let (head, tail) = rest.split_at_mut(piece.len());
            rest = tail;
            let base = offset;
            offset += piece.len();
            scope.spawn(move || {
                for (i, (slot, item)) in head.iter_mut().zip(piece).enumerate() {
                    *slot = Some(f(base + i, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defender::{NoDefense, PassiveFh, RandomFh};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn run_accumulates_requested_slots() {
        let params = EnvParams::default();
        let mut r = rng(0);
        let mut defender = PassiveFh::new(&params, &mut r);
        let report = run(&params, &mut defender, 500, &mut r);
        assert_eq!(report.metrics.slots(), 500);
        assert!(report.total_reward < 0.0, "losses are negative");
        assert!(report.mean_reward() < 0.0);
    }

    #[test]
    fn baseline_ordering_random_beats_passive_beats_nothing() {
        // Fig. 11(a)'s qualitative ordering on the slot level.
        let params = EnvParams::default();
        let mut r = rng(1);
        let mut none = NoDefense::new(&params, &mut r);
        let mut psv = PassiveFh::new(&params, &mut r);
        let mut rnd = RandomFh::new(&params, &mut r);
        let st_none = run(&params, &mut none, 6_000, &mut r)
            .metrics
            .success_rate();
        let st_psv = run(&params, &mut psv, 6_000, &mut r).metrics.success_rate();
        let st_rnd = run(&params, &mut rnd, 6_000, &mut r).metrics.success_rate();
        assert!(st_psv > st_none, "passive {st_psv} vs none {st_none}");
        assert!(st_rnd > st_psv, "random {st_rnd} vs passive {st_psv}");
    }

    #[test]
    fn sweep_is_deterministic_given_seed() {
        let params = vec![EnvParams::default(); 2];
        let budget = SweepBudget {
            train_slots: 200,
            eval_slots: 200,
        };
        let a = sweep(&params, budget, 7, |_, _| {});
        let b = sweep(&params, budget, 7, |_, _| {});
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.success_rate(), y.success_rate());
        }
    }

    #[test]
    fn train_until_stops_on_budget_or_threshold() {
        let params = EnvParams::default();
        let mut r = rng(5);
        // Impossible threshold: must exhaust the budget.
        let mut d = crate::defender::DqnDefender::small_for_tests(&params, &mut r);
        let curve = train_until(&params, &mut d, 600, 200, 1.0, &mut r);
        assert!(!curve.converged);
        assert_eq!(curve.slots_used, 600);
        assert_eq!(curve.window_rewards.len(), 3);

        // Trivial threshold (rewards are ≤ 0 but > −10_000): stops after
        // the first window.
        let mut d = crate::defender::DqnDefender::small_for_tests(&params, &mut r);
        let curve = train_until(&params, &mut d, 600, 200, -10_000.0, &mut r);
        assert!(curve.converged);
        assert_eq!(curve.slots_used, 200);
    }

    #[test]
    fn train_until_produces_a_useful_policy() {
        // The Eq. (5) reward of a trained policy hovers near the
        // always-hop cost, so the *curve* is flat-ish; the meaningful
        // outcome is that the trained policy transmits successfully.
        let params = EnvParams::default();
        let mut r = rng(6);
        let mut d = crate::defender::DqnDefender::small_for_tests(&params, &mut r);
        let curve = train_until(&params, &mut d, 8_000, 1_000, 0.0, &mut r);
        assert!(curve.slots_used <= 8_000);
        assert!(!curve.window_rewards.is_empty());
        d.set_training(false);
        let st = evaluate(&params, &mut d, 3_000, &mut r)
            .metrics
            .success_rate();
        assert!(st > 0.4, "trained ST too low: {st}");
    }

    #[test]
    fn budget_from_env_falls_back_to_defaults() {
        // (Does not set the variables; just exercises the fallback path.)
        let b = SweepBudget::from_env();
        assert!(b.train_slots > 0 && b.eval_slots > 0);
    }
}
