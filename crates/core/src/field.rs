//! The field-experiment simulator (paper §IV.D, Figs. 10–11).
//!
//! Couples the slot-level jamming competition to the packet-level star
//! network: each Tx slot the defender commits a `(channel, power)`
//! decision, the jammer acts on *its own clock* (`jx_slot_s` may differ
//! from `tx_slot_s` — the Fig. 11(b) experiment), and whatever fraction of
//! the slot ends up jammed translates into lost packets in the
//! [`ctjam_net::star::StarNetwork`].

use crate::defender::Defender;
use crate::env::{EnvParams, Outcome, SlotResult};
use crate::jammer::{JamAction, SweepJammer};
use crate::metrics::Metrics;
use ctjam_net::goodput::GoodputMeter;
use ctjam_net::star::StarNetwork;
use ctjam_net::timing::TimingModel;
use rand::Rng;

/// Field experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldConfig {
    /// Slot-level competition parameters.
    pub env: EnvParams,
    /// Duration of the Tx (defender) time slot, seconds.
    pub tx_slot_s: f64,
    /// Duration of the Jx (jammer) time slot, seconds.
    pub jx_slot_s: f64,
    /// Number of peripheral nodes (paper: 3 + hub).
    pub num_peripherals: usize,
    /// Application payload size per packet, bytes.
    pub payload_len: usize,
    /// Whether the jammer is present (`false` = the "w/o Jx" reference).
    pub jammer_enabled: bool,
    /// Timing model for the star network.
    pub timing: TimingModel,
}

impl Default for FieldConfig {
    fn default() -> Self {
        FieldConfig {
            env: EnvParams::default(),
            tx_slot_s: 3.0,
            jx_slot_s: 3.0,
            num_peripherals: 3,
            payload_len: 100,
            jammer_enabled: true,
            timing: TimingModel::default(),
        }
    }
}

/// Aggregated result of a field run.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldReport {
    /// Packet-level goodput accounting (Fig. 10, Fig. 11 y-axes).
    pub goodput: GoodputMeter,
    /// Slot-level Table I metrics.
    pub metrics: Metrics,
}

impl FieldReport {
    /// The headline number: mean unique packets delivered per Tx slot.
    pub fn packets_per_slot(&self) -> f64 {
        self.goodput.packets_per_slot()
    }
}

/// The running experiment.
#[derive(Debug, Clone)]
pub struct FieldExperiment<D> {
    config: FieldConfig,
    jammer: SweepJammer,
    network: StarNetwork,
    defender: D,
    /// Absolute time, seconds.
    now_s: f64,
    /// Absolute time of the jammer's next decision.
    jx_next_s: f64,
    /// The jammer's standing action (block + power) between its ticks.
    standing: Option<JamAction>,
    /// Channel of the previous slot's decision (hop detection).
    prev_channel: Option<usize>,
}

impl<D: Defender> FieldExperiment<D> {
    /// Sets up the experiment.
    ///
    /// # Panics
    ///
    /// Panics if either slot duration is non-positive.
    pub fn new<R: Rng + ?Sized>(config: FieldConfig, defender: D, rng: &mut R) -> Self {
        assert!(config.tx_slot_s > 0.0, "tx slot must be positive");
        assert!(config.jx_slot_s > 0.0, "jx slot must be positive");
        let jammer = SweepJammer::new(config.env.adversary.front_end(), rng);
        let network =
            StarNetwork::with_config(config.num_peripherals, config.timing, config.payload_len);
        FieldExperiment {
            jammer,
            network,
            defender,
            now_s: 0.0,
            jx_next_s: 0.0,
            standing: None,
            prev_channel: None,
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FieldConfig {
        &self.config
    }

    /// Access to the defender (e.g. to freeze training after a warmup).
    pub fn defender_mut(&mut self) -> &mut D {
        &mut self.defender
    }

    /// Runs `slots` Tx slots and returns the aggregated report.
    pub fn run<R: Rng>(&mut self, slots: usize, rng: &mut R) -> FieldReport {
        let mut goodput = GoodputMeter::new();
        let mut metrics = Metrics::new();
        for _ in 0..slots {
            let (result, jam_frac, tj_frac) = self.advance_one_slot(rng);
            metrics.record(&result);

            // Packet phase: the jammed fraction of the slot loses its
            // packets; surviving-under-jamming time pays the residual PER.
            let residual = (jam_frac + tj_frac * self.config.env.tj_residual_per).clamp(0.0, 1.0);
            let slot = self
                .network
                .run_slot(self.config.tx_slot_s, true, residual, rng);
            goodput.record_slot(
                slot.delivered,
                slot.attempted,
                slot.payload_bytes,
                slot.overhead_s,
                self.config.tx_slot_s,
            );
        }
        FieldReport { goodput, metrics }
    }

    /// Advances the competition by one Tx slot, returning the slot result
    /// for the defender plus the jammed / survived-under-jamming time
    /// fractions.
    fn advance_one_slot<R: Rng>(&mut self, rng: &mut R) -> (SlotResult, f64, f64) {
        let decision = self.defender.decide(rng);
        let hopped = self
            .prev_channel
            .is_some_and(|prev| prev != decision.channel);
        self.prev_channel = Some(decision.channel);
        let tx_power = self.config.env.tx_powers[decision.power_level];

        let slot_end = self.now_s + self.config.tx_slot_s;
        let mut jam_time = 0.0;
        let mut tj_time = 0.0;

        if self.config.jammer_enabled {
            // Walk the jammer's tick grid across this slot.
            while self.now_s < slot_end {
                if self.jx_next_s <= self.now_s {
                    self.standing = Some(self.jammer.step(decision.channel, rng));
                    self.jx_next_s += self.config.jx_slot_s;
                }
                let segment_end = slot_end.min(self.jx_next_s);
                let segment = segment_end - self.now_s;
                if let Some(action) = &self.standing {
                    if self.jammer.covers(action, decision.channel) {
                        if tx_power >= action.power {
                            tj_time += segment;
                        } else {
                            jam_time += segment;
                        }
                    }
                }
                self.now_s = segment_end;
            }
        } else {
            self.now_s = slot_end;
        }

        let jam_frac = jam_time / self.config.tx_slot_s;
        let tj_frac = tj_time / self.config.tx_slot_s;
        let outcome = if jam_frac >= 0.5 {
            Outcome::Jammed
        } else if jam_frac + tj_frac > 0.02 {
            Outcome::JammedSurvived
        } else {
            Outcome::Clean
        };

        let mut reward = -tx_power;
        if outcome == Outcome::Jammed {
            reward -= self.config.env.l_j;
        }
        if hopped {
            reward -= self.config.env.l_h;
        }

        let result = SlotResult {
            decision,
            outcome,
            hopped,
            power_control: decision.power_level > self.config.env.min_power_level(),
            reward,
            jam_action: self.standing.unwrap_or(JamAction::idle()),
        };
        self.defender.feedback(&result, rng);
        (result, jam_frac, tj_frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defender::{NoDefense, PassiveFh, RandomFh};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn no_jammer_reference_delivers_full_goodput() {
        let mut r = rng(1);
        let config = FieldConfig {
            jammer_enabled: false,
            ..FieldConfig::default()
        };
        let defender = NoDefense::new(&config.env, &mut r);
        let mut exp = FieldExperiment::new(config, defender, &mut r);
        let report = exp.run(10, &mut r);
        assert!(report.metrics.success_rate() == 1.0);
        assert!(report.packets_per_slot() > 300.0);
    }

    #[test]
    fn jammer_hurts_the_undefended() {
        let mut r = rng(2);
        let config = FieldConfig::default();
        let defender = NoDefense::new(&config.env, &mut r);
        let mut exp = FieldExperiment::new(config, defender, &mut r);
        let report = exp.run(30, &mut r);
        assert!(
            report.packets_per_slot() < 220.0,
            "undefended goodput too high: {}",
            report.packets_per_slot()
        );
    }

    #[test]
    fn passive_fh_recovers_some_goodput() {
        let mut r = rng(3);
        let config = FieldConfig::default();
        let none = {
            let defender = NoDefense::new(&config.env, &mut r);
            let mut exp = FieldExperiment::new(config.clone(), defender, &mut r);
            exp.run(40, &mut r).packets_per_slot()
        };
        let psv = {
            let defender = PassiveFh::new(&config.env, &mut r);
            let mut exp = FieldExperiment::new(config.clone(), defender, &mut r);
            exp.run(40, &mut r).packets_per_slot()
        };
        assert!(psv > none, "passive {psv} should beat none {none}");
    }

    #[test]
    fn fast_jammer_is_worse_for_the_victim() {
        let mut r = rng(4);
        let base = FieldConfig::default();
        let slow = {
            let cfg = FieldConfig {
                jx_slot_s: 3.0,
                ..base.clone()
            };
            let defender = RandomFh::new(&cfg.env, &mut r);
            let mut exp = FieldExperiment::new(cfg, defender, &mut r);
            exp.run(60, &mut r).packets_per_slot()
        };
        let fast = {
            let cfg = FieldConfig {
                jx_slot_s: 0.5,
                ..base.clone()
            };
            let defender = RandomFh::new(&cfg.env, &mut r);
            let mut exp = FieldExperiment::new(cfg, defender, &mut r);
            exp.run(60, &mut r).packets_per_slot()
        };
        assert!(
            fast < slow,
            "sub-slot sweeping should hurt more: fast {fast} vs slow {slow}"
        );
    }

    #[test]
    fn goodput_grows_with_slot_duration() {
        let mut r = rng(5);
        let mut last = 0.0;
        for duration in [1.0, 3.0, 5.0] {
            let cfg = FieldConfig {
                tx_slot_s: duration,
                jx_slot_s: duration,
                jammer_enabled: false,
                ..FieldConfig::default()
            };
            let defender = NoDefense::new(&cfg.env, &mut r);
            let mut exp = FieldExperiment::new(cfg, defender, &mut r);
            let pkts = exp.run(8, &mut r).packets_per_slot();
            assert!(
                pkts > last,
                "goodput should grow with duration: {pkts} after {last}"
            );
            last = pkts;
        }
    }

    #[test]
    #[should_panic]
    fn zero_slot_duration_rejected() {
        let mut r = rng(6);
        let cfg = FieldConfig {
            tx_slot_s: 0.0,
            ..FieldConfig::default()
        };
        let defender = NoDefense::new(&cfg.env, &mut r);
        FieldExperiment::new(cfg, defender, &mut r);
    }
}
