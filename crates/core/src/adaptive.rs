//! An adaptive, traffic-predicting jammer — the DeepJam-class adversary
//! from the paper's related work (reference \[14\]: "relies on deep learning
//! techniques to capture the temporal pattern of the past wireless
//! traffic and predict the future wireless traffic").
//!
//! Unlike the sweeping jammer of §II.C, the adaptive jammer is granted
//! wideband energy sensing: it observes which 4-channel block the victim
//! used in every past slot (an upper-bound adversary — a Wi-Fi front end
//! can energy-detect the whole 2.4 GHz band), fits a predictor to that
//! history, and jams the block it expects the victim to use next.
//!
//! Three predictors are provided, from dumb to DeepJam-like:
//!
//! * [`PredictorKind::LastBlock`] — assume the victim stays put;
//! * [`PredictorKind::Markov`] — first-order transition counting;
//! * [`PredictorKind::Rnn`] — an online-trained Elman RNN
//!   ([`ctjam_nn::rnn`]), capturing longer temporal patterns.
//!
//! The headline lesson this module surfaces: a *deterministic* hopping
//! policy (however clever) is predictable and collapses against this
//! adversary, while randomized hopping bounds the jammer at chance level
//! — see the `adaptive_jammer` bench.

use crate::adversary::{
    pick_power, Adversary, AdversaryConfig, AdversaryProbe, ChannelBlock, JamAction, SlotSense,
};
use crate::env::{Decision, EnvParams, Environment, Outcome, SlotResult};
use crate::jammer::JammerMode;
use ctjam_nn::optimizer::Adam;
use ctjam_nn::rnn::Rnn;
use rand::Rng;
use std::collections::VecDeque;

/// Which prediction model the adaptive jammer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredictorKind {
    /// Predict the block used last slot.
    LastBlock,
    /// First-order Markov transition counts.
    #[default]
    Markov,
    /// Online-trained Elman RNN over the block sequence.
    Rnn,
}

/// The block predictor.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one predictor per jammer; size is irrelevant
enum Predictor {
    LastBlock,
    Markov {
        /// `counts[from][to]` transition counts with add-one smoothing.
        counts: Vec<Vec<f64>>,
    },
    Rnn {
        rnn: Rnn,
        optimizer: Adam,
        /// Training window of observed blocks.
        window: VecDeque<usize>,
        window_len: usize,
        train_interval: usize,
        steps: usize,
    },
}

impl Predictor {
    fn new<R: Rng + ?Sized>(kind: PredictorKind, blocks: usize, rng: &mut R) -> Self {
        match kind {
            PredictorKind::LastBlock => Predictor::LastBlock,
            PredictorKind::Markov => Predictor::Markov {
                counts: vec![vec![1.0; blocks]; blocks],
            },
            PredictorKind::Rnn => Predictor::Rnn {
                rnn: Rnn::new(blocks, 16, blocks, rng),
                optimizer: Adam::with_learning_rate(5e-3),
                window: VecDeque::with_capacity(64),
                window_len: 32,
                train_interval: 4,
                steps: 0,
            },
        }
    }

    /// Predicts the next block given the most recent block.
    fn predict(&self, history: &VecDeque<usize>, blocks: usize) -> usize {
        let Some(&last) = history.back() else {
            return 0;
        };
        match self {
            Predictor::LastBlock => last,
            Predictor::Markov { counts } => counts[last]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite counts"))
                .map(|(i, _)| i)
                .unwrap_or(0),
            Predictor::Rnn { rnn, .. } => {
                // Run the RNN over the recent history and take the argmax
                // of the final output.
                let xs: Vec<Vec<f64>> = history.iter().map(|&b| one_hot(b, blocks)).collect();
                let outputs = rnn.run(&xs);
                outputs.last().map(|y| argmax(y)).unwrap_or(0)
            }
        }
    }

    /// Records an observed block (and its predecessor relation).
    fn observe(&mut self, history: &VecDeque<usize>, block: usize, blocks: usize) {
        match self {
            Predictor::LastBlock => {}
            Predictor::Markov { counts } => {
                if let Some(&prev) = history.back() {
                    counts[prev][block] += 1.0;
                }
            }
            Predictor::Rnn {
                rnn,
                optimizer,
                window,
                window_len,
                train_interval,
                steps,
            } => {
                window.push_back(block);
                if window.len() > *window_len {
                    window.pop_front();
                }
                *steps += 1;
                if window.len() >= 4 && steps.is_multiple_of(*train_interval) {
                    let seq: Vec<usize> = window.iter().copied().collect();
                    let xs: Vec<Vec<f64>> = seq[..seq.len() - 1]
                        .iter()
                        .map(|&b| one_hot(b, blocks))
                        .collect();
                    let ys: Vec<Vec<f64>> = seq[1..].iter().map(|&b| one_hot(b, blocks)).collect();
                    rnn.train_sequence(&xs, &ys, optimizer);
                }
            }
        }
    }
}

fn one_hot(index: usize, len: usize) -> Vec<f64> {
    let mut v = vec![0.0; len];
    v[index] = 1.0;
    v
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite values"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// The adaptive jammer: wideband sensing + traffic prediction.
#[derive(Debug, Clone)]
pub struct AdaptiveJammer {
    blocks: usize,
    jam_width: usize,
    powers: Vec<f64>,
    mode: JammerMode,
    predictor: Predictor,
    history: VecDeque<usize>,
    history_cap: usize,
    hits: u64,
    shots: u64,
    /// Whether the jammer reads the hub's plaintext FH/PC announcements
    /// (no prediction needed).
    eavesdropping: bool,
}

impl AdaptiveJammer {
    /// Creates an adaptive jammer over the same channel plan as the
    /// adversary front end in `params`.
    pub fn new<R: Rng + ?Sized>(params: &EnvParams, kind: PredictorKind, rng: &mut R) -> Self {
        Self::from_config(&params.adversary, kind, rng)
    }

    /// Creates an adaptive jammer on `config`'s front end.
    pub fn from_config<R: Rng + ?Sized>(
        config: &AdversaryConfig,
        kind: PredictorKind,
        rng: &mut R,
    ) -> Self {
        let blocks = config.sweep_cycle();
        AdaptiveJammer {
            blocks,
            jam_width: config.jam_width,
            powers: config.powers.clone(),
            mode: config.mode,
            predictor: Predictor::new(kind, blocks, rng),
            history: VecDeque::with_capacity(64),
            history_cap: 32,
            hits: 0,
            shots: 0,
            eavesdropping: false,
        }
    }

    /// Grants (or revokes) plaintext-announcement eavesdropping.
    pub fn set_eavesdropping(&mut self, on: bool) {
        self.eavesdropping = on;
    }

    /// Fraction of slots where the predicted block contained the victim.
    pub fn hit_rate(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.hits as f64 / self.shots as f64
        }
    }

    /// Predicts and commits this slot's attack, *before* seeing where the
    /// victim goes.
    pub fn aim<R: Rng + ?Sized>(&mut self, rng: &mut R) -> JamAction {
        let block = self
            .predictor
            .predict(&self.history, self.blocks)
            .min(self.blocks - 1);
        let power = match self.mode {
            JammerMode::MaxPower => self
                .powers
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max),
            JammerMode::RandomPower => self.powers[rng.gen_range(0..self.powers.len())],
        };
        JamAction {
            block: ChannelBlock::of_block_index(block, self.jam_width),
            power,
            locked: true,
        }
    }

    /// Senses the victim's actual block this slot (wideband energy
    /// detection) and updates the predictor.
    pub fn sense(&mut self, victim_channel: usize, aimed: &JamAction) {
        self.sense_with_decoy(victim_channel, None, aimed);
    }

    /// [`AdaptiveJammer::sense`] in the presence of a decoy: the hit
    /// counter still scores against the real victim, but the predictor
    /// learns from what the wideband detector heard loudest — the
    /// decoy — so bait pollutes the learned traffic pattern.
    fn sense_with_decoy(&mut self, victim_channel: usize, decoy: Option<usize>, aimed: &JamAction) {
        let victim_block = victim_channel / self.jam_width;
        let sensed_block = decoy.unwrap_or(victim_channel) / self.jam_width;
        self.shots += 1;
        if aimed.block.index() == victim_block {
            self.hits += 1;
        }
        self.predictor
            .observe(&self.history, sensed_block, self.blocks);
        self.history.push_back(sensed_block);
        if self.history.len() > self.history_cap {
            self.history.pop_front();
        }
    }
}

impl Adversary for AdaptiveJammer {
    fn name(&self) -> &str {
        "adaptive"
    }

    fn jam(&mut self, sense: &SlotSense, rng: &mut dyn rand::RngCore) -> JamAction {
        if self.eavesdropping {
            // The hub's plaintext announcement told the jammer exactly
            // where the victim will be; decoys cannot fool a
            // frame-decoding adversary.
            let block = sense.victim_channel / self.jam_width;
            let action = JamAction {
                block: ChannelBlock::of_block_index(block, self.jam_width),
                power: pick_power(&self.powers, self.mode, rng),
                locked: true,
            };
            // Keep the bookkeeping consistent (hit counters).
            self.shots += 1;
            self.hits += 1;
            action
        } else {
            let aimed = self.aim(rng);
            self.sense_with_decoy(sense.victim_channel, sense.decoy, &aimed);
            aimed
        }
    }

    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(self.clone())
    }

    fn probe(&self) -> AdversaryProbe {
        AdversaryProbe {
            shots: self.shots,
            hits: self.hits,
            idle_slots: 0,
            energy: None,
        }
    }
}

/// A competition environment driven by the adaptive jammer.
#[derive(Debug, Clone)]
pub struct AdaptiveEnv {
    params: EnvParams,
    jammer: AdaptiveJammer,
    current_channel: usize,
}

impl AdaptiveEnv {
    /// Creates the environment with the chosen predictor.
    pub fn new<R: Rng + ?Sized>(params: EnvParams, kind: PredictorKind, rng: &mut R) -> Self {
        let jammer = AdaptiveJammer::new(&params, kind, rng);
        let current_channel = rng.gen_range(0..params.num_channels());
        AdaptiveEnv {
            params,
            jammer,
            current_channel,
        }
    }

    /// Creates the environment with an *eavesdropping* jammer.
    ///
    /// §IV.A.2 has the hub announce next-slot FH/PC info to peripherals
    /// in advance, noting it "can be encrypted to prevent eavesdropping".
    /// This constructor quantifies why: when `announcements_encrypted` is
    /// `false`, the jammer decodes the polling frames and jams the exact
    /// announced channel — no prediction needed; when `true`, the sealed
    /// payload ([`ctjam_net::crypto`]) is opaque and the jammer falls
    /// back to the `kind` predictor.
    pub fn with_eavesdropping<R: Rng + ?Sized>(
        params: EnvParams,
        kind: PredictorKind,
        announcements_encrypted: bool,
        rng: &mut R,
    ) -> Self {
        let mut env = AdaptiveEnv::new(params, kind, rng);
        env.jammer.set_eavesdropping(!announcements_encrypted);
        env
    }

    /// The jammer (e.g. to read its hit rate after a run).
    pub fn jammer(&self) -> &AdaptiveJammer {
        &self.jammer
    }

    /// Advances one slot with the defender's decision plus an optional
    /// decoy transmission (the decoy pollutes the predictor's sensed
    /// history and costs `l_decoy`).
    ///
    /// # Panics
    ///
    /// Panics if the decision or decoy indexes out of range.
    pub fn step_with_decoy(
        &mut self,
        decision: Decision,
        decoy: Option<usize>,
        rng: &mut dyn rand::RngCore,
    ) -> SlotResult {
        assert!(
            decision.channel < self.params.num_channels(),
            "channel {} out of range",
            decision.channel
        );
        assert!(
            decision.power_level < self.params.num_powers(),
            "power level {} out of range",
            decision.power_level
        );
        if let Some(decoy) = decoy {
            assert!(
                decoy < self.params.num_channels(),
                "decoy channel {decoy} out of range"
            );
        }
        let hopped = decision.channel != self.current_channel;
        self.current_channel = decision.channel;
        let tx_power = self.params.tx_powers[decision.power_level];

        let sense = SlotSense {
            victim_channel: decision.channel,
            victim_power: tx_power,
            decoy,
        };
        let action = Adversary::jam(&mut self.jammer, &sense, rng);
        let outcome = if action.covers(decision.channel) {
            if tx_power >= action.power {
                Outcome::JammedSurvived
            } else {
                Outcome::Jammed
            }
        } else {
            Outcome::Clean
        };

        let mut reward = -tx_power;
        if outcome == Outcome::Jammed {
            reward -= self.params.l_j;
        }
        if hopped {
            reward -= self.params.l_h;
        }
        if decoy.is_some() {
            reward -= self.params.l_decoy;
        }
        SlotResult {
            decision,
            outcome,
            hopped,
            power_control: decision.power_level > self.params.min_power_level(),
            reward,
            jam_action: action,
        }
    }
}

impl Environment for AdaptiveEnv {
    fn params(&self) -> &EnvParams {
        &self.params
    }

    fn current_channel(&self) -> usize {
        self.current_channel
    }

    fn step(&mut self, decision: Decision, rng: &mut dyn rand::RngCore) -> SlotResult {
        AdaptiveEnv::step_with_decoy(self, decision, None, rng)
    }

    fn step_with_decoy(
        &mut self,
        decision: Decision,
        decoy: Option<usize>,
        rng: &mut dyn rand::RngCore,
    ) -> SlotResult {
        AdaptiveEnv::step_with_decoy(self, decision, decoy, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defender::{Defender, RandomFh};
    use crate::runner::RunBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn run_pattern(kind: PredictorKind, pattern: &[usize], slots: usize, seed: u64) -> f64 {
        // A deterministic victim cycling through the given channels.
        let params = EnvParams::default();
        let mut r = rng(seed);
        let mut env = AdaptiveEnv::new(params, kind, &mut r);
        for t in 0..slots {
            let d = Decision {
                channel: pattern[t % pattern.len()],
                power_level: 0,
            };
            env.step(d, &mut r);
        }
        env.jammer().hit_rate()
    }

    #[test]
    fn all_predictors_nail_a_static_victim() {
        for kind in [
            PredictorKind::LastBlock,
            PredictorKind::Markov,
            PredictorKind::Rnn,
        ] {
            let hit = run_pattern(kind, &[5], 300, 1);
            assert!(hit > 0.9, "{kind:?} hit rate {hit} on a static victim");
        }
    }

    #[test]
    fn markov_learns_an_alternating_victim() {
        // Channels 1 and 9 live in blocks 0 and 2: a last-block jammer is
        // always one step behind (0% hits); Markov learns the alternation.
        let last = run_pattern(PredictorKind::LastBlock, &[1, 9], 400, 2);
        let markov = run_pattern(PredictorKind::Markov, &[1, 9], 400, 2);
        assert!(last < 0.1, "last-block should always miss: {last}");
        assert!(markov > 0.8, "markov should learn the cycle: {markov}");
    }

    #[test]
    fn rnn_learns_a_pattern_markov_cannot() {
        // Period-4 pattern 0,0,8,12 (blocks 0,0,2,3): from block 0 the
        // next block is 0 half the time and 2 half the time — a
        // first-order model peaks at 75%; the RNN can disambiguate by
        // remembering one more step.
        let pattern = [0usize, 0, 8, 12];
        let markov = run_pattern(PredictorKind::Markov, &pattern, 1_200, 3);
        let rnn = run_pattern(PredictorKind::Rnn, &pattern, 1_200, 3);
        assert!(markov <= 0.85, "markov unexpectedly high: {markov}");
        assert!(
            rnn > markov + 0.05,
            "rnn ({rnn}) should beat markov ({markov}) on a 2nd-order pattern"
        );
    }

    /// A victim hopping to a uniformly random channel every slot — the
    /// information-theoretic worst case for any predictor.
    struct UniformHopper {
        num_channels: usize,
    }

    impl Defender for UniformHopper {
        fn name(&self) -> &str {
            "uniform hopper"
        }
        fn decide(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
            use rand::Rng as _;
            Decision {
                channel: rng.gen_range(0..self.num_channels),
                power_level: 0,
            }
        }
        fn feedback(&mut self, _result: &SlotResult, _rng: &mut dyn rand::RngCore) {}
    }

    #[test]
    fn uniform_hopping_bounds_any_predictor_at_chance() {
        // 4 blocks → chance = 25%. No predictor can beat a uniformly
        // random victim by a meaningful margin.
        let params = EnvParams::default();
        for kind in [PredictorKind::Markov, PredictorKind::Rnn] {
            let mut r = rng(4);
            let mut env = AdaptiveEnv::new(params.clone(), kind, &mut r);
            let mut defender = UniformHopper { num_channels: 16 };
            let _ = RunBuilder::new(&params).run_in(&mut env, &mut defender, 1_500, &mut r);
            let hit = env.jammer().hit_rate();
            assert!(
                (hit - 0.25).abs() < 0.08,
                "{kind:?} should sit at chance vs a uniform victim: {hit}"
            );
        }
    }

    #[test]
    fn rand_fh_is_half_predictable() {
        // The paper's Rand FH baseline stays put whenever it picks the PC
        // arm (half the slots), so even a Markov predictor lands well
        // above chance against it — randomized *hopping* is not the same
        // as a randomized *strategy*.
        let params = EnvParams::default();
        let mut r = rng(4);
        let mut env = AdaptiveEnv::new(params.clone(), PredictorKind::Markov, &mut r);
        let mut defender = RandomFh::new(&params, &mut r);
        let _ = RunBuilder::new(&params).run_in(&mut env, &mut defender, 1_500, &mut r);
        let hit = env.jammer().hit_rate();
        assert!(
            hit > 0.4,
            "Rand FH's stay-arm should make it predictable: {hit}"
        );
    }

    #[test]
    fn plaintext_announcements_are_fatal_and_encryption_restores_the_fight() {
        // §IV.A.2's "can be encrypted to prevent eavesdropping",
        // quantified: the same uniformly hopping victim faces an
        // announcement-reading jammer with and without encryption.
        let params = EnvParams::default();

        let mut r = rng(6);
        let mut plaintext =
            AdaptiveEnv::with_eavesdropping(params.clone(), PredictorKind::Markov, false, &mut r);
        let mut victim = UniformHopper { num_channels: 16 };
        let report = RunBuilder::new(&params).run_in(&mut plaintext, &mut victim, 800, &mut r);
        assert!(
            report.metrics.success_rate() < 0.05,
            "plaintext announcements should be fatal: ST {}",
            report.metrics.success_rate()
        );
        assert!(plaintext.jammer().hit_rate() > 0.99);

        let mut r = rng(6);
        let mut encrypted =
            AdaptiveEnv::with_eavesdropping(params.clone(), PredictorKind::Markov, true, &mut r);
        let mut victim = UniformHopper { num_channels: 16 };
        let report = RunBuilder::new(&params).run_in(&mut encrypted, &mut victim, 800, &mut r);
        assert!(
            report.metrics.success_rate() > 0.6,
            "encryption should restore ~chance-level jamming: ST {}",
            report.metrics.success_rate()
        );
    }

    #[test]
    fn adaptive_env_respects_eq5_rewards() {
        let params = EnvParams::default();
        let mut r = rng(5);
        let mut env = AdaptiveEnv::new(params.clone(), PredictorKind::Markov, &mut r);
        let d = Decision {
            channel: env.current_channel(),
            power_level: 0,
        };
        let result = env.step(d, &mut r);
        let base = -params.tx_powers[0];
        assert!(result.reward == base || result.reward == base - params.l_j);
    }
}
