//! Anti-jamming strategies.
//!
//! * [`DqnDefender`] — the paper's scheme: a DQN over `(channel, power)`
//!   actions fed the `3×I` observable history.
//! * [`PassiveFh`] — "PSV FH": react only after being jammed.
//! * [`RandomFh`] — "Rand FH": pick FH or PC at random every slot.
//! * [`NoDefense`] — fixed channel and power (the unprotected floor).
//! * [`MdpOracle`] — the exact MDP optimum with privileged state access:
//!   an upper reference the online schemes cannot see (§III.C explains
//!   why the true state is unobservable in practice).

use crate::env::{Decision, EnvParams, Outcome, SlotResult};
use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::checkpoint::{self, CheckpointError};
use ctjam_dqn::config::DqnConfig;
use ctjam_dqn::encode::{ObservationEncoder, SlotOutcome, SlotRecord};
use ctjam_fault::FaultPoint;
use ctjam_mdp::antijam::{Action as MdpAction, AntijamMdp, State as MdpState};
use ctjam_mdp::solve::value_iteration::value_iteration;
use rand::{Rng, RngCore};
use std::path::Path;

/// Telemetry snapshot of a defender's learner state, taken after
/// `feedback`. Learning-free strategies report all-`None`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AgentProbe {
    /// Current exploration rate.
    pub epsilon: Option<f64>,
    /// Loss of the most recent gradient step, if any ran yet.
    pub last_loss: Option<f64>,
    /// Gradient updates performed so far.
    pub train_steps: Option<usize>,
    /// Transitions currently in the replay buffer.
    pub replay_len: Option<usize>,
    /// Replay buffer capacity.
    pub replay_capacity: Option<usize>,
    /// Gradient steps skipped by the non-finite-gradient guard (only
    /// ever advances on the fault-injected training path).
    pub skipped_train_steps: Option<usize>,
}

/// A per-slot decision maker.
///
/// Implementations are driven by [`crate::runner::RunBuilder`]: `decide`
/// at the start of each slot, then optionally `decoy`, then `feedback`
/// with the resolved result at the end.
pub trait Defender {
    /// Human-readable scheme name (used in reports).
    fn name(&self) -> &str;

    /// Chooses the next slot's channel and power level.
    fn decide(&mut self, rng: &mut dyn RngCore) -> Decision;

    /// Optionally emits a decoy (bait) transmission for this slot: a
    /// fake-traffic channel broadcast alongside the real one to draw
    /// sensing jammers away, at the environment's `l_decoy` reward cost.
    /// Called by the runner right after [`Defender::decide`]. The
    /// default — no decoy, no RNG draws — keeps decoy-free defenders
    /// bit-exact with their pre-0.3.0 runs.
    fn decoy(&mut self, rng: &mut dyn RngCore) -> Option<usize> {
        let _ = rng;
        None
    }

    /// Receives the resolved slot (for learning and state tracking).
    fn feedback(&mut self, result: &SlotResult, rng: &mut dyn RngCore);

    /// [`Defender::feedback`] with a fault-injection plan threaded
    /// through (chaos testing — `tests/chaos.rs`). The default ignores
    /// the plan; learning defenders override it to route the plan into
    /// their training path's fault sites. Implementations must behave
    /// exactly like `feedback` — same RNG draws included — whenever the
    /// plan is disabled ([`FaultPoint::is_enabled`] is `false`).
    fn feedback_with_fault(
        &mut self,
        result: &SlotResult,
        rng: &mut dyn RngCore,
        fault: &mut dyn FaultPoint,
    ) {
        let _ = fault;
        self.feedback(result, rng);
    }

    /// Telemetry probe of the learner, read by the runner after each
    /// `feedback` when a sink is attached.
    fn probe(&self) -> AgentProbe {
        AgentProbe::default()
    }
}

// ---------------------------------------------------------------------------
// DQN defender
// ---------------------------------------------------------------------------

/// The paper's DQN-based hybrid FH/PC defense.
///
/// The network is exactly the paper's shape — `3×I` inputs, two ReLU
/// hidden layers, `C×PL` outputs — but channels are indexed
/// *egocentrically*: output channel `c` means "hop `c` channels up
/// (mod C)", so `c = 0` is "stay". The observation's channel feature is
/// likewise the relative hop taken in that slot. This re-parameterization
/// changes no dimension of the architecture while making the stay/hop
/// structure learnable at IoT-scale training budgets: "stay" is one fixed
/// output neuron instead of a per-slot moving target.
#[derive(Debug, Clone)]
pub struct DqnDefender {
    agent: DqnAgent,
    encoder: ObservationEncoder,
    training: bool,
    pending: Option<(Vec<f64>, usize)>,
    current_channel: usize,
    /// Relative hop distance of the pending decision (for the encoder).
    pending_delta: usize,
    /// Boltzmann temperature for deployment-time action sampling
    /// (`None` = the paper's ε-greedy policy).
    temperature: Option<f64>,
    /// Reusable observation buffer for the evaluation-mode hot path
    /// (training mode hands owned vectors to the replay buffer, so the
    /// scratch only cycles when no transition needs to be kept).
    obs_scratch: Vec<f64>,
}

impl DqnDefender {
    /// Creates a defender whose action space matches `params`.
    ///
    /// # Panics
    ///
    /// Panics if `config` disagrees with `params` on channel or power
    /// counts.
    pub fn new<R: Rng + ?Sized>(params: &EnvParams, config: DqnConfig, rng: &mut R) -> Self {
        assert_eq!(
            config.num_channels,
            params.num_channels(),
            "config/env channel count mismatch"
        );
        assert_eq!(
            config.num_power_levels,
            params.num_powers(),
            "config/env power count mismatch"
        );
        let encoder = ObservationEncoder::new(
            config.history_len,
            config.num_channels,
            config.num_power_levels,
        );
        let current_channel = rng.gen_range(0..params.num_channels());
        DqnDefender {
            agent: DqnAgent::new(config, rng),
            encoder,
            training: true,
            pending: None,
            current_channel,
            pending_delta: 0,
            temperature: None,
            obs_scratch: Vec::new(),
        }
    }

    /// A defender with the paper's default architecture for `params`.
    pub fn paper_default<R: Rng + ?Sized>(params: &EnvParams, rng: &mut R) -> Self {
        let config = DqnConfig {
            num_channels: params.num_channels(),
            num_power_levels: params.num_powers(),
            ..DqnConfig::default()
        };
        DqnDefender::new(params, config, rng)
    }

    /// A deliberately small configuration for fast unit tests.
    pub fn small_for_tests<R: Rng + ?Sized>(params: &EnvParams, rng: &mut R) -> Self {
        let config = DqnConfig {
            history_len: 4,
            num_channels: params.num_channels(),
            num_power_levels: params.num_powers(),
            hidden: (24, 20),
            learning_rate: 2e-3,
            replay_capacity: 20_000,
            batch_size: 16,
            target_sync_interval: 100,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay_steps: 1_500,
            train_interval: 2,
            warmup: 64,
            gamma: 0.9,
            double_dqn: false,
        };
        DqnDefender::new(params, config, rng)
    }

    /// Enables or disables learning (ε also drops to its floor when
    /// evaluation-only).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the defender is currently learning.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// The underlying agent (weights, statistics).
    pub fn agent(&self) -> &DqnAgent {
        &self.agent
    }

    /// Mutable access to the underlying agent (e.g. to load weights).
    pub fn agent_mut(&mut self) -> &mut DqnAgent {
        &mut self.agent
    }

    /// The channel the defender currently sits on.
    pub fn current_channel(&self) -> usize {
        self.current_channel
    }

    /// Switches deployment-time action selection to Boltzmann sampling
    /// with the given temperature (`None` restores ε-greedy).
    ///
    /// Randomizing the policy is the hardening against DeepJam-class
    /// traffic predictors: ε-greedy's dominant arm is deterministic and
    /// learnable, softmax spreads over all near-optimal hops.
    ///
    /// # Panics
    ///
    /// Panics if the temperature is not strictly positive.
    pub fn set_temperature(&mut self, temperature: Option<f64>) {
        if let Some(t) = temperature {
            assert!(t > 0.0, "softmax temperature must be positive");
        }
        self.temperature = temperature;
    }

    /// Serializes the complete defender — agent training state,
    /// observation window, pending transition, channel bookkeeping and
    /// policy mode — into the sealed checkpoint container and writes it
    /// atomically to `path` (tempfile + rename; see
    /// [`ctjam_dqn::checkpoint`]).
    ///
    /// A run resumed from the resulting file continues bit-exactly: the
    /// checkpoint captures everything except the RNG, which the caller
    /// owns (the determinism contract — `tests/determinism.rs`).
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut payload = Vec::new();
        checkpoint::encode_agent(&self.agent, &mut payload);
        let records: Vec<&SlotRecord> = self.encoder.records().collect();
        payload.extend_from_slice(&(records.len() as u64).to_le_bytes());
        for rec in records {
            let outcome: u64 = match rec.outcome {
                SlotOutcome::Success => 0,
                SlotOutcome::SuccessUnderJamming => 1,
                SlotOutcome::Failure => 2,
            };
            payload.extend_from_slice(&outcome.to_le_bytes());
            payload.extend_from_slice(&(rec.channel as u64).to_le_bytes());
            payload.extend_from_slice(&(rec.power_level as u64).to_le_bytes());
        }
        payload.push(self.training as u8);
        match &self.pending {
            None => payload.push(0),
            Some((state, action)) => {
                payload.push(1);
                checkpoint::put_f64_vec(&mut payload, state);
                payload.extend_from_slice(&(*action as u64).to_le_bytes());
            }
        }
        payload.extend_from_slice(&(self.current_channel as u64).to_le_bytes());
        payload.extend_from_slice(&(self.pending_delta as u64).to_le_bytes());
        match self.temperature {
            None => payload.push(0),
            Some(t) => {
                payload.push(1);
                payload.extend_from_slice(&t.to_bits().to_le_bytes());
            }
        }
        checkpoint::write_checkpoint(path, &payload)
    }

    /// Restores a defender from a [`DqnDefender::save_checkpoint`] file.
    ///
    /// Every failure mode is a typed [`CheckpointError`] — truncation,
    /// bit corruption (checksum), version or shape mismatch — never a
    /// panic.
    pub fn load_checkpoint(path: &Path) -> Result<Self, CheckpointError> {
        let payload = checkpoint::read_checkpoint(path)?;
        let mut cursor = &payload[..];
        let agent = checkpoint::decode_agent(&mut cursor)?;
        let config = agent.config().clone();
        let mut encoder = ObservationEncoder::new(
            config.history_len,
            config.num_channels,
            config.num_power_levels,
        );
        let record_count = checkpoint::take_usize(&mut cursor)?;
        if record_count > config.history_len {
            return Err(CheckpointError::Malformed);
        }
        for _ in 0..record_count {
            let outcome = match checkpoint::take_u64(&mut cursor)? {
                0 => SlotOutcome::Success,
                1 => SlotOutcome::SuccessUnderJamming,
                2 => SlotOutcome::Failure,
                _ => return Err(CheckpointError::Malformed),
            };
            let channel = checkpoint::take_usize(&mut cursor)?;
            let power_level = checkpoint::take_usize(&mut cursor)?;
            if channel >= config.num_channels || power_level >= config.num_power_levels {
                return Err(CheckpointError::Malformed);
            }
            encoder.push(SlotRecord {
                outcome,
                channel,
                power_level,
            });
        }
        let training = checkpoint::take_bool(&mut cursor)?;
        let pending = if checkpoint::take_bool(&mut cursor)? {
            let state = checkpoint::take_f64_vec(&mut cursor)?;
            let action = checkpoint::take_usize(&mut cursor)?;
            if state.len() != config.input_size() || action >= config.num_actions() {
                return Err(CheckpointError::Malformed);
            }
            Some((state, action))
        } else {
            None
        };
        let current_channel = checkpoint::take_usize(&mut cursor)?;
        let pending_delta = checkpoint::take_usize(&mut cursor)?;
        if current_channel >= config.num_channels || pending_delta >= config.num_channels {
            return Err(CheckpointError::Malformed);
        }
        let temperature = if checkpoint::take_bool(&mut cursor)? {
            let t = checkpoint::take_f64(&mut cursor)?;
            if !(t.is_finite() && t > 0.0) {
                return Err(CheckpointError::Malformed);
            }
            Some(t)
        } else {
            None
        };
        if !cursor.is_empty() {
            return Err(CheckpointError::Malformed);
        }
        Ok(DqnDefender {
            agent,
            encoder,
            training,
            pending,
            current_channel,
            pending_delta,
            temperature,
            obs_scratch: Vec::new(),
        })
    }

    fn outcome_to_record(&self, result: &SlotResult) -> SlotRecord {
        let outcome = match result.outcome {
            Outcome::Clean => SlotOutcome::Success,
            Outcome::JammedSurvived => SlotOutcome::SuccessUnderJamming,
            Outcome::Jammed => SlotOutcome::Failure,
        };
        SlotRecord {
            outcome,
            // Egocentric channel feature: the relative hop taken.
            channel: self.pending_delta,
            power_level: result.decision.power_level,
        }
    }
}

impl Defender for DqnDefender {
    fn name(&self) -> &str {
        "RL FH (DQN)"
    }

    fn decide(&mut self, rng: &mut dyn RngCore) -> Decision {
        let mut observation = std::mem::take(&mut self.obs_scratch);
        self.encoder.encode_into(&mut observation);
        // §III.C: the deployed policy is ε-greedy — the best action with
        // probability 1 − ε, any other uniformly — also during
        // evaluation (ε sits at its floor once training has decayed it).
        // With a temperature set, deployment uses Boltzmann sampling
        // instead (anti-predictor hardening). The `_scratch` variants
        // are bit-exact with the plain ones, including RNG draw order.
        let action = match (self.training, self.temperature) {
            (false, Some(t)) => self.agent.act_softmax_scratch(&observation, t, rng),
            _ => self.agent.act_scratch(&observation, rng),
        };
        if self.training {
            // The transition must outlive this slot (the replay buffer
            // takes ownership in `feedback`), so hand the vector over.
            self.pending = Some((observation, action));
        } else {
            // Evaluation: nothing consumes the observation, so recycle
            // the buffer — the eval loop stays allocation-free.
            self.pending = None;
            self.obs_scratch = observation;
        }
        let (delta, power_level) = self.agent.config().decode_action(action);
        self.pending_delta = delta;
        let channel = (self.current_channel + delta) % self.agent.config().num_channels;
        Decision {
            channel,
            power_level,
        }
    }

    fn feedback(&mut self, result: &SlotResult, rng: &mut dyn RngCore) {
        self.encoder.push(self.outcome_to_record(result));
        self.current_channel = result.decision.channel;
        if let Some((state, action)) = self.pending.take() {
            if self.training {
                let next_state = self.encoder.encode();
                self.agent
                    .observe(state, action, result.reward, next_state, rng);
            }
        }
    }

    fn feedback_with_fault(
        &mut self,
        result: &SlotResult,
        rng: &mut dyn RngCore,
        fault: &mut dyn FaultPoint,
    ) {
        self.encoder.push(self.outcome_to_record(result));
        self.current_channel = result.decision.channel;
        if let Some((state, action)) = self.pending.take() {
            if self.training {
                let next_state = self.encoder.encode();
                self.agent
                    .observe_with_fault(state, action, result.reward, next_state, rng, fault);
            }
        }
    }

    fn probe(&self) -> AgentProbe {
        AgentProbe {
            epsilon: Some(self.agent.epsilon()),
            last_loss: self.agent.last_loss(),
            train_steps: Some(self.agent.train_steps()),
            replay_len: Some(self.agent.replay_len()),
            replay_capacity: Some(self.agent.replay_capacity()),
            skipped_train_steps: Some(self.agent.skipped_train_steps()),
        }
    }
}

// ---------------------------------------------------------------------------
// Passive FH ("PSV FH")
// ---------------------------------------------------------------------------

/// Reacts only after damage: hops to a random channel once the error
/// rate has confirmed jamming, otherwise keeps everything unchanged at
/// minimum power.
///
/// Because EmuBee is stealthy (§II.B), a passive victim cannot *see* a
/// jammer — it can only watch its error rate, and the paper's attack
/// model (§II.C.2) has it hop "once the error rate exceeds a certain
/// threshold". That thresholding costs `detection_slots` consecutive
/// jammed slots before the hop fires, which is exactly why passive FH
/// trails the proactive schemes in Fig. 11(a).
#[derive(Debug, Clone)]
pub struct PassiveFh {
    num_channels: usize,
    channel: usize,
    consecutive_jams: usize,
    detection_slots: usize,
}

impl PassiveFh {
    /// Creates the baseline with the default 2-slot detection threshold.
    pub fn new<R: Rng + ?Sized>(params: &EnvParams, rng: &mut R) -> Self {
        PassiveFh::with_detection_slots(params, 2, rng)
    }

    /// Creates the baseline with an explicit detection threshold
    /// (`1` = hop immediately after any jammed slot).
    ///
    /// # Panics
    ///
    /// Panics if `detection_slots == 0`.
    pub fn with_detection_slots<R: Rng + ?Sized>(
        params: &EnvParams,
        detection_slots: usize,
        rng: &mut R,
    ) -> Self {
        assert!(detection_slots > 0, "detection threshold must be positive");
        PassiveFh {
            num_channels: params.num_channels(),
            channel: rng.gen_range(0..params.num_channels()),
            consecutive_jams: 0,
            detection_slots,
        }
    }
}

impl Defender for PassiveFh {
    fn name(&self) -> &str {
        "PSV FH"
    }

    fn decide(&mut self, rng: &mut dyn RngCore) -> Decision {
        if self.consecutive_jams >= self.detection_slots {
            let mut next = rng.gen_range(0..self.num_channels - 1);
            if next >= self.channel {
                next += 1;
            }
            self.channel = next;
            self.consecutive_jams = 0;
        }
        Decision {
            channel: self.channel,
            power_level: 0,
        }
    }

    fn feedback(&mut self, result: &SlotResult, _rng: &mut dyn RngCore) {
        if result.outcome == Outcome::Jammed {
            self.consecutive_jams += 1;
        } else {
            self.consecutive_jams = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// Random FH ("Rand FH")
// ---------------------------------------------------------------------------

/// Randomly selects FH or PC at the beginning of each time slot
/// (paper §IV.D.3): FH hops to a random channel at minimum power, PC
/// stays and picks a random power level.
#[derive(Debug, Clone)]
pub struct RandomFh {
    num_channels: usize,
    num_powers: usize,
    channel: usize,
}

impl RandomFh {
    /// Creates the baseline on a random starting channel.
    pub fn new<R: Rng + ?Sized>(params: &EnvParams, rng: &mut R) -> Self {
        RandomFh {
            num_channels: params.num_channels(),
            num_powers: params.num_powers(),
            channel: rng.gen_range(0..params.num_channels()),
        }
    }
}

impl Defender for RandomFh {
    fn name(&self) -> &str {
        "Rand FH"
    }

    fn decide(&mut self, rng: &mut dyn RngCore) -> Decision {
        if rng.gen_bool(0.5) {
            // FH: hop somewhere new, minimum power.
            let mut next = rng.gen_range(0..self.num_channels - 1);
            if next >= self.channel {
                next += 1;
            }
            self.channel = next;
            Decision {
                channel: self.channel,
                power_level: 0,
            }
        } else {
            // PC: stay, random power level.
            Decision {
                channel: self.channel,
                power_level: rng.gen_range(0..self.num_powers),
            }
        }
    }

    fn feedback(&mut self, _result: &SlotResult, _rng: &mut dyn RngCore) {}
}

// ---------------------------------------------------------------------------
// Decoy wrapper
// ---------------------------------------------------------------------------

/// Wraps any defender with probabilistic decoy (bait) transmissions:
/// each slot, with probability `rate`, a fake transmission is emitted on
/// a random channel other than the real one. Sensing jammers (reactive,
/// pursuit, sweep) chase the louder decoy; the eavesdropping adaptive
/// jammer is immune. Each decoy costs the environment's `l_decoy` on the
/// Eq. (5) reward.
#[derive(Debug, Clone)]
pub struct WithDecoys<D> {
    inner: D,
    rate: f64,
    num_channels: usize,
    last_channel: usize,
    name: String,
}

impl<D: Defender> WithDecoys<D> {
    /// Wraps `inner`, emitting a decoy with probability `rate` per slot.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]` or fewer than two channels
    /// exist (a decoy needs a channel distinct from the real one).
    pub fn new(inner: D, rate: f64, params: &EnvParams) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate) && rate.is_finite(),
            "decoy rate must be a probability"
        );
        assert!(
            params.num_channels() >= 2,
            "decoys need a second channel to bait on"
        );
        let name = format!("{} + decoys", inner.name());
        WithDecoys {
            inner,
            rate,
            num_channels: params.num_channels(),
            last_channel: 0,
            name,
        }
    }

    /// The wrapped defender.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: Defender> Defender for WithDecoys<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&mut self, rng: &mut dyn RngCore) -> Decision {
        let decision = self.inner.decide(rng);
        self.last_channel = decision.channel;
        decision
    }

    fn decoy(&mut self, rng: &mut dyn RngCore) -> Option<usize> {
        if !rng.gen_bool(self.rate) {
            return None;
        }
        // Bait on any channel except the one actually in use.
        let mut channel = rng.gen_range(0..self.num_channels - 1);
        if channel >= self.last_channel {
            channel += 1;
        }
        Some(channel)
    }

    fn feedback(&mut self, result: &SlotResult, rng: &mut dyn RngCore) {
        self.inner.feedback(result, rng);
    }

    fn feedback_with_fault(
        &mut self,
        result: &SlotResult,
        rng: &mut dyn RngCore,
        fault: &mut dyn FaultPoint,
    ) {
        self.inner.feedback_with_fault(result, rng, fault);
    }

    fn probe(&self) -> AgentProbe {
        self.inner.probe()
    }
}

// ---------------------------------------------------------------------------
// No defense
// ---------------------------------------------------------------------------

/// Fixed channel and fixed power — the unprotected floor (and, with a
/// raised power level, the "power-control-only" ablation arm).
#[derive(Debug, Clone)]
pub struct NoDefense {
    channel: usize,
    power_level: usize,
}

impl NoDefense {
    /// Creates the floor strategy on a random channel at minimum power.
    pub fn new<R: Rng + ?Sized>(params: &EnvParams, rng: &mut R) -> Self {
        NoDefense::with_power(params, 0, rng)
    }

    /// Creates a static strategy pinned to a specific power level
    /// (e.g. the maximum, for a PC-only ablation).
    ///
    /// # Panics
    ///
    /// Panics if `power_level` is out of range.
    pub fn with_power<R: Rng + ?Sized>(
        params: &EnvParams,
        power_level: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            power_level < params.num_powers(),
            "power level out of range"
        );
        NoDefense {
            channel: rng.gen_range(0..params.num_channels()),
            power_level,
        }
    }
}

impl Defender for NoDefense {
    fn name(&self) -> &str {
        "No defense"
    }

    fn decide(&mut self, _rng: &mut dyn RngCore) -> Decision {
        Decision {
            channel: self.channel,
            power_level: self.power_level,
        }
    }

    fn feedback(&mut self, _result: &SlotResult, _rng: &mut dyn RngCore) {}
}

// ---------------------------------------------------------------------------
// MDP oracle
// ---------------------------------------------------------------------------

/// Plays the exact optimal policy of the paper's MDP using privileged
/// access to the true state — the idealized upper reference of §III.B
/// that motivates the DQN (a real Tx cannot observe its state).
#[derive(Debug, Clone)]
pub struct MdpOracle {
    mdp: AntijamMdp,
    policy: Vec<usize>,
    state: MdpState,
    num_channels: usize,
    block_width: usize,
    channel: usize,
    last_was_hop: bool,
}

impl MdpOracle {
    /// Solves the MDP matching `params` and prepares the policy.
    pub fn new<R: Rng + ?Sized>(params: &EnvParams, rng: &mut R) -> Self {
        let mdp = AntijamMdp::new(crate::kernel::mdp_params_of(params));
        let solution = value_iteration(mdp.tabular(), 0.9, 1e-9, 100_000);
        MdpOracle {
            policy: solution.policy,
            state: MdpState::Safe(1),
            num_channels: params.num_channels(),
            block_width: params.adversary.jam_width,
            channel: rng.gen_range(0..params.num_channels()),
            mdp,
            last_was_hop: false,
        }
    }

    /// The solved MDP (for inspecting the policy).
    pub fn mdp(&self) -> &AntijamMdp {
        &self.mdp
    }
}

impl Defender for MdpOracle {
    fn name(&self) -> &str {
        "MDP oracle"
    }

    fn decide(&mut self, rng: &mut dyn RngCore) -> Decision {
        let action_idx = self.policy[self.mdp.state_index(self.state)];
        let MdpAction { hop, power } = self.mdp.action_of(action_idx);
        if hop {
            // Hop to a random channel in a *different* jammer block —
            // a hop inside the same 4-channel block would not escape a
            // wideband jammer (the MDP's Eq. 9 presumes block-level
            // hopping).
            let width = self.block_width;
            let blocks = self.num_channels / width;
            let current_block = self.channel / width;
            let mut block = rng.gen_range(0..blocks - 1);
            if block >= current_block {
                block += 1;
            }
            self.channel = block * width + rng.gen_range(0..width);
        }
        self.last_was_hop = hop;
        Decision {
            channel: self.channel,
            power_level: power,
        }
    }

    fn feedback(&mut self, result: &SlotResult, _rng: &mut dyn RngCore) {
        // Privileged state update: the oracle *knows* the MDP state.
        // A clean slot after a hop restarts the survival counter at 1
        // (the hop moved to a fresh channel — Eqs. 9/14); a clean slot
        // after staying extends it (Eq. 6).
        self.state = match result.outcome {
            Outcome::Jammed => MdpState::Jammed,
            Outcome::JammedSurvived => MdpState::JammedUnsuccessfully,
            Outcome::Clean => match (self.last_was_hop, self.state) {
                (false, MdpState::Safe(n)) => {
                    MdpState::Safe((n + 1).min(self.mdp.num_safe_states()))
                }
                _ => MdpState::Safe(1),
            },
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::CompetitionEnv;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn run_slots<D: Defender>(
        defender: &mut D,
        slots: usize,
        seed: u64,
    ) -> crate::metrics::Metrics {
        let mut r = rng(seed);
        let mut env = CompetitionEnv::new(EnvParams::default(), &mut r);
        let mut metrics = crate::metrics::Metrics::new();
        for _ in 0..slots {
            let decision = defender.decide(&mut r);
            let result = env.step(decision, &mut r);
            defender.feedback(&result, &mut r);
            metrics.record(&result);
        }
        metrics
    }

    #[test]
    fn passive_fh_hops_only_after_jamming() {
        let mut r = rng(1);
        let params = EnvParams::default();
        let mut psv = PassiveFh::with_detection_slots(&params, 1, &mut r);
        let d1 = psv.decide(&mut r);
        // Clean feedback → no hop.
        let mut env = CompetitionEnv::new(params.clone(), &mut r);
        let result = env.step(d1, &mut r);
        let clean = SlotResult {
            outcome: Outcome::Clean,
            ..result
        };
        psv.feedback(&clean, &mut r);
        assert_eq!(psv.decide(&mut r).channel, d1.channel);
        // Jammed feedback → hop.
        let jammed = SlotResult {
            outcome: Outcome::Jammed,
            ..result
        };
        psv.feedback(&jammed, &mut r);
        assert_ne!(psv.decide(&mut r).channel, d1.channel);
    }

    #[test]
    fn passive_fh_detection_threshold_delays_the_hop() {
        let mut r = rng(11);
        let params = EnvParams::default();
        let mut psv = PassiveFh::new(&params, &mut r); // threshold 2
        let d1 = psv.decide(&mut r);
        let mut env = CompetitionEnv::new(params.clone(), &mut r);
        let result = env.step(d1, &mut r);
        let jammed = SlotResult {
            outcome: Outcome::Jammed,
            ..result
        };
        // One jammed slot: below the error threshold, stays put.
        psv.feedback(&jammed, &mut r);
        assert_eq!(psv.decide(&mut r).channel, d1.channel);
        // Second consecutive jam: threshold crossed, hops.
        psv.feedback(&jammed, &mut r);
        assert_ne!(psv.decide(&mut r).channel, d1.channel);
        // A clean slot resets the error counter.
        let mut psv2 = PassiveFh::new(&params, &mut r);
        let d2 = psv2.decide(&mut r);
        psv2.feedback(&jammed, &mut r);
        psv2.feedback(
            &SlotResult {
                outcome: Outcome::Clean,
                ..result
            },
            &mut r,
        );
        psv2.feedback(&jammed, &mut r);
        assert_eq!(psv2.decide(&mut r).channel, d2.channel);
    }

    #[test]
    fn random_fh_mixes_fh_and_pc() {
        let mut r = rng(2);
        let params = EnvParams::default();
        let mut rand_fh = RandomFh::new(&params, &mut r);
        let mut hops = 0;
        let mut pcs = 0;
        let mut prev = rand_fh.channel;
        for _ in 0..200 {
            let d = rand_fh.decide(&mut r);
            if d.channel != prev {
                hops += 1;
            }
            if d.power_level > 0 {
                pcs += 1;
            }
            prev = d.channel;
        }
        assert!(hops > 50, "too few hops: {hops}");
        assert!(pcs > 50, "too few PC slots: {pcs}");
    }

    #[test]
    fn no_defense_collapses_under_jamming() {
        let mut r = rng(3);
        let mut floor = NoDefense::new(&EnvParams::default(), &mut r);
        let m = run_slots(&mut floor, 300, 33);
        assert!(
            m.success_rate() < 0.1,
            "static victim should be pinned: {}",
            m.success_rate()
        );
    }

    #[test]
    fn passive_beats_nothing_and_oracle_beats_passive() {
        let mut r = rng(4);
        let params = EnvParams::default();
        let mut psv = PassiveFh::new(&params, &mut r);
        let mut oracle = MdpOracle::new(&params, &mut r);
        let psv_st = run_slots(&mut psv, 4_000, 44).success_rate();
        let oracle_st = run_slots(&mut oracle, 4_000, 44).success_rate();
        assert!(psv_st > 0.2, "passive ST {psv_st}");
        assert!(
            oracle_st > psv_st,
            "oracle {oracle_st} should beat passive {psv_st}"
        );
    }

    #[test]
    fn dqn_defender_produces_valid_decisions_and_learns_something() {
        let mut r = rng(5);
        let params = EnvParams::default();
        let mut dqn = DqnDefender::small_for_tests(&params, &mut r);
        let m = run_slots(&mut dqn, 1_500, 55);
        assert_eq!(m.slots(), 1_500);
        // While exploring, decisions must stay in range (checked by env
        // asserts) and the agent must have trained.
        assert!(dqn.agent().train_steps() > 0);
    }

    #[test]
    fn dqn_training_toggle() {
        let mut r = rng(6);
        let params = EnvParams::default();
        let mut dqn = DqnDefender::small_for_tests(&params, &mut r);
        dqn.set_training(false);
        assert!(!dqn.is_training());
        let steps_before = dqn.agent().steps();
        let _ = run_slots(&mut dqn, 50, 66);
        assert_eq!(
            dqn.agent().steps(),
            steps_before,
            "frozen agent must not learn"
        );
    }

    #[test]
    fn dqn_checkpoint_roundtrip_resumes_bit_exactly() {
        let params = EnvParams::default();
        let mut r = rng(21);
        let mut original = DqnDefender::small_for_tests(&params, &mut r);
        let _ = run_slots(&mut original, 300, 77); // accumulate real state
        let path = std::env::temp_dir().join("ctjam_defender_roundtrip.ckpt");
        original.save_checkpoint(&path).unwrap();
        let mut restored = DqnDefender::load_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.is_training(), original.is_training());
        assert_eq!(restored.current_channel(), original.current_channel());
        assert_eq!(
            restored.agent().train_steps(),
            original.agent().train_steps()
        );
        // Continued under identical seeds, both defenders must walk the
        // exact same trajectory.
        let m1 = run_slots(&mut original, 200, 88);
        let m2 = run_slots(&mut restored, 200, 88);
        assert_eq!(m1, m2, "resumed defender diverged from the original");
    }

    #[test]
    fn corrupted_defender_checkpoint_is_a_typed_error() {
        use ctjam_dqn::checkpoint::CheckpointError;
        let params = EnvParams::default();
        let mut r = rng(22);
        let mut d = DqnDefender::small_for_tests(&params, &mut r);
        let _ = run_slots(&mut d, 50, 99);
        let path = std::env::temp_dir().join("ctjam_defender_corrupt.ckpt");
        d.save_checkpoint(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Bit corruption in the middle of the payload → checksum catches.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            DqnDefender::load_checkpoint(&path),
            Err(CheckpointError::ChecksumMismatch)
        ));
        // Truncation → typed error, never a panic.
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(DqnDefender::load_checkpoint(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oracle_uses_threshold_policy_shape() {
        let mut r = rng(7);
        let oracle = MdpOracle::new(&EnvParams::default(), &mut r);
        let threshold = ctjam_mdp::analysis::threshold_of(oracle.mdp(), &{
            let sol = value_iteration(oracle.mdp().tabular(), 0.9, 1e-9, 100_000);
            sol.q
        });
        assert!(threshold >= 1 && threshold <= oracle.mdp().sweep_cycle());
    }
}
