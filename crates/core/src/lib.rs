//! The CTJam anti-jamming system — the paper's primary contribution,
//! assembled from the suite's substrates.
//!
//! * [`adversary`] — the first-class attacker API: the [`adversary::Adversary`]
//!   trait (one `jam(sense, rng)` per slot), the plain-data
//!   [`adversary::AdversaryConfig`] carried by environments and fleet
//!   campaign specs, and the zoo (sweep, reactive, pursuit,
//!   energy-budgeted, adaptive, learning DQN attacker) plus the
//!   decoy/bait defender hook.
//! * [`jammer`] — the cross-technology sweep jammer: scans `m` consecutive
//!   ZigBee channels per slot in a random-permutation cycle, locks onto a
//!   found victim, and picks its power per mode (max / random).
//! * [`env`](mod@env) — the slot-level Tx↔Jx competition environment: the defender
//!   picks `(channel, power)` each slot, the environment resolves clean /
//!   jammed-but-survived (`TJ`) / jammed (`J`) and pays the Eq. (5) loss.
//! * [`kernel`] — the paper's Matlab-simulation world: an environment
//!   sampling the Eqs. 6–14 transition kernel directly (Figs. 6–8).
//! * [`adaptive`] — a DeepJam-class adaptive jammer (wideband sensing +
//!   LastBlock/Markov/RNN traffic prediction) and its environment — the
//!   extension adversary.
//! * [`defender`] — anti-jamming strategies: the paper's DQN scheme plus
//!   the passive-FH and random-FH baselines of Fig. 11(a), a no-defense
//!   floor, and an MDP-oracle upper reference.
//! * [`metrics`] — Table I: success rate of transmission (ST), adoption
//!   and success rates of frequency hopping (AH, SH) and power control
//!   (AP, SP).
//! * [`runner`] — training and evaluation loops (the 20 000-slot runs of
//!   §IV.A) and parameter-sweep helpers, behind the fluent
//!   [`runner::RunBuilder`] entry point.
//! * [`pool`] — the work-stealing shard pool (atomic injector over
//!   scoped `std::thread`s) that `runner` sweeps and the `ctjam-fleet`
//!   campaign engine schedule onto.
//! * [`field`] — the field-experiment simulator: the slot competition
//!   driving the star network with the paper's timing model
//!   (Figs. 9–11).
//!
//! # Example
//!
//! Train the DQN defense briefly and measure its success rate:
//!
//! ```
//! use ctjam_core::defender::DqnDefender;
//! use ctjam_core::env::{CompetitionEnv, EnvParams};
//! use ctjam_core::runner::RunBuilder;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let params = EnvParams::default();
//! let mut defender = DqnDefender::small_for_tests(&params, &mut rng);
//! RunBuilder::new(&params).train(&mut defender, 3_000, &mut rng);
//! let report = RunBuilder::new(&params).evaluate(&mut defender, 2_000, &mut rng);
//! assert!(report.metrics.success_rate() > 0.4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod adversary;
pub mod defender;
pub mod env;
pub mod field;
pub mod jammer;
pub mod kernel;
pub mod metrics;
pub mod pool;
pub mod runner;
