//! The cross-technology sweep jammer (paper §II.C).
//!
//! A Wi-Fi-based EmuBee jammer covers `m` consecutive ZigBee channels at
//! once (4 for a 20 MHz front end) and needs `⌈K/m⌉` slots to scan all
//! `K` channels. It sweeps the channel blocks in a fresh random order each
//! cycle (a deterministic cycle would be trivially predictable — the
//! paper's Fig. 6(b) notes the degenerate sweep-cycle-2 case), locks onto
//! a victim when its block shows activity, and leaves again once the
//! victim disappears.

use rand::Rng;

pub use crate::adversary::{ChannelBlock, JamAction};

/// Jammer power-selection mode (paper §II.C.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JammerMode {
    /// High-performance mode: always the maximum power level.
    #[default]
    MaxPower,
    /// Hidden mode: a uniformly random power level each slot.
    RandomPower,
}

/// Configuration of the sweep jammer.
#[derive(Debug, Clone, PartialEq)]
pub struct JammerConfig {
    /// Total selectable channels `K` (16 on the 2.4 GHz band).
    pub num_channels: usize,
    /// Channels covered per slot `m` (4 for EmuBee).
    pub jam_width: usize,
    /// Selectable jamming power levels (`L^J` values).
    pub powers: Vec<f64>,
    /// Power-selection mode.
    pub mode: JammerMode,
}

impl Default for JammerConfig {
    fn default() -> Self {
        JammerConfig {
            num_channels: ctjam_phy::zigbee::NUM_CHANNELS,
            jam_width: ctjam_phy::wifi::ZIGBEE_CHANNELS_COVERED,
            powers: (11..=20).map(f64::from).collect(),
            mode: JammerMode::MaxPower,
        }
    }
}

impl JammerConfig {
    /// Number of channel blocks = the sweep cycle `⌈K/m⌉`.
    pub fn sweep_cycle(&self) -> usize {
        self.num_channels.div_ceil(self.jam_width)
    }

    /// Rescales the block count to obtain a target sweep cycle while
    /// keeping `m` fixed (the Fig. 6(b)/7(c,d)/8(c,d) sweep).
    #[must_use]
    pub fn with_sweep_cycle(mut self, cycle: usize) -> Self {
        self.num_channels = cycle * self.jam_width;
        self
    }
}

/// The sweeping jammer's runtime state.
#[derive(Debug, Clone)]
pub struct SweepJammer {
    config: JammerConfig,
    /// Random block order for the current cycle.
    order: Vec<usize>,
    /// Position within `order`.
    cursor: usize,
    /// Block currently locked onto, if a victim was found.
    locked: Option<usize>,
}

impl SweepJammer {
    /// Creates a jammer and shuffles its first sweep cycle.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero channels/width,
    /// no power levels, or `jam_width > num_channels`).
    pub fn new<R: Rng + ?Sized>(config: JammerConfig, rng: &mut R) -> Self {
        assert!(config.num_channels > 0, "need at least one channel");
        assert!(config.jam_width > 0, "jam width must be positive");
        assert!(
            config.jam_width <= config.num_channels,
            "jam width exceeds the channel count"
        );
        assert!(!config.powers.is_empty(), "need at least one power level");
        let blocks = config.sweep_cycle();
        let mut jammer = SweepJammer {
            config,
            order: (0..blocks).collect(),
            cursor: 0,
            locked: None,
        };
        jammer.shuffle_cycle(rng);
        jammer
    }

    /// The configuration.
    pub fn config(&self) -> &JammerConfig {
        &self.config
    }

    /// Whether the jammer is currently locked onto a block.
    pub fn is_locked(&self) -> bool {
        self.locked.is_some()
    }

    fn shuffle_cycle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        // Fisher–Yates.
        for i in (1..self.order.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.order.swap(i, j);
        }
        self.cursor = 0;
    }

    /// The block index containing `channel`.
    pub fn block_of(&self, channel: usize) -> usize {
        channel / self.config.jam_width
    }

    /// Advances one slot: the jammer attacks one block and reports it.
    ///
    /// `victim_channel` is where the victim transmits this slot (the
    /// jammer senses activity in its attacked block; per §II.C it sends
    /// EmuBee only where the victim is, and monitors at slot start
    /// whether the victim is still there).
    pub fn step<R: Rng + ?Sized>(&mut self, victim_channel: usize, rng: &mut R) -> JamAction {
        self.step_sensing(&[victim_channel], rng)
    }

    /// [`SweepJammer::step`] generalized to several simultaneously
    /// active channels (e.g. the real victim plus a defender decoy):
    /// the jammer senses per *block*, so it retains its lock while any
    /// active channel stays in the locked block and locks onto any
    /// block it sweeps that shows activity. With a single-element slice
    /// this is exactly `step` — same decisions, same RNG draws.
    pub fn step_sensing<R: Rng + ?Sized>(&mut self, active: &[usize], rng: &mut R) -> JamAction {
        let width = self.config.jam_width;
        let is_active = |block: usize| active.iter().any(|&c| c / width == block);

        let block = match self.locked {
            Some(block) if is_active(block) => block, // keep tracking
            Some(_) => {
                // All activity left: resume sweeping for the next opportunity.
                self.locked = None;
                self.next_sweep_block(rng)
            }
            None => self.next_sweep_block(rng),
        };

        let found = is_active(block);
        if found {
            self.locked = Some(block);
        }

        JamAction {
            block: ChannelBlock::of_block_index(block, self.config.jam_width),
            power: self.pick_power(rng),
            locked: self.locked == Some(block) && found,
        }
    }

    fn next_sweep_block<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        if self.cursor >= self.order.len() {
            self.shuffle_cycle(rng);
        }
        let block = self.order[self.cursor];
        self.cursor += 1;
        block
    }

    fn pick_power<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self.config.mode {
            JammerMode::MaxPower => self
                .config
                .powers
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max),
            JammerMode::RandomPower => {
                self.config.powers[rng.gen_range(0..self.config.powers.len())]
            }
        }
    }

    /// Whether a block attack covers the given channel.
    pub fn covers(&self, action: &JamAction, channel: usize) -> bool {
        action.covers(channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn default_sweep_cycle_is_four() {
        assert_eq!(JammerConfig::default().sweep_cycle(), 4);
    }

    #[test]
    fn with_sweep_cycle_rescales() {
        let c = JammerConfig::default().with_sweep_cycle(8);
        assert_eq!(c.sweep_cycle(), 8);
        assert_eq!(c.num_channels, 32);
    }

    #[test]
    fn finds_static_victim_within_one_cycle() {
        let mut r = rng(1);
        let mut jammer = SweepJammer::new(JammerConfig::default(), &mut r);
        let victim = 9usize;
        let mut found_at = None;
        for slot in 0..4 {
            let action = jammer.step(victim, &mut r);
            if jammer.covers(&action, victim) {
                found_at = Some(slot);
                break;
            }
        }
        assert!(
            found_at.is_some(),
            "sweep must find a static victim in a cycle"
        );
    }

    #[test]
    fn locks_and_tracks_until_victim_leaves() {
        let mut r = rng(2);
        let mut jammer = SweepJammer::new(JammerConfig::default(), &mut r);
        let victim = 5usize;
        // Step until found.
        for _ in 0..4 {
            let a = jammer.step(victim, &mut r);
            if a.locked {
                break;
            }
        }
        assert!(jammer.is_locked());
        // Stays locked while victim remains.
        let a = jammer.step(victim, &mut r);
        assert!(a.locked);
        assert!(jammer.covers(&a, victim));
        // Victim hops far away: jammer unlocks and resumes sweeping.
        let far = 15usize;
        let a = jammer.step(far, &mut r);
        assert!(!a.locked || jammer.covers(&a, far));
        // After the victim leaves, the lock on the old block is gone.
        assert!(jammer.locked != Some(jammer.block_of(victim)) || jammer.covers(&a, victim));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // slot doubles as histogram bin
    fn discovery_hazard_is_uniform_over_cycle() {
        // A static victim should be discovered at a uniformly distributed
        // slot within the sweep cycle (the 1/(⌈K/m⌉−n) hazard of Eq. 6).
        let mut r = rng(3);
        let mut histogram = [0usize; 4];
        for _ in 0..4000 {
            let mut jammer = SweepJammer::new(JammerConfig::default(), &mut r);
            for slot in 0..4 {
                let action = jammer.step(7, &mut r);
                if jammer.covers(&action, 7) {
                    histogram[slot] += 1;
                    break;
                }
            }
        }
        let total: usize = histogram.iter().sum();
        assert_eq!(total, 4000, "victim must always be found in one cycle");
        for (slot, &count) in histogram.iter().enumerate() {
            let frac = count as f64 / total as f64;
            assert!(
                (frac - 0.25).abs() < 0.03,
                "slot {slot} discovery fraction {frac}"
            );
        }
    }

    #[test]
    fn max_mode_always_uses_max_power() {
        let mut r = rng(4);
        let mut jammer = SweepJammer::new(JammerConfig::default(), &mut r);
        for _ in 0..20 {
            assert_eq!(jammer.step(0, &mut r).power, 20.0);
        }
    }

    #[test]
    fn random_mode_spreads_over_levels() {
        let mut r = rng(5);
        let mut jammer = SweepJammer::new(
            JammerConfig {
                mode: JammerMode::RandomPower,
                ..JammerConfig::default()
            },
            &mut r,
        );
        let seen: std::collections::HashSet<i64> = (0..300)
            .map(|_| jammer.step(0, &mut r).power as i64)
            .collect();
        assert!(seen.len() >= 8, "random powers too narrow: {seen:?}");
    }

    #[test]
    #[should_panic]
    fn wide_jam_width_rejected() {
        let mut r = rng(6);
        SweepJammer::new(
            JammerConfig {
                num_channels: 2,
                jam_width: 4,
                ..JammerConfig::default()
            },
            &mut r,
        );
    }
}
