//! First-class adversaries: the trait every jammer implements plus the
//! configuration type that makes "which attacker" a data value.
//!
//! The paper evaluates its defense against a single sweep jammer
//! (§II.C); related work adds reactive/dynamic jammers that sense before
//! jamming, deception defenses that bait them, and energy-budgeted
//! attackers. This module turns the attacker into a plug-in:
//!
//! * [`Adversary`] — one `jam(sense, rng)` call per slot, cloneable for
//!   sharded campaigns, introspectable via [`AdversaryProbe`].
//! * [`AdversaryConfig`] / [`AdversaryKind`] — a plain-data description
//!   (builders: [`AdversaryConfig::sweep`], [`AdversaryConfig::reactive`],
//!   …) that environments and fleet campaign specs carry and
//!   [`AdversaryConfig::build`] turns into a boxed adversary.
//! * The zoo: [`NullAdversary`], [`SweepAdversary`] (the paper's jammer),
//!   [`ReactiveJammer`], [`PursuitJammer`], [`EnergyBudgetJammer`], and
//!   the learning [`DqnJammer`].
//!
//! # Determinism contract
//!
//! An adversary owns no RNG: every random draw comes from the `rng`
//! handed to `jam` (and to [`AdversaryConfig::build`] at construction),
//! so a `(config, seed)` pair fully determines its behaviour. Cloning an
//! adversary ([`Adversary::clone_box`]) snapshots its state; replaying
//! the clone against a cloned RNG reproduces the original bit for bit —
//! this is what lets the fleet engine shard episodes freely.

use crate::adaptive::AdaptiveJammer;
use crate::adaptive::PredictorKind;
use crate::jammer::{JammerConfig, JammerMode, SweepJammer};
use ctjam_dqn::agent::DqnAgent;
use ctjam_dqn::config::DqnConfig;
use ctjam_dqn::encode::{ObservationEncoder, SlotOutcome, SlotRecord};
use rand::{Rng, RngCore};
use std::collections::VecDeque;

/// A typed block of consecutive channels (start + width), replacing the
/// old raw `block_start: usize` so adversaries with different front-end
/// widths cannot silently alias blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelBlock {
    /// First channel of the block.
    pub start: usize,
    /// Number of consecutive channels covered (`0` = no emission).
    pub width: usize,
}

impl ChannelBlock {
    /// The empty block: covers nothing (an idle jammer).
    pub const EMPTY: ChannelBlock = ChannelBlock { start: 0, width: 0 };

    /// The `index`-th block of a grid of `width`-channel blocks.
    pub fn of_block_index(index: usize, width: usize) -> Self {
        ChannelBlock {
            start: index * width,
            width,
        }
    }

    /// Whether `channel` falls inside this block.
    pub fn contains(&self, channel: usize) -> bool {
        self.width > 0 && (self.start..self.start + self.width).contains(&channel)
    }

    /// Whether the block covers no channels at all.
    pub fn is_empty(&self) -> bool {
        self.width == 0
    }

    /// The block index on its own width grid (0 for the empty block).
    pub fn index(&self) -> usize {
        self.start.checked_div(self.width).unwrap_or(0)
    }
}

/// What an adversary did this slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JamAction {
    /// The attacked channel block ([`ChannelBlock::EMPTY`] when idle).
    pub block: ChannelBlock,
    /// Jamming power (an `L^J` value; `0.0` when idle).
    pub power: f64,
    /// Whether the adversary believes it is locked onto the victim.
    pub locked: bool,
}

impl JamAction {
    /// An idle slot: no emission, no power spent.
    pub fn idle() -> Self {
        JamAction {
            block: ChannelBlock::EMPTY,
            power: 0.0,
            locked: false,
        }
    }

    /// Whether this slot emitted nothing.
    pub fn is_idle(&self) -> bool {
        self.block.is_empty()
    }

    /// Whether the attack covers the given channel.
    pub fn covers(&self, channel: usize) -> bool {
        self.block.contains(channel)
    }
}

/// What an adversary can sense about one slot before acting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotSense {
    /// The channel the victim transmits on this slot.
    pub victim_channel: usize,
    /// The victim's transmit power (sensing-threshold input).
    pub victim_power: f64,
    /// A decoy/bait transmission the defender emits this slot, if any.
    /// Decoys are loud by construction: a sensing adversary hears the
    /// decoy instead of the real transmission.
    pub decoy: Option<usize>,
}

impl SlotSense {
    /// The channel a sensing adversary perceives as "the victim": the
    /// decoy when one is present, the real transmission otherwise.
    pub fn sensed_channel(&self) -> usize {
        self.decoy.unwrap_or(self.victim_channel)
    }
}

/// Introspection counters an adversary may expose (all optional).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdversaryProbe {
    /// Jamming emissions so far.
    pub shots: u64,
    /// Emissions that covered the victim's real channel.
    pub hits: u64,
    /// Slots spent idle (sensing, charging, or out of budget).
    pub idle_slots: u64,
    /// Remaining energy, for budgeted adversaries.
    pub energy: Option<f64>,
}

impl AdversaryProbe {
    /// Fraction of emissions that covered the victim (0 when untested).
    pub fn hit_rate(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.hits as f64 / self.shots as f64
        }
    }
}

/// One attacker. Implementations are deterministic given the RNG stream:
/// see the module docs for the full contract.
pub trait Adversary: std::fmt::Debug + Send {
    /// Short stable identifier ("sweep", "reactive", …) for tables/logs.
    fn name(&self) -> &str;

    /// Observes one slot and answers with this slot's attack. This is
    /// the only place an adversary draws randomness or mutates state.
    fn jam(&mut self, sense: &SlotSense, rng: &mut dyn RngCore) -> JamAction;

    /// Snapshots the adversary for another shard/episode. Replaying the
    /// clone with a cloned RNG reproduces the original bit-exactly.
    fn clone_box(&self) -> Box<dyn Adversary>;

    /// Introspection counters (defaults to all-zero for adversaries
    /// that track nothing).
    fn probe(&self) -> AdversaryProbe {
        AdversaryProbe::default()
    }

    /// Freezes/unfreezes learning adversaries (self-play league epochs).
    /// No-op for non-learning adversaries.
    fn set_learning(&mut self, _on: bool) {}
}

impl Clone for Box<dyn Adversary> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The adversary family, nested under [`AdversaryConfig`]'s shared
/// front-end parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum AdversaryKind {
    /// No jammer at all (the clean-channel baseline).
    None,
    /// The paper's sweeping jammer (§II.C): random block order per
    /// cycle, locks onto discovered victims.
    Sweep,
    /// Sense-then-jam: hears any transmission at or above a power
    /// threshold and jams its block `latency` slots later.
    Reactive {
        /// Minimum victim power that registers on the sensor.
        sense_threshold: f64,
        /// Slots between hearing a transmission and jamming its block
        /// (0 = same slot).
        latency: usize,
    },
    /// Always jams the block of the last slot's observed transmission.
    Pursuit,
    /// Wraps another adversary in a joule budget: emissions cost their
    /// power, idle slots recharge. A non-positive capacity builds a
    /// [`NullAdversary`] outright (no RNG draws), so a zero-budget
    /// jammer is bit-equivalent to no jammer.
    EnergyBudget {
        /// Maximum stored energy (joules); the jammer starts full.
        capacity: f64,
        /// Energy recovered per idle slot.
        recharge: f64,
        /// The wrapped attacker's kind.
        inner: Box<AdversaryKind>,
    },
    /// The DeepJam-class adaptive jammer: predicts the next victim
    /// block from sensed history (see [`crate::adaptive`]).
    Adaptive {
        /// The channel predictor model.
        predictor: PredictorKind,
        /// `true` if the jammer reads plaintext FH announcements.
        eavesdrop: bool,
    },
    /// A learning attacker: a DQN over channel blocks sharing
    /// `ctjam-dqn`, trained online against whatever defender it faces.
    LearningDqn,
}

/// Plain-data description of an adversary: the shared jamming front end
/// (channel grid, block width, power levels, power mode — the old
/// [`JammerConfig`] fields) plus the [`AdversaryKind`] behaviour on top.
///
/// Environments ([`crate::env::EnvParams::adversary`]) and fleet
/// campaign specs carry this by value; its `Debug` form feeds campaign
/// fingerprints, and [`AdversaryConfig::build`] instantiates it.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryConfig {
    /// Total selectable channels `K` (16 on the 2.4 GHz band).
    pub num_channels: usize,
    /// Channels covered per emission `m` (4 for EmuBee).
    pub jam_width: usize,
    /// Selectable jamming power levels (`L^J` values).
    pub powers: Vec<f64>,
    /// Power-selection mode.
    pub mode: JammerMode,
    /// Which attacker behaviour runs on this front end.
    pub kind: AdversaryKind,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        JammerConfig::default().into()
    }
}

impl From<JammerConfig> for AdversaryConfig {
    /// The old front-end config, as the sweep jammer it used to imply.
    fn from(front_end: JammerConfig) -> Self {
        AdversaryConfig {
            num_channels: front_end.num_channels,
            jam_width: front_end.jam_width,
            powers: front_end.powers,
            mode: front_end.mode,
            kind: AdversaryKind::Sweep,
        }
    }
}

impl AdversaryConfig {
    fn with_kind(kind: AdversaryKind) -> Self {
        AdversaryConfig {
            kind,
            ..AdversaryConfig::default()
        }
    }

    /// The paper's sweep jammer on the default front end.
    pub fn sweep() -> Self {
        Self::with_kind(AdversaryKind::Sweep)
    }

    /// No jammer (clean-channel baseline).
    pub fn none() -> Self {
        Self::with_kind(AdversaryKind::None)
    }

    /// A reactive sense-then-jam attacker with the given sensing
    /// threshold and a 1-slot reaction latency (see
    /// [`AdversaryConfig::latency`]).
    pub fn reactive(sense_threshold: f64) -> Self {
        Self::with_kind(AdversaryKind::Reactive {
            sense_threshold,
            latency: 1,
        })
    }

    /// A pursuit attacker (jams the last observed channel's block).
    pub fn pursuit() -> Self {
        Self::with_kind(AdversaryKind::Pursuit)
    }

    /// The DeepJam-class adaptive jammer with the given predictor.
    pub fn adaptive(predictor: PredictorKind) -> Self {
        Self::with_kind(AdversaryKind::Adaptive {
            predictor,
            eavesdrop: false,
        })
    }

    /// The learning attacker-DQN.
    pub fn dqn() -> Self {
        Self::with_kind(AdversaryKind::LearningDqn)
    }

    /// Switches the front end to max-power mode.
    #[must_use]
    pub fn max_power(mut self) -> Self {
        self.mode = JammerMode::MaxPower;
        self
    }

    /// Switches the front end to random-power (hidden) mode.
    #[must_use]
    pub fn random_power(mut self) -> Self {
        self.mode = JammerMode::RandomPower;
        self
    }

    /// Sets the reaction latency of a reactive adversary.
    ///
    /// # Panics
    ///
    /// Panics if the kind is not [`AdversaryKind::Reactive`].
    #[must_use]
    pub fn latency(mut self, latency: usize) -> Self {
        match &mut self.kind {
            AdversaryKind::Reactive { latency: l, .. } => *l = latency,
            other => panic!("latency() only applies to Reactive, not {other:?}"),
        }
        self
    }

    /// Wraps the current kind in a joule budget (see
    /// [`AdversaryKind::EnergyBudget`]).
    #[must_use]
    pub fn energy_budget(mut self, capacity: f64, recharge: f64) -> Self {
        let inner = std::mem::replace(&mut self.kind, AdversaryKind::None);
        self.kind = AdversaryKind::EnergyBudget {
            capacity,
            recharge,
            inner: Box::new(inner),
        };
        self
    }

    /// Turns on announcement eavesdropping for an adaptive adversary.
    ///
    /// # Panics
    ///
    /// Panics if the kind is not [`AdversaryKind::Adaptive`].
    #[must_use]
    pub fn eavesdrop(mut self) -> Self {
        match &mut self.kind {
            AdversaryKind::Adaptive { eavesdrop, .. } => *eavesdrop = true,
            other => panic!("eavesdrop() only applies to Adaptive, not {other:?}"),
        }
        self
    }

    /// Number of channel blocks = the sweep cycle `⌈K/m⌉`.
    pub fn sweep_cycle(&self) -> usize {
        self.num_channels.div_ceil(self.jam_width)
    }

    /// Rescales the block count to obtain a target sweep cycle while
    /// keeping `m` fixed (the Fig. 6(b)/7(c,d)/8(c,d) sweep).
    #[must_use]
    pub fn with_sweep_cycle(mut self, cycle: usize) -> Self {
        self.num_channels = cycle * self.jam_width;
        self
    }

    /// The shared front-end parameters as the legacy [`JammerConfig`].
    pub fn front_end(&self) -> JammerConfig {
        JammerConfig {
            num_channels: self.num_channels,
            jam_width: self.jam_width,
            powers: self.powers.clone(),
            mode: self.mode,
        }
    }

    /// The strongest configured jamming power.
    pub fn max_jam_power(&self) -> f64 {
        self.powers
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Short stable label for tables and manifests, e.g.
    /// `"reactive(t8,l1)"` or `"energy(40/2,sweep)"`.
    pub fn label(&self) -> String {
        fn kind_label(kind: &AdversaryKind) -> String {
            match kind {
                AdversaryKind::None => "none".into(),
                AdversaryKind::Sweep => "sweep".into(),
                AdversaryKind::Reactive {
                    sense_threshold,
                    latency,
                } => format!("reactive(t{sense_threshold},l{latency})"),
                AdversaryKind::Pursuit => "pursuit".into(),
                AdversaryKind::EnergyBudget {
                    capacity,
                    recharge,
                    inner,
                } => format!("energy({capacity}/{recharge},{})", kind_label(inner)),
                AdversaryKind::Adaptive {
                    predictor,
                    eavesdrop,
                } => {
                    let tap = if *eavesdrop { "+eaves" } else { "" };
                    format!("adaptive-{predictor:?}{tap}").to_lowercase()
                }
                AdversaryKind::LearningDqn => "dqn".into(),
            }
        }
        let suffix = match self.mode {
            JammerMode::MaxPower => "",
            JammerMode::RandomPower => "-rnd",
        };
        format!("{}{}", kind_label(&self.kind), suffix)
    }

    /// Parses a [`AdversaryConfig::label`] string back into a config
    /// (all non-label fields at their defaults), so adversary mixes can
    /// be named in data files. Inverse of `label()` for every config
    /// whose numeric fields survive `Display` round-tripping:
    /// `parse_label(&c.label()).unwrap().label() == c.label()`.
    ///
    /// Grammar: `none | sweep | pursuit | dqn | reactive(tT,lL) |
    /// energy(CAP/RECHARGE,INNER) | adaptive-{lastblock|markov|rnn}[+eaves]`,
    /// with an optional `-rnd` suffix selecting
    /// [`JammerMode::RandomPower`].
    pub fn parse_label(label: &str) -> Option<AdversaryConfig> {
        fn parse_kind(s: &str) -> Option<AdversaryKind> {
            match s {
                "none" => return Some(AdversaryKind::None),
                "sweep" => return Some(AdversaryKind::Sweep),
                "pursuit" => return Some(AdversaryKind::Pursuit),
                "dqn" => return Some(AdversaryKind::LearningDqn),
                _ => {}
            }
            if let Some(body) = s
                .strip_prefix("reactive(t")
                .and_then(|r| r.strip_suffix(')'))
            {
                let (threshold, latency) = body.split_once(",l")?;
                let sense_threshold: f64 = threshold.parse().ok()?;
                let latency: usize = latency.parse().ok()?;
                if !sense_threshold.is_finite() {
                    return None;
                }
                return Some(AdversaryKind::Reactive {
                    sense_threshold,
                    latency,
                });
            }
            if let Some(body) = s.strip_prefix("energy(").and_then(|r| r.strip_suffix(')')) {
                // The budget part never contains a comma, so the first
                // comma separates it from the (possibly nested) inner
                // kind.
                let (budget, inner) = body.split_once(',')?;
                let (capacity, recharge) = budget.split_once('/')?;
                let capacity: f64 = capacity.parse().ok()?;
                let recharge: f64 = recharge.parse().ok()?;
                if !capacity.is_finite()
                    || capacity <= 0.0
                    || !recharge.is_finite()
                    || recharge < 0.0
                {
                    return None;
                }
                return Some(AdversaryKind::EnergyBudget {
                    capacity,
                    recharge,
                    inner: Box::new(parse_kind(inner)?),
                });
            }
            if let Some(body) = s.strip_prefix("adaptive-") {
                let (name, eavesdrop) = match body.strip_suffix("+eaves") {
                    Some(stripped) => (stripped, true),
                    None => (body, false),
                };
                let predictor = match name {
                    "lastblock" => PredictorKind::LastBlock,
                    "markov" => PredictorKind::Markov,
                    "rnn" => PredictorKind::Rnn,
                    _ => return None,
                };
                return Some(AdversaryKind::Adaptive {
                    predictor,
                    eavesdrop,
                });
            }
            None
        }
        // No kind label ends in "-rnd" ("adaptive-rnn" ends in "-rnn"),
        // so suffix stripping is unambiguous.
        let (body, mode) = match label.strip_suffix("-rnd") {
            Some(stripped) => (stripped, JammerMode::RandomPower),
            None => (label, JammerMode::MaxPower),
        };
        let kind = parse_kind(body)?;
        Some(AdversaryConfig {
            kind,
            mode,
            ..AdversaryConfig::default()
        })
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on degenerate dimensions or non-finite budgets —
    /// configuration bugs, not runtime conditions.
    pub fn validate(&self) {
        assert!(self.num_channels > 0, "need at least one channel");
        assert!(self.jam_width > 0, "jam width must be positive");
        assert!(
            self.jam_width <= self.num_channels,
            "jam width exceeds the channel count"
        );
        assert!(!self.powers.is_empty(), "need at least one power level");
        fn check(kind: &AdversaryKind) {
            match kind {
                AdversaryKind::Reactive {
                    sense_threshold, ..
                } => assert!(sense_threshold.is_finite(), "sensing threshold not finite"),
                AdversaryKind::EnergyBudget {
                    capacity,
                    recharge,
                    inner,
                } => {
                    assert!(capacity.is_finite(), "energy capacity not finite");
                    assert!(
                        recharge.is_finite() && *recharge >= 0.0,
                        "recharge must be finite and non-negative"
                    );
                    check(inner);
                }
                _ => {}
            }
        }
        check(&self.kind);
    }

    /// Instantiates the described adversary, drawing any construction
    /// randomness (sweep-cycle shuffle, DQN weight init) from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`AdversaryConfig::validate`].
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Box<dyn Adversary> {
        self.validate();
        self.build_kind(&self.kind, rng)
    }

    fn build_kind<R: Rng + ?Sized>(&self, kind: &AdversaryKind, rng: &mut R) -> Box<dyn Adversary> {
        match kind {
            AdversaryKind::None => Box::new(NullAdversary),
            AdversaryKind::Sweep => {
                Box::new(SweepAdversary::new(SweepJammer::new(self.front_end(), rng)))
            }
            AdversaryKind::Reactive {
                sense_threshold,
                latency,
            } => Box::new(ReactiveJammer::new(self, *sense_threshold, *latency)),
            AdversaryKind::Pursuit => Box::new(PursuitJammer::new(self)),
            AdversaryKind::EnergyBudget {
                capacity,
                recharge,
                inner,
            } => {
                if *capacity <= 0.0 {
                    // An attacker that can never afford a shot must be
                    // indistinguishable from no attacker at all — build
                    // the null adversary so even the RNG stream matches.
                    Box::new(NullAdversary)
                } else {
                    let inner = self.build_kind(inner, rng);
                    Box::new(EnergyBudgetJammer::new(inner, *capacity, *recharge))
                }
            }
            AdversaryKind::Adaptive {
                predictor,
                eavesdrop,
            } => {
                let mut jammer = AdaptiveJammer::from_config(self, *predictor, rng);
                jammer.set_eavesdropping(*eavesdrop);
                Box::new(jammer)
            }
            AdversaryKind::LearningDqn => Box::new(DqnJammer::new(self, rng)),
        }
    }
}

/// Picks an emission power for the shared front end: max of the levels
/// in [`JammerMode::MaxPower`], one uniform draw in
/// [`JammerMode::RandomPower`].
pub(crate) fn pick_power(powers: &[f64], mode: JammerMode, rng: &mut dyn RngCore) -> f64 {
    match mode {
        JammerMode::MaxPower => powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        JammerMode::RandomPower => powers[rng.gen_range(0..powers.len())],
    }
}

/// The absent adversary: every slot is idle and draws no randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NullAdversary;

impl Adversary for NullAdversary {
    fn name(&self) -> &str {
        "none"
    }

    fn jam(&mut self, _sense: &SlotSense, _rng: &mut dyn RngCore) -> JamAction {
        JamAction::idle()
    }

    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(*self)
    }
}

/// The paper's sweep jammer behind the [`Adversary`] trait. Decoys work
/// on it exactly like real transmissions: any active channel in the
/// attacked block acquires (or retains) the lock.
#[derive(Debug, Clone)]
pub struct SweepAdversary {
    jammer: SweepJammer,
}

impl SweepAdversary {
    /// Wraps an already-constructed sweep jammer.
    pub fn new(jammer: SweepJammer) -> Self {
        SweepAdversary { jammer }
    }

    /// The wrapped jammer.
    pub fn jammer(&self) -> &SweepJammer {
        &self.jammer
    }
}

impl Adversary for SweepAdversary {
    fn name(&self) -> &str {
        "sweep"
    }

    fn jam(&mut self, sense: &SlotSense, rng: &mut dyn RngCore) -> JamAction {
        match sense.decoy {
            Some(decoy) => self
                .jammer
                .step_sensing(&[sense.victim_channel, decoy], rng),
            None => self.jammer.step_sensing(&[sense.victim_channel], rng),
        }
    }

    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(self.clone())
    }
}

/// Sense-then-jam (arXiv 2510.02265 family): hears transmissions at or
/// above `sense_threshold`, and jams the heard block `latency` slots
/// later. Decoys are always heard — that is the bait a deception
/// defender exploits.
#[derive(Debug, Clone)]
pub struct ReactiveJammer {
    jam_width: usize,
    powers: Vec<f64>,
    mode: JammerMode,
    sense_threshold: f64,
    /// Channels heard in the last `latency` slots, oldest first.
    pending: VecDeque<Option<usize>>,
    shots: u64,
    hits: u64,
    idle: u64,
}

impl ReactiveJammer {
    /// Builds a reactive jammer on `config`'s front end.
    pub fn new(config: &AdversaryConfig, sense_threshold: f64, latency: usize) -> Self {
        ReactiveJammer {
            jam_width: config.jam_width,
            powers: config.powers.clone(),
            mode: config.mode,
            sense_threshold,
            pending: std::iter::repeat_n(None, latency).collect(),
            shots: 0,
            hits: 0,
            idle: 0,
        }
    }
}

impl Adversary for ReactiveJammer {
    fn name(&self) -> &str {
        "reactive"
    }

    fn jam(&mut self, sense: &SlotSense, rng: &mut dyn RngCore) -> JamAction {
        let heard = sense
            .decoy
            .or((sense.victim_power >= self.sense_threshold).then_some(sense.victim_channel));
        self.pending.push_back(heard);
        match self.pending.pop_front().flatten() {
            Some(channel) => {
                let action = JamAction {
                    block: ChannelBlock::of_block_index(channel / self.jam_width, self.jam_width),
                    power: pick_power(&self.powers, self.mode, rng),
                    locked: true,
                };
                self.shots += 1;
                if action.covers(sense.victim_channel) {
                    self.hits += 1;
                }
                action
            }
            None => {
                self.idle += 1;
                JamAction::idle()
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(self.clone())
    }

    fn probe(&self) -> AdversaryProbe {
        AdversaryProbe {
            shots: self.shots,
            hits: self.hits,
            idle_slots: self.idle,
            energy: None,
        }
    }
}

/// Jams the block of the previous slot's sensed transmission (a
/// latency-1 follower with no sensing threshold).
#[derive(Debug, Clone)]
pub struct PursuitJammer {
    jam_width: usize,
    powers: Vec<f64>,
    mode: JammerMode,
    last: Option<usize>,
    shots: u64,
    hits: u64,
    idle: u64,
}

impl PursuitJammer {
    /// Builds a pursuit jammer on `config`'s front end.
    pub fn new(config: &AdversaryConfig) -> Self {
        PursuitJammer {
            jam_width: config.jam_width,
            powers: config.powers.clone(),
            mode: config.mode,
            last: None,
            shots: 0,
            hits: 0,
            idle: 0,
        }
    }
}

impl Adversary for PursuitJammer {
    fn name(&self) -> &str {
        "pursuit"
    }

    fn jam(&mut self, sense: &SlotSense, rng: &mut dyn RngCore) -> JamAction {
        let target = self.last;
        self.last = Some(sense.sensed_channel());
        match target {
            Some(channel) => {
                let action = JamAction {
                    block: ChannelBlock::of_block_index(channel / self.jam_width, self.jam_width),
                    power: pick_power(&self.powers, self.mode, rng),
                    locked: true,
                };
                self.shots += 1;
                if action.covers(sense.victim_channel) {
                    self.hits += 1;
                }
                action
            }
            None => {
                self.idle += 1;
                JamAction::idle()
            }
        }
    }

    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(self.clone())
    }

    fn probe(&self) -> AdversaryProbe {
        AdversaryProbe {
            shots: self.shots,
            hits: self.hits,
            idle_slots: self.idle,
            energy: None,
        }
    }
}

/// Joule-budget decorator (arXiv 1912.11170's drain target): the inner
/// adversary's emissions cost their power; when the battery cannot
/// afford a shot the slot is forced idle, and idle slots recharge. The
/// battery starts full.
#[derive(Debug, Clone)]
pub struct EnergyBudgetJammer {
    inner: Box<dyn Adversary>,
    capacity: f64,
    charge: f64,
    recharge: f64,
    denied: u64,
    idle: u64,
}

impl EnergyBudgetJammer {
    /// Wraps `inner` in a budget of `capacity` joules, recovering
    /// `recharge` joules per idle slot.
    pub fn new(inner: Box<dyn Adversary>, capacity: f64, recharge: f64) -> Self {
        EnergyBudgetJammer {
            inner,
            capacity,
            charge: capacity,
            recharge,
            denied: 0,
            idle: 0,
        }
    }

    /// Emissions denied because the battery could not afford them.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Remaining stored energy.
    pub fn charge(&self) -> f64 {
        self.charge
    }
}

impl Adversary for EnergyBudgetJammer {
    fn name(&self) -> &str {
        "energy"
    }

    fn jam(&mut self, sense: &SlotSense, rng: &mut dyn RngCore) -> JamAction {
        let action = self.inner.jam(sense, rng);
        if action.is_idle() {
            self.charge = (self.charge + self.recharge).min(self.capacity);
            self.idle += 1;
            action
        } else if self.charge >= action.power {
            self.charge -= action.power;
            action
        } else {
            self.denied += 1;
            self.idle += 1;
            self.charge = (self.charge + self.recharge).min(self.capacity);
            JamAction::idle()
        }
    }

    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(self.clone())
    }

    fn probe(&self) -> AdversaryProbe {
        let inner = self.inner.probe();
        AdversaryProbe {
            idle_slots: inner.idle_slots.max(self.idle),
            energy: Some(self.charge),
            ..inner
        }
    }

    fn set_learning(&mut self, on: bool) {
        self.inner.set_learning(on);
    }
}

/// The learning attacker: a DQN over channel blocks (one action per
/// block, single power level) trained online from its own hit/miss
/// feedback. Decoys poison its training signal — a baited "hit" looks
/// like a success to the attacker.
#[derive(Debug, Clone)]
pub struct DqnJammer {
    agent: DqnAgent,
    encoder: ObservationEncoder,
    jam_width: usize,
    power: f64,
    training: bool,
    shots: u64,
    hits: u64,
}

impl DqnJammer {
    /// Builds a learning attacker on `config`'s front end, initializing
    /// its network weights from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the front end has fewer than two blocks (nothing to
    /// learn).
    pub fn new<R: Rng + ?Sized>(config: &AdversaryConfig, rng: &mut R) -> Self {
        let blocks = config.sweep_cycle();
        assert!(blocks > 1, "learning jammer needs at least two blocks");
        let dqn = DqnConfig {
            history_len: 6,
            num_channels: blocks,
            num_power_levels: 1,
            hidden: (32, 28),
            gamma: 0.9,
            learning_rate: 2e-3,
            replay_capacity: 20_000,
            batch_size: 16,
            target_sync_interval: 100,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay_steps: 1_500,
            train_interval: 2,
            warmup: 64,
            double_dqn: false,
        };
        DqnJammer {
            agent: DqnAgent::new(dqn, rng),
            encoder: ObservationEncoder::new(6, blocks, 1),
            jam_width: config.jam_width,
            power: config.max_jam_power(),
            training: true,
            shots: 0,
            hits: 0,
        }
    }

    /// The underlying agent (weights, replay, training counters).
    pub fn agent(&self) -> &DqnAgent {
        &self.agent
    }

    /// Whether the attacker is currently learning.
    pub fn is_learning(&self) -> bool {
        self.training
    }
}

impl Adversary for DqnJammer {
    fn name(&self) -> &str {
        "dqn"
    }

    fn jam(&mut self, sense: &SlotSense, rng: &mut dyn RngCore) -> JamAction {
        let obs = self.encoder.encode();
        let action = self.agent.act_scratch(&obs, rng);
        let sensed_block = sense.sensed_channel() / self.jam_width;
        // The attacker can only verify against what it senses — a decoy
        // "hit" is perceived (and rewarded) as success.
        let perceived_hit = action == sensed_block;
        self.shots += 1;
        if action == sense.victim_channel / self.jam_width {
            self.hits += 1;
        }
        self.encoder.push(SlotRecord {
            outcome: if perceived_hit {
                SlotOutcome::Success
            } else {
                SlotOutcome::Failure
            },
            channel: sensed_block,
            power_level: 0,
        });
        if self.training {
            let reward = if perceived_hit { 1.0 } else { -0.1 };
            let next = self.encoder.encode();
            self.agent.observe(obs, action, reward, next, rng);
        }
        JamAction {
            block: ChannelBlock::of_block_index(action, self.jam_width),
            power: self.power,
            locked: perceived_hit,
        }
    }

    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(self.clone())
    }

    fn probe(&self) -> AdversaryProbe {
        AdversaryProbe {
            shots: self.shots,
            hits: self.hits,
            idle_slots: 0,
            energy: None,
        }
    }

    fn set_learning(&mut self, on: bool) {
        self.training = on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn parse_label_round_trips_the_zoo() {
        let zoo = [
            AdversaryConfig::none(),
            AdversaryConfig::sweep(),
            AdversaryConfig::sweep().random_power(),
            AdversaryConfig::reactive(8.0),
            AdversaryConfig::reactive(8.0).latency(3).random_power(),
            AdversaryConfig::pursuit(),
            AdversaryConfig::pursuit().energy_budget(40.0, 2.0),
            AdversaryConfig::adaptive(PredictorKind::LastBlock),
            AdversaryConfig::adaptive(PredictorKind::Markov).eavesdrop(),
            AdversaryConfig::adaptive(PredictorKind::Rnn).random_power(),
            AdversaryConfig::dqn(),
        ];
        for config in zoo {
            let label = config.label();
            let parsed = AdversaryConfig::parse_label(&label)
                .unwrap_or_else(|| panic!("label {label:?} did not parse"));
            assert_eq!(parsed.label(), label);
            assert_eq!(parsed.kind, config.kind, "{label}");
            assert_eq!(parsed.mode, config.mode, "{label}");
        }
    }

    #[test]
    fn parse_label_rejects_junk() {
        for junk in [
            "",
            "sweeep",
            "reactive",
            "reactive(t8)",
            "reactive(t8,l)",
            "energy(40/2)",
            "energy(x/2,sweep)",
            "energy(40/2,sweeep)",
            "adaptive-",
            "adaptive-gru",
            "-rnd",
        ] {
            assert!(
                AdversaryConfig::parse_label(junk).is_none(),
                "{junk:?} should not parse"
            );
        }
    }

    fn sense(channel: usize) -> SlotSense {
        SlotSense {
            victim_channel: channel,
            victim_power: 10.0,
            decoy: None,
        }
    }

    #[test]
    fn channel_block_typing() {
        let b = ChannelBlock::of_block_index(2, 4);
        assert_eq!(b.start, 8);
        assert_eq!(b.index(), 2);
        assert!(b.contains(11));
        assert!(!b.contains(12));
        assert!(ChannelBlock::EMPTY.is_empty());
        assert!(!ChannelBlock::EMPTY.contains(0));
        assert!(JamAction::idle().is_idle());
    }

    #[test]
    fn sweep_adversary_matches_raw_jammer() {
        let cfg = AdversaryConfig::sweep();
        let mut r1 = rng(7);
        let mut r2 = rng(7);
        let mut adv = cfg.build(&mut r1);
        let mut raw = SweepJammer::new(cfg.front_end(), &mut r2);
        for slot in 0..64 {
            let channel = (slot * 5) % cfg.num_channels;
            let a = adv.jam(&sense(channel), &mut r1);
            let b = raw.step(channel, &mut r2);
            assert_eq!(a, b, "diverged at slot {slot}");
        }
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>(), "RNG streams diverged");
    }

    #[test]
    fn reactive_waits_its_latency_then_jams_the_heard_block() {
        let cfg = AdversaryConfig::reactive(5.0).latency(2);
        let mut r = rng(1);
        let mut adv = cfg.build(&mut r);
        // Slots 0..2: nothing heard long enough ago.
        assert!(adv.jam(&sense(9), &mut r).is_idle());
        assert!(adv.jam(&sense(1), &mut r).is_idle());
        // Slot 2 reacts to slot 0 (channel 9 → block 2).
        let a = adv.jam(&sense(2), &mut r);
        assert_eq!(a.block, ChannelBlock::of_block_index(2, 4));
        // Slot 3 reacts to slot 1 (channel 1 → block 0).
        let a = adv.jam(&sense(3), &mut r);
        assert_eq!(a.block, ChannelBlock::of_block_index(0, 4));
    }

    #[test]
    fn reactive_ignores_whispers_but_always_hears_decoys() {
        let cfg = AdversaryConfig::reactive(50.0).latency(0);
        let mut r = rng(2);
        let mut adv = cfg.build(&mut r);
        // Victim power below threshold: never heard.
        assert!(adv.jam(&sense(3), &mut r).is_idle());
        assert!(adv.jam(&sense(3), &mut r).is_idle());
        // A decoy is loud by construction and pulls the jammer to it.
        let baited = SlotSense {
            victim_channel: 3,
            victim_power: 10.0,
            decoy: Some(13),
        };
        let a = adv.jam(&baited, &mut r);
        assert_eq!(a.block, ChannelBlock::of_block_index(3, 4));
        assert!(!a.covers(3), "the bait pulled fire away from the victim");
    }

    #[test]
    fn pursuit_follows_one_slot_behind() {
        let cfg = AdversaryConfig::pursuit();
        let mut r = rng(3);
        let mut adv = cfg.build(&mut r);
        assert!(adv.jam(&sense(6), &mut r).is_idle(), "nothing observed yet");
        let a = adv.jam(&sense(14), &mut r);
        assert_eq!(a.block, ChannelBlock::of_block_index(1, 4));
        let a = adv.jam(&sense(0), &mut r);
        assert_eq!(a.block, ChannelBlock::of_block_index(3, 4));
    }

    #[test]
    fn energy_budget_denies_when_drained_and_recharges_when_idle() {
        // Pursuit emits at power 20 every slot after the first; a
        // 45-joule battery affords two shots, then runs dry.
        let cfg = AdversaryConfig::pursuit().energy_budget(45.0, 1.0);
        let mut r = rng(4);
        let mut adv = cfg.build(&mut r);
        assert!(adv.jam(&sense(0), &mut r).is_idle());
        assert!(!adv.jam(&sense(0), &mut r).is_idle());
        assert!(!adv.jam(&sense(0), &mut r).is_idle());
        let denied = adv.jam(&sense(0), &mut r);
        assert!(denied.is_idle(), "third shot must be denied");
        let energy = adv.probe().energy.expect("budgeted probe");
        assert!(energy > 5.0, "idle slots must recharge");
    }

    #[test]
    fn zero_budget_builds_the_null_adversary() {
        let cfg = AdversaryConfig::sweep().energy_budget(0.0, 5.0);
        let mut r1 = rng(5);
        let mut adv = cfg.build(&mut r1);
        assert_eq!(adv.name(), "none");
        for slot in 0..16 {
            assert!(adv.jam(&sense(slot), &mut r1).is_idle());
        }
        // And it consumed no randomness at all.
        assert_eq!(r1.gen::<u64>(), rng(5).gen::<u64>());
    }

    #[test]
    fn dqn_jammer_trains_and_freezes() {
        let cfg = AdversaryConfig::dqn();
        let mut r = rng(6);
        let mut adv = cfg.build(&mut r);
        for slot in 0..200 {
            let a = adv.jam(&sense(slot % 16), &mut r);
            assert!(!a.is_idle());
            assert_eq!(a.power, 20.0);
        }
        let probe = adv.probe();
        assert_eq!(probe.shots, 200);
        adv.set_learning(false);
        for slot in 0..10 {
            adv.jam(&sense(slot), &mut r);
        }
    }

    #[test]
    fn clone_and_replay_is_bit_exact() {
        for cfg in [
            AdversaryConfig::sweep(),
            AdversaryConfig::reactive(8.0),
            AdversaryConfig::pursuit(),
            AdversaryConfig::sweep().energy_budget(60.0, 2.0),
            AdversaryConfig::adaptive(PredictorKind::Markov),
            AdversaryConfig::dqn(),
        ] {
            let mut r = rng(11);
            let mut adv = cfg.build(&mut r);
            // Burn in some state first.
            for slot in 0..40 {
                adv.jam(&sense((slot * 3) % 16), &mut r);
            }
            let mut twin = adv.clone_box();
            let mut r_twin = r.clone();
            for slot in 0..40 {
                let s = sense((slot * 7) % 16);
                assert_eq!(
                    adv.jam(&s, &mut r),
                    twin.jam(&s, &mut r_twin),
                    "{} diverged after cloning",
                    cfg.label()
                );
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AdversaryConfig::sweep().label(), "sweep");
        assert_eq!(AdversaryConfig::sweep().random_power().label(), "sweep-rnd");
        assert_eq!(AdversaryConfig::reactive(8.0).label(), "reactive(t8,l1)");
        assert_eq!(
            AdversaryConfig::pursuit().energy_budget(40.0, 2.0).label(),
            "energy(40/2,pursuit)"
        );
        assert_eq!(
            AdversaryConfig::adaptive(PredictorKind::Markov).label(),
            "adaptive-markov"
        );
    }

    #[test]
    #[should_panic]
    fn latency_on_non_reactive_panics() {
        let _ = AdversaryConfig::sweep().latency(3);
    }
}
