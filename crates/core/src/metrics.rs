//! Table I evaluation metrics.
//!
//! | metric | definition |
//! |--------|------------|
//! | `ST` | proportion of slots that transmit data successfully |
//! | `AH` | slots adopting FH / total slots |
//! | `SH` | successful slots among those adopting FH |
//! | `AP` | slots adopting PC / total slots |
//! | `SP` | successful slots among those adopting PC |

use crate::env::SlotResult;

/// Accumulates Table I metrics across slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Metrics {
    slots: u64,
    successes: u64,
    fh_adopted: u64,
    fh_successes: u64,
    pc_adopted: u64,
    pc_successes: u64,
    jammed: u64,
    jammed_survived: u64,
    power_level_sum: u64,
}

impl Metrics {
    /// An empty accumulator.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one slot.
    pub fn record(&mut self, result: &SlotResult) {
        self.slots += 1;
        let success = result.outcome.is_success();
        if success {
            self.successes += 1;
        }
        match result.outcome {
            crate::env::Outcome::Jammed => self.jammed += 1,
            crate::env::Outcome::JammedSurvived => self.jammed_survived += 1,
            crate::env::Outcome::Clean => {}
        }
        if result.hopped {
            self.fh_adopted += 1;
            if success {
                self.fh_successes += 1;
            }
        }
        if result.power_control {
            self.pc_adopted += 1;
            if success {
                self.pc_successes += 1;
            }
        }
        self.power_level_sum += result.decision.power_level as u64;
    }

    /// Slots recorded.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// The raw accumulator fields in declaration order — the
    /// checkpoint-serialization form (see [`Metrics::from_array`]).
    pub fn to_array(&self) -> [u64; 9] {
        [
            self.slots,
            self.successes,
            self.fh_adopted,
            self.fh_successes,
            self.pc_adopted,
            self.pc_successes,
            self.jammed,
            self.jammed_survived,
            self.power_level_sum,
        ]
    }

    /// Rebuilds an accumulator from [`Metrics::to_array`]'s form.
    pub fn from_array(fields: [u64; 9]) -> Self {
        let [slots, successes, fh_adopted, fh_successes, pc_adopted, pc_successes, jammed, jammed_survived, power_level_sum] =
            fields;
        Metrics {
            slots,
            successes,
            fh_adopted,
            fh_successes,
            pc_adopted,
            pc_successes,
            jammed,
            jammed_survived,
            power_level_sum,
        }
    }

    /// `ST`: success rate of transmission.
    pub fn success_rate(&self) -> f64 {
        ratio(self.successes, self.slots)
    }

    /// `AH`: adoption rate of frequency hopping.
    pub fn fh_adoption_rate(&self) -> f64 {
        ratio(self.fh_adopted, self.slots)
    }

    /// `SH`: success rate of frequency hopping.
    pub fn fh_success_rate(&self) -> f64 {
        ratio(self.fh_successes, self.fh_adopted)
    }

    /// `AP`: adoption rate of power control.
    pub fn pc_adoption_rate(&self) -> f64 {
        ratio(self.pc_adopted, self.slots)
    }

    /// `SP`: success rate of power control.
    pub fn pc_success_rate(&self) -> f64 {
        ratio(self.pc_successes, self.pc_adopted)
    }

    /// Fraction of slots fully jammed (`J`).
    pub fn jam_rate(&self) -> f64 {
        ratio(self.jammed, self.slots)
    }

    /// Fraction of slots jammed-but-survived (`TJ`).
    pub fn tj_rate(&self) -> f64 {
        ratio(self.jammed_survived, self.slots)
    }

    /// Mean transmit power-level *index* per slot — the suite's energy
    /// proxy (§IV.C.2: low PC adoption "can avoid unnecessary and
    /// meaningless energy waste, which is of great importance to
    /// energy-constrained applications").
    pub fn mean_power_level(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.power_level_sum as f64 / self.slots as f64
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.slots += other.slots;
        self.successes += other.successes;
        self.fh_adopted += other.fh_adopted;
        self.fh_successes += other.fh_successes;
        self.pc_adopted += other.pc_adopted;
        self.pc_successes += other.pc_successes;
        self.jammed += other.jammed;
        self.jammed_survived += other.jammed_survived;
        self.power_level_sum += other.power_level_sum;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Decision, Outcome, SlotResult};
    use crate::jammer::JamAction;

    fn slot(outcome: Outcome, hopped: bool, pc: bool) -> SlotResult {
        SlotResult {
            decision: Decision {
                channel: 0,
                power_level: usize::from(pc) * 5,
            },
            outcome,
            hopped,
            power_control: pc,
            reward: 0.0,
            jam_action: JamAction {
                block: crate::adversary::ChannelBlock::of_block_index(0, 4),
                power: 20.0,
                locked: false,
            },
        }
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new();
        assert_eq!(m.success_rate(), 0.0);
        assert_eq!(m.fh_success_rate(), 0.0);
        assert_eq!(m.pc_adoption_rate(), 0.0);
    }

    #[test]
    fn table_i_definitions() {
        let mut m = Metrics::new();
        m.record(&slot(Outcome::Clean, false, false));
        m.record(&slot(Outcome::Clean, true, false)); // FH, success
        m.record(&slot(Outcome::Jammed, true, false)); // FH, failure
        m.record(&slot(Outcome::JammedSurvived, false, true)); // PC, success
        assert_eq!(m.slots(), 4);
        assert_eq!(m.success_rate(), 0.75);
        assert_eq!(m.fh_adoption_rate(), 0.5);
        assert_eq!(m.fh_success_rate(), 0.5);
        assert_eq!(m.pc_adoption_rate(), 0.25);
        assert_eq!(m.pc_success_rate(), 1.0);
        assert_eq!(m.jam_rate(), 0.25);
        assert_eq!(m.tj_rate(), 0.25);
        // One PC slot at level 5 over four slots.
        assert_eq!(m.mean_power_level(), 1.25);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Metrics::new();
        a.record(&slot(Outcome::Clean, false, false));
        let mut b = Metrics::new();
        b.record(&slot(Outcome::Jammed, true, true));
        a.merge(&b);
        assert_eq!(a.slots(), 2);
        assert_eq!(a.success_rate(), 0.5);
        assert_eq!(a.fh_adoption_rate(), 0.5);
    }

    #[test]
    fn tj_counts_as_success() {
        let mut m = Metrics::new();
        m.record(&slot(Outcome::JammedSurvived, false, false));
        assert_eq!(m.success_rate(), 1.0);
        assert_eq!(m.jam_rate(), 0.0);
        assert_eq!(m.tj_rate(), 1.0);
    }
}
