//! The MDP-kernel environment: the paper's *simulation* world.
//!
//! §IV.A.1 evaluates the DQN in Matlab against the abstract competition
//! model — exactly the Eqs. (6)–(14) transition kernel, not a concrete
//! radio. [`KernelEnv`] samples that kernel directly, so Figs. 6–8
//! reproduce the paper's simulation setting faithfully, while
//! [`crate::env::CompetitionEnv`] plays the concrete 16-channel game used
//! by the field experiment (Figs. 9–11).

use crate::adversary::{ChannelBlock, JamAction};
use crate::env::{Decision, EnvParams, Environment, Outcome, SlotResult};
use crate::jammer::JammerMode;
use ctjam_mdp::antijam::{Action as MdpAction, AntijamMdp, AntijamParams, State as MdpState};
use ctjam_mdp::solve::q_learning::sample_transition;
use rand::Rng;

/// Converts environment parameters into the paper's MDP parameters.
pub fn mdp_params_of(params: &EnvParams) -> AntijamParams {
    AntijamParams {
        sweep_cycle: params.adversary.sweep_cycle(),
        tx_powers: params.tx_powers.clone(),
        jx_powers: params.adversary.powers.clone(),
        l_h: params.l_h,
        l_j: params.l_j,
        jammer_mode: match params.adversary.mode {
            JammerMode::MaxPower => ctjam_mdp::antijam::JammerMode::MaxPower,
            JammerMode::RandomPower => ctjam_mdp::antijam::JammerMode::RandomPower,
        },
    }
}

/// An environment that samples the paper's MDP kernel (Eqs. 6–14).
///
/// The defender still acts in `(channel, power)` space; the kernel only
/// cares whether the channel changed (hop) and which power level was
/// chosen. The hidden MDP state is tracked internally and *not* exposed
/// to the defender — matching §III.C's observability argument.
#[derive(Debug, Clone)]
pub struct KernelEnv {
    params: EnvParams,
    mdp: AntijamMdp,
    state: MdpState,
    current_channel: usize,
}

impl KernelEnv {
    /// Creates the kernel environment.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (see
    /// [`ctjam_mdp::antijam::AntijamMdp::new`]).
    pub fn new<R: Rng + ?Sized>(params: EnvParams, rng: &mut R) -> Self {
        let mdp = AntijamMdp::new(mdp_params_of(&params));
        let current_channel = rng.gen_range(0..params.num_channels());
        KernelEnv {
            params,
            mdp,
            state: MdpState::Safe(1),
            current_channel,
        }
    }

    /// The underlying MDP.
    pub fn mdp(&self) -> &AntijamMdp {
        &self.mdp
    }

    /// The (hidden) current MDP state — test/diagnostic access.
    pub fn state(&self) -> MdpState {
        self.state
    }
}

impl Environment for KernelEnv {
    fn params(&self) -> &EnvParams {
        &self.params
    }

    fn current_channel(&self) -> usize {
        self.current_channel
    }

    fn step(&mut self, decision: Decision, rng: &mut dyn rand::RngCore) -> SlotResult {
        assert!(
            decision.channel < self.params.num_channels(),
            "channel {} out of range",
            decision.channel
        );
        assert!(
            decision.power_level < self.params.num_powers(),
            "power level {} out of range",
            decision.power_level
        );
        let hopped = decision.channel != self.current_channel;
        self.current_channel = decision.channel;

        let action = MdpAction {
            hop: hopped,
            power: decision.power_level,
        };
        let s = self.mdp.state_index(self.state);
        let a = self.mdp.action_index(action);
        let (next, reward) = sample_transition(self.mdp.tabular(), s, a, rng);
        self.state = self.mdp.state_of(next);

        let outcome = match self.state {
            MdpState::Safe(_) => Outcome::Clean,
            MdpState::JammedUnsuccessfully => Outcome::JammedSurvived,
            MdpState::Jammed => Outcome::Jammed,
        };

        SlotResult {
            decision,
            outcome,
            hopped,
            power_control: decision.power_level > self.params.min_power_level(),
            reward,
            jam_action: JamAction {
                block: ChannelBlock::EMPTY,
                power: 0.0,
                locked: outcome != Outcome::Clean,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn stay(env: &KernelEnv) -> Decision {
        Decision {
            channel: env.current_channel,
            power_level: 0,
        }
    }

    #[test]
    fn staying_forever_gets_jammed_within_cycles() {
        let mut r = rng(1);
        let mut env = KernelEnv::new(EnvParams::default(), &mut r);
        let mut jams = 0;
        for _ in 0..200 {
            let d = stay(&env);
            if env.step(d, &mut r).outcome == Outcome::Jammed {
                jams += 1;
            }
        }
        // Once jammed, staying keeps you jammed (max-power mode): nearly
        // everything after discovery is J.
        assert!(jams > 150, "jams = {jams}");
    }

    #[test]
    fn hop_from_jammed_always_escapes() {
        // Eq. 14: hopping out of TJ/J lands in Safe(1) with probability 1.
        let mut r = rng(2);
        let mut env = KernelEnv::new(EnvParams::default(), &mut r);
        // Drive into J.
        loop {
            let d = stay(&env);
            if env.step(d, &mut r).outcome == Outcome::Jammed {
                break;
            }
        }
        let hop = Decision {
            channel: (env.current_channel + 5) % 16,
            power_level: 0,
        };
        let result = env.step(hop, &mut r);
        assert!(result.hopped);
        assert_eq!(result.outcome, Outcome::Clean);
        assert_eq!(env.state(), MdpState::Safe(1));
    }

    #[test]
    fn rewards_come_from_the_kernel() {
        let mut r = rng(3);
        let mut env = KernelEnv::new(EnvParams::default(), &mut r);
        let d = stay(&env);
        let result = env.step(d, &mut r);
        // Stay with power level 0 (L_p = 6): reward is −6 or −106.
        assert!(result.reward == -6.0 || result.reward == -106.0);
    }

    #[test]
    fn always_hopping_matches_eq_9_rate() {
        let mut r = rng(4);
        let mut env = KernelEnv::new(EnvParams::default(), &mut r);
        let slots = 30_000;
        let mut successes = 0;
        for _ in 0..slots {
            let d = Decision {
                channel: (env.current_channel + 4) % 16,
                power_level: 0,
            };
            if env.step(d, &mut r).outcome.is_success() {
                successes += 1;
            }
        }
        let st = successes as f64 / slots as f64;
        // From Safe(1), hopping is jammed w.p. 2/9; from TJ/J it always
        // escapes. The stationary success rate of always-hop ≈ 0.81.
        assert!((st - 0.81).abs() < 0.03, "ST = {st}");
    }
}
