#!/bin/bash
set -x
cd /root/repo
mkdir -p results
./ci.sh 2>&1 | tee /root/repo/ci_output.txt
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt
for bin in fig01_emulation_error fig02_jamming_effect fig09_time_consumption mdp_threshold_analysis fig10_goodput_utilization fig11_scheme_comparison ablation_design_choices adaptive_jammer; do
  cargo run --release -p ctjam-bench --bin $bin > results/$bin.txt 2>&1
done
CTJAM_CSV_DIR=results/csv cargo run --release -p ctjam-bench --bin fig06_07_08_sweeps > results/fig06_07_08_sweeps.txt 2>&1
cargo run --release -p ctjam-bench --bin campaign -- --out results/campaign > results/campaign.txt 2>&1
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt
echo ALL_DONE
