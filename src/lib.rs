//! # CTJam — Cross-Technology Jamming attack & defense suite
//!
//! A full Rust reproduction of *“Defending against Cross-Technology
//! Jamming in Heterogeneous IoT Systems”* (ICDCS 2022): the EmuBee
//! Wi-Fi→ZigBee signal-emulation attack, the MDP model of the jamming
//! competition, and the DQN-based hybrid frequency-hopping/power-control
//! defense, together with every substrate they need (PHY DSP, channel
//! models, a ZigBee star network, a from-scratch neural network).
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`phy`] | `ctjam-phy` | FFT, 64-QAM, O-QPSK/DSSS, OFDM, EmuBee emulation |
//! | [`channel`] | `ctjam-channel` | path loss, noise, SINR, BER/PER, link budgets |
//! | [`net`] | `ctjam-net` | frames, CSMA-CA, star topology, FH negotiation, timing |
//! | [`mdp`] | `ctjam-mdp` | the anti-jamming MDP, value/policy iteration, analysis |
//! | [`nn`] | `ctjam-nn` | matrices, batched minibatch kernels, backprop, Adam, serialization |
//! | [`dqn`] | `ctjam-dqn` | replay, target network, ε-greedy agent, batched training |
//! | [`core`] | `ctjam-core` | jammer, environments, defenders, metrics, `RunBuilder`, field sim |
//! | [`fleet`] | `ctjam-fleet` | sharded campaign engine: `EnvParams` × seed × policy grids, bit-exact at any thread count |
//! | [`serve`] | `ctjam-serve` | micro-batching TCP policy-inference server, hot-reloadable checkpoints |
//! | [`scenario`] | `ctjam-scenario` | declarative JSON scenario DSL, campaign runners, deterministic HTML reports |
//!
//! # Quickstart
//!
//! Every training, evaluation, and sweep goes through one fluent entry
//! point, [`core::runner::RunBuilder`]: configure *how* to run (sink,
//! threads, environment flavour), then say *what* to run. Train the DQN
//! defense against the sweeping EmuBee jammer and compare it with the
//! passive baseline:
//!
//! ```
//! use ctjam::core::defender::{DqnDefender, PassiveFh};
//! use ctjam::core::env::EnvParams;
//! use ctjam::core::runner::RunBuilder;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let params = EnvParams::default();
//!
//! let mut defense = DqnDefender::small_for_tests(&params, &mut rng);
//! RunBuilder::new(&params).train(&mut defense, 6_000, &mut rng);
//! defense.set_training(false);
//!
//! let rl = RunBuilder::new(&params).evaluate(&mut defense, 4_000, &mut rng);
//! let mut passive = PassiveFh::new(&params, &mut rng);
//! let psv = RunBuilder::new(&params).evaluate(&mut passive, 4_000, &mut rng);
//! assert!(rl.metrics.success_rate() > psv.metrics.success_rate());
//! ```
//!
//! To record telemetry, attach a sink; to sweep a parameter grid in
//! parallel, end with [`sweep`](core::runner::RunBuilder::sweep):
//!
//! ```no_run
//! use ctjam::core::env::EnvParams;
//! use ctjam::core::runner::{RunBuilder, SweepBudget};
//!
//! let points: Vec<EnvParams> = [50.0, 100.0, 200.0]
//!     .iter()
//!     .map(|&l_j| EnvParams { l_j, ..EnvParams::default() })
//!     .collect();
//! let metrics = RunBuilder::new(&points[0])
//!     .kernel(true) // the paper's Matlab-simulation setting
//!     .budget(SweepBudget { train_slots: 12_000, eval_slots: 20_000 })
//!     .seed(0xC7A1)
//!     .sweep(&points, |_, _| {});
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ctjam_channel as channel;
pub use ctjam_core as core;
pub use ctjam_dqn as dqn;
pub use ctjam_fleet as fleet;
pub use ctjam_mdp as mdp;
pub use ctjam_net as net;
pub use ctjam_nn as nn;
pub use ctjam_phy as phy;
pub use ctjam_scenario as scenario;
pub use ctjam_serve as serve;
