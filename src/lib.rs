//! # CTJam — Cross-Technology Jamming attack & defense suite
//!
//! A full Rust reproduction of *“Defending against Cross-Technology
//! Jamming in Heterogeneous IoT Systems”* (ICDCS 2022): the EmuBee
//! Wi-Fi→ZigBee signal-emulation attack, the MDP model of the jamming
//! competition, and the DQN-based hybrid frequency-hopping/power-control
//! defense, together with every substrate they need (PHY DSP, channel
//! models, a ZigBee star network, a from-scratch neural network).
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`phy`] | `ctjam-phy` | FFT, 64-QAM, O-QPSK/DSSS, OFDM, EmuBee emulation |
//! | [`channel`] | `ctjam-channel` | path loss, noise, SINR, BER/PER, link budgets |
//! | [`net`] | `ctjam-net` | frames, CSMA-CA, star topology, FH negotiation, timing |
//! | [`mdp`] | `ctjam-mdp` | the anti-jamming MDP, value/policy iteration, analysis |
//! | [`nn`] | `ctjam-nn` | matrices, backprop, Adam, serialization |
//! | [`dqn`] | `ctjam-dqn` | replay, target network, ε-greedy agent |
//! | [`core`] | `ctjam-core` | jammer, environments, defenders, metrics, field sim |
//!
//! # Quickstart
//!
//! Train the DQN defense against the sweeping EmuBee jammer and compare
//! it with the passive baseline:
//!
//! ```
//! use ctjam::core::defender::{DqnDefender, PassiveFh};
//! use ctjam::core::env::EnvParams;
//! use ctjam::core::runner::{evaluate, train};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let params = EnvParams::default();
//!
//! let mut defense = DqnDefender::small_for_tests(&params, &mut rng);
//! train(&params, &mut defense, 6_000, &mut rng);
//! defense.set_training(false);
//!
//! let rl = evaluate(&params, &mut defense, 4_000, &mut rng);
//! let mut passive = PassiveFh::new(&params, &mut rng);
//! let psv = evaluate(&params, &mut passive, 4_000, &mut rng);
//! assert!(rl.metrics.success_rate() > psv.metrics.success_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ctjam_channel as channel;
pub use ctjam_core as core;
pub use ctjam_dqn as dqn;
pub use ctjam_mdp as mdp;
pub use ctjam_net as net;
pub use ctjam_nn as nn;
pub use ctjam_phy as phy;
