//! Chaos/property harness for the fault-injection subsystem
//! (`ctjam-fault`): drives the full net + training stacks under seeded
//! fault schedules and asserts the three contracts every fault site must
//! honour:
//!
//! 1. **No panics, ever** — any mix of faults at any rate may degrade a
//!    run, never kill it (and recovery must keep the learner's weights
//!    finite).
//! 2. **Zero probability ⇒ bit-exact** — an attached plan whose rates
//!    are all zero reproduces the fault-free run exactly, RNG stream
//!    included. Fault injection costs nothing when it does nothing.
//! 3. **Replayability** — a failing `(seed, rates)` pair is the complete
//!    reproduction recipe: rebuilding the plan from its seed replays the
//!    identical schedule.
//!
//! The quick matrix below stays within the CI smoke budget; the
//! extended sweep is `#[ignore]`d and opts in via `--ignored`
//! (`CTJAM_CHAOS_SLOTS` scales its per-run depth).

use ctjam_core::defender::{DqnDefender, RandomFh};
use ctjam_core::env::{CompetitionEnv, EnvParams};
use ctjam_core::runner::RunBuilder;
use ctjam_fault::{FaultPlan, FaultPoint, FaultRates, FaultSite, RetryPolicy};
use ctjam_net::star::StarNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The fault mixes of the quick matrix: a light uniform drizzle, a heavy
/// uniform storm, and every site individually at certainty (the rate
/// that flushes out any "this can never happen twice in a row"
/// assumption in a recovery path).
fn fault_mixes() -> Vec<(String, FaultRates)> {
    let mut mixes = vec![
        ("uniform_0.05".to_string(), FaultRates::uniform(0.05)),
        ("uniform_0.5".to_string(), FaultRates::uniform(0.5)),
    ];
    for site in FaultSite::ALL {
        mixes.push((
            format!("only_{}", site.name()),
            FaultRates::zero().with(site, 1.0),
        ));
    }
    mixes
}

/// Contract 1: the seed × mix matrix must complete without panics, with
/// sane metrics and finite network weights, no matter what fired.
#[test]
fn fault_matrix_never_panics_and_keeps_weights_finite() {
    let params = EnvParams::default();
    let slots = 400;
    for seed in [1u64, 0xDEAD_BEEF, 42] {
        for (label, rates) in fault_mixes() {
            let mut r = rng(seed);
            let mut defender = DqnDefender::small_for_tests(&params, &mut r);
            let mut plan = FaultPlan::new(seed ^ 0x5EED, rates);
            let report =
                RunBuilder::new(&params)
                    .fault_plan(&mut plan)
                    .train(&mut defender, slots, &mut r);
            assert_eq!(
                report.metrics.slots(),
                slots as u64,
                "run under {label} (seed {seed}) lost slots"
            );
            assert!(
                report.total_reward.is_finite(),
                "non-finite reward under {label} (seed {seed})"
            );
            assert!(
                defender
                    .agent()
                    .network()
                    .flatten_params()
                    .iter()
                    .all(|w| w.is_finite()),
                "poisoned weights survived recovery under {label} (seed {seed})"
            );
            if !rates_are_zero(&report, &plan) {
                assert_eq!(
                    report.health.faults_fired,
                    plan.fired_counts().iter().sum::<u64>(),
                    "health accounting disagrees with the plan under {label}"
                );
            }
        }
    }
}

fn rates_are_zero(report: &ctjam_core::runner::EpisodeReport, plan: &FaultPlan) -> bool {
    report.health.is_clean() && plan.total_fired() == 0
}

/// Contract 2 at the runner level: a zero-rate plan is bit-exact with
/// the fault-free path — report, health, and the main RNG stream.
#[test]
fn zero_probability_faults_are_bit_exact_with_the_fault_free_run() {
    let params = EnvParams::default();
    for seed in [3u64, 0xCAFE] {
        let mut r1 = rng(seed);
        let mut d1 = DqnDefender::small_for_tests(&params, &mut r1);
        let plain = RunBuilder::new(&params).train(&mut d1, 600, &mut r1);

        let mut r2 = rng(seed);
        let mut d2 = DqnDefender::small_for_tests(&params, &mut r2);
        let mut plan = FaultPlan::new(seed, FaultRates::zero());
        let faulted = RunBuilder::new(&params)
            .fault_plan(&mut plan)
            .train(&mut d2, 600, &mut r2);

        assert_eq!(
            plain, faulted,
            "zero-rate plan changed the run (seed {seed})"
        );
        assert!(faulted.health.is_clean());
        assert_eq!(plan.total_fired(), 0);
        assert_eq!(
            r1.gen::<u64>(),
            r2.gen::<u64>(),
            "main RNG streams diverged (seed {seed})"
        );
    }
}

/// Contract 3: a `(seed, rates)` pair rebuilt from scratch replays the
/// identical faulted run — the chaos harness's failure-reproduction
/// recipe.
#[test]
fn a_faulted_run_replays_bit_exactly_from_its_seed() {
    let params = EnvParams::default();
    let rates = FaultRates::uniform(0.1);
    let run = |plan_seed: u64| {
        let mut r = rng(77);
        let mut defender = DqnDefender::small_for_tests(&params, &mut r);
        let mut plan = FaultPlan::new(plan_seed, rates);
        let report =
            RunBuilder::new(&params)
                .fault_plan(&mut plan)
                .train(&mut defender, 500, &mut r);
        (report, plan.fired_counts())
    };
    let (first, fired_first) = run(0xFA17);
    let (second, fired_second) = run(0xFA17);
    assert_eq!(first, second, "same plan seed must replay the same run");
    assert_eq!(fired_first, fired_second);
    assert!(first.health.faults_fired > 0, "the 10% mix should fire");
}

/// Network-stack property: goodput under frame corruption degrades
/// monotonically **in expectation** as the corruption rate rises. Mean
/// delivery over a bundle of seeds must be non-increasing across
/// escalating rates (per-seed wiggle is expected; the mean must not be).
#[test]
fn goodput_degrades_monotonically_in_expectation_with_corruption_rate() {
    let retry = RetryPolicy::default();
    let rates = [0.0, 0.4, 0.9];
    let mut mean_delivered = Vec::new();
    for &rate in &rates {
        let mut total = 0u64;
        for seed in 0..8u64 {
            let mut net = StarNetwork::new(4);
            let mut r = rng(1000 + seed);
            let mut plan = FaultPlan::new(
                seed,
                FaultRates::zero().with(FaultSite::FrameCorruption, rate),
            );
            for _ in 0..12 {
                total += net
                    .run_slot_with_faults(2.0, true, 0.05, &retry, &mut r, &mut plan)
                    .outcome
                    .delivered;
            }
        }
        mean_delivered.push(total as f64 / 8.0);
    }
    assert!(
        mean_delivered[0] >= mean_delivered[1] && mean_delivered[1] >= mean_delivered[2],
        "mean goodput must not rise with the corruption rate: {mean_delivered:?}"
    );
    assert!(
        mean_delivered[0] > mean_delivered[2],
        "certain corruption must actually hurt: {mean_delivered:?}"
    );
}

/// The checkpoint/resume contract end to end: a DQN training run killed
/// at slot `N` and resumed from its checkpoint reproduces the
/// uninterrupted run's metrics bit-exactly (the caller owns the RNG, so
/// the persistent env + RNG pair carries across the kill).
#[test]
fn killed_and_resumed_dqn_run_reproduces_uninterrupted_metrics() {
    let params = EnvParams::default();
    let (head_slots, tail_slots) = (400, 300);

    // Uninterrupted reference.
    let mut r = rng(0xFEED);
    let mut d = DqnDefender::small_for_tests(&params, &mut r);
    let mut env = CompetitionEnv::new(params.clone(), &mut r);
    let head = RunBuilder::new(&params).run_in(&mut env, &mut d, head_slots, &mut r);
    let tail = RunBuilder::new(&params).run_in(&mut env, &mut d, tail_slots, &mut r);

    // Killed at `head_slots`, resumed from the checkpoint file.
    let mut r2 = rng(0xFEED);
    let mut d2 = DqnDefender::small_for_tests(&params, &mut r2);
    let mut env2 = CompetitionEnv::new(params.clone(), &mut r2);
    let head2 = RunBuilder::new(&params).run_in(&mut env2, &mut d2, head_slots, &mut r2);
    assert_eq!(head, head2, "pre-kill halves must already agree");
    let path = std::env::temp_dir().join("ctjam_chaos_resume.ckpt");
    d2.save_checkpoint(&path).expect("checkpoint write");
    drop(d2); // the "kill"
    let mut resumed = DqnDefender::load_checkpoint(&path).expect("checkpoint read");
    std::fs::remove_file(&path).ok();
    let tail2 = RunBuilder::new(&params).run_in(&mut env2, &mut resumed, tail_slots, &mut r2);
    assert_eq!(
        tail, tail2,
        "resumed run diverged from the uninterrupted reference"
    );
}

/// Contract 1 at fleet scale: a faulted campaign spread across an
/// oversubscribed shard pool may degrade episodes, never kill the pool.
/// Covers a frozen-policy campaign under the light drizzle, the
/// every-slot deadline-overrun mix, and a (small) training campaign
/// under the drizzle — the three fault regimes with distinct recovery
/// paths.
#[test]
fn faulted_fleet_campaigns_never_panic_across_the_pool() {
    use ctjam_core::runner::SweepBudget;
    use ctjam_fault::FaultSite;
    use ctjam_fleet::{CampaignFaults, CampaignPolicy, CampaignSpec, Fleet};

    let points: Vec<EnvParams> = [50.0, 200.0]
        .iter()
        .map(|&l_j| EnvParams {
            l_j,
            ..EnvParams::default()
        })
        .collect();
    let mixes = [
        ("uniform_0.2", FaultRates::uniform(0.2)),
        (
            "only_deadline_overrun_1.0",
            FaultRates::zero().with(FaultSite::DeadlineOverrun, 1.0),
        ),
    ];

    for (label, rates) in mixes {
        let spec = CampaignSpec {
            name: format!("chaos_fleet_{label}"),
            points: points.clone(),
            seeds: vec![1, 2, 3],
            policy: CampaignPolicy::RandomFh,
            slots: 200,
            kernel: false,
            base_seed: 0xC4A0_5000,
            faults: Some(CampaignFaults {
                seed: 0xFA17,
                rates,
            }),
        };
        let result = Fleet::new().threads(4).run(&spec);
        assert_eq!(result.outcomes.len(), spec.episodes());
        assert_eq!(
            result.metrics.slots(),
            (spec.episodes() * spec.slots) as u64,
            "campaign under {label} lost slots"
        );
        assert!(
            result.health.faults_fired > 0,
            "{label} must fire somewhere across the campaign"
        );
        for o in &result.outcomes {
            assert!(
                o.total_reward.is_finite(),
                "non-finite reward in episode {} under {label}",
                o.episode
            );
        }
    }

    // Training campaign: every episode trains its own DQN under the
    // drizzle, then evaluates — recovery must keep every episode alive.
    let spec = CampaignSpec {
        name: "chaos_fleet_train".into(),
        points: vec![points[0].clone()],
        seeds: vec![1, 2],
        policy: CampaignPolicy::TrainDqn(SweepBudget {
            train_slots: 200,
            eval_slots: 150,
        }),
        slots: 150,
        kernel: false,
        base_seed: 0xC4A0_5001,
        faults: Some(CampaignFaults {
            seed: 0xFA18,
            rates: FaultRates::uniform(0.2),
        }),
    };
    let result = Fleet::new().threads(4).run(&spec);
    assert_eq!(result.outcomes.len(), 2);
    assert_eq!(result.metrics.slots(), 2 * 150);
    assert!(result.health.faults_fired > 0);
}

/// Contract 2 at fleet scale, twice over: a campaign carrying a
/// zero-rate fault plan is bit-exact with the same campaign carrying no
/// plan at all, and the 8-worker fleet path is bit-exact with a plain
/// sequential loop over `RunBuilder` — the fleet machinery (shard pool,
/// per-shard sinks, telemetry merge) adds exactly nothing to the
/// numbers.
#[test]
fn zero_rate_fleet_campaign_is_bit_exact_with_the_non_fleet_path() {
    use ctjam_fleet::{CampaignFaults, CampaignPolicy, CampaignSpec, Fleet};
    use ctjam_telemetry::ShardSink;

    let points: Vec<EnvParams> = [50.0, 200.0]
        .iter()
        .map(|&l_j| EnvParams {
            l_j,
            ..EnvParams::default()
        })
        .collect();
    let spec = CampaignSpec {
        name: "chaos_zero_rate".into(),
        points,
        seeds: vec![7, 8, 9],
        policy: CampaignPolicy::RandomFh,
        slots: 250,
        kernel: false,
        base_seed: 0x2E80_4A7E,
        faults: Some(CampaignFaults {
            seed: 0xFA19,
            rates: FaultRates::zero(),
        }),
    };
    let mut plain_spec = spec.clone();
    plain_spec.faults = None;

    let faulted = Fleet::new().threads(8).run(&spec);
    let plain = Fleet::new().threads(8).run(&plain_spec);
    assert_eq!(
        faulted.outcomes, plain.outcomes,
        "a zero-rate campaign fault plan changed episode outcomes"
    );
    assert_eq!(
        faulted.telemetry.to_json().to_string_compact(),
        plain.telemetry.to_json().to_string_compact(),
        "a zero-rate campaign fault plan changed merged telemetry"
    );
    assert!(faulted.health.is_clean());

    // The hand-rolled non-fleet reference: one sequential loop over the
    // grid, same per-episode seed derivation, one shared sink.
    let mut reference_sink = ShardSink::new();
    for e in 0..plain_spec.episodes() {
        let point = plain_spec.episode_point(e);
        let mut r = rng(plain_spec.episode_seed(e));
        let mut defender = RandomFh::new(point, &mut r);
        let report = RunBuilder::new(point)
            .kernel(plain_spec.kernel)
            .sink(&mut reference_sink)
            .evaluate(&mut defender, plain_spec.slots, &mut r);
        let outcome = &plain.outcomes[e];
        assert_eq!(
            outcome.metrics, report.metrics,
            "fleet episode {e} diverged from the sequential reference"
        );
        assert_eq!(outcome.total_reward, report.total_reward);
        assert_eq!(outcome.health, report.health);
    }
    assert_eq!(
        plain.telemetry.to_json().to_string_compact(),
        reference_sink.to_json().to_string_compact(),
        "fleet-merged telemetry diverged from the sequential single-sink reference"
    );
}

/// The fleet's kill/resume contract end to end through disk: a campaign
/// killed mid-run, checkpointed from its shard progress, reloaded, and
/// resumed on a *different* worker count reproduces the uninterrupted
/// campaign bit-exactly — outcomes, merged metrics, and telemetry JSON.
#[test]
fn killed_fleet_campaign_resumes_bit_exactly_from_checkpointed_progress() {
    use ctjam_fleet::{CampaignFaults, CampaignPolicy, CampaignProgress, CampaignSpec, Fleet};

    let points: Vec<EnvParams> = [50.0, 100.0]
        .iter()
        .map(|&l_j| EnvParams {
            l_j,
            ..EnvParams::default()
        })
        .collect();
    let spec = CampaignSpec {
        name: "chaos_kill_resume".into(),
        points,
        seeds: vec![4, 5, 6],
        policy: CampaignPolicy::RandomFh,
        slots: 200,
        kernel: false,
        base_seed: 0x0DD0_5EED,
        faults: Some(CampaignFaults {
            seed: 0xFA20,
            rates: FaultRates::uniform(0.1),
        }),
    };

    let full = Fleet::new().threads(2).run(&spec);

    // Kill after 4 of 6 episodes, checkpoint through disk, resume wider.
    let progress = Fleet::new().threads(2).run_partial(&spec, 4);
    let path = std::env::temp_dir().join("ctjam_chaos_fleet_resume.ckpt");
    progress.save(&path).expect("progress save");
    let reloaded = CampaignProgress::load(&path).expect("progress load");
    std::fs::remove_file(&path).ok();
    let resumed = Fleet::new().threads(8).resume(&spec, &reloaded);

    assert_eq!(
        resumed.outcomes, full.outcomes,
        "resumed campaign outcomes diverged from the uninterrupted run"
    );
    assert_eq!(resumed.metrics, full.metrics);
    assert_eq!(resumed.health, full.health);
    assert_eq!(
        resumed.telemetry.to_json().to_string_compact(),
        full.telemetry.to_json().to_string_compact(),
        "resumed merged telemetry diverged from the uninterrupted run"
    );
}

/// Extended sweep: a much wider seed × mix grid at a configurable depth.
/// Opt in with `cargo test --test chaos -- --ignored`; scale with
/// `CTJAM_CHAOS_SLOTS` (default 2000 slots per run).
#[test]
#[ignore = "slow chaos sweep — run with --ignored, scale via CTJAM_CHAOS_SLOTS"]
fn extended_chaos_sweep() {
    let slots: usize = std::env::var("CTJAM_CHAOS_SLOTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let params = EnvParams::default();
    for seed in 0..10u64 {
        for (label, rates) in fault_mixes() {
            let mut r = rng(seed);
            let mut defender = DqnDefender::small_for_tests(&params, &mut r);
            let mut plan = FaultPlan::new(seed.wrapping_mul(0x9E37_79B9), rates);
            let report =
                RunBuilder::new(&params)
                    .fault_plan(&mut plan)
                    .train(&mut defender, slots, &mut r);
            assert_eq!(
                report.metrics.slots(),
                slots as u64,
                "{label} (seed {seed})"
            );
            assert!(
                defender
                    .agent()
                    .network()
                    .flatten_params()
                    .iter()
                    .all(|w| w.is_finite()),
                "non-finite weights under {label} (seed {seed})"
            );
        }
    }

    // Frame-mutation stress on the MAC layer: a RandomFh-style sanity
    // check that the star network also survives every mix at depth.
    let retry = RetryPolicy::default();
    for seed in 0..10u64 {
        for (label, rates) in fault_mixes() {
            let mut net = StarNetwork::new(5);
            let mut r = rng(seed ^ 0xABCD);
            let mut plan = FaultPlan::new(seed, rates);
            let mut hopper = RandomFh::new(&params, &mut r);
            for _ in 0..40 {
                use ctjam_core::defender::Defender;
                let d = hopper.decide(&mut r);
                let link_up = d.channel.is_multiple_of(2); // arbitrary but seeded
                let out = net.run_slot_with_faults(2.0, link_up, 0.1, &retry, &mut r, &mut plan);
                assert!(out.outcome.overhead_s.is_finite(), "{label} (seed {seed})");
            }
        }
    }
}
