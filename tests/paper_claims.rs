//! The paper's headline claims, checked at reduced (CI-friendly) budgets.
//!
//! Each test pins one quantitative anchor from the paper; the full-budget
//! versions live in the `ctjam-bench` figure binaries.

use ctjam::core::defender::{MdpOracle, NoDefense, PassiveFh, RandomFh};
use ctjam::core::env::EnvParams;
use ctjam::core::jammer::JammerMode;
use ctjam::core::runner::{evaluate, train_and_evaluate_kernel};
use ctjam::mdp::analysis::{
    check_threshold_structure, solve_threshold, thresholds_vs_lh, thresholds_vs_lj,
    thresholds_vs_sweep_cycle,
};
use ctjam::mdp::antijam::AntijamParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// §IV.C.1 / Fig. 6(a): with a negligible jamming loss the agent never
/// defends and the success rate collapses to ~0.
#[test]
fn tiny_lj_means_no_defense_and_zero_st() {
    let params = EnvParams {
        l_j: 10.0,
        ..EnvParams::default()
    };
    let mut rng = StdRng::seed_from_u64(1);
    let (_, report) = train_and_evaluate_kernel(&params, 10_000, 6_000, &mut rng);
    assert!(
        report.metrics.success_rate() < 0.2,
        "ST should collapse when L_J <= L_p: {}",
        report.metrics.success_rate()
    );
}

/// Fig. 6(d): once the Tx power range reaches the jammer's maximum
/// (lower bound ≥ 11 → top level ≥ 20), power control alone wins and
/// ST ≈ 100%.
#[test]
fn high_power_floor_gives_full_st() {
    let params = EnvParams::default().with_tx_lower_bound(11);
    let mut rng = StdRng::seed_from_u64(2);
    let (_, report) = train_and_evaluate_kernel(&params, 6_000, 4_000, &mut rng);
    assert!(
        report.metrics.success_rate() > 0.95,
        "ST should reach ~100% at lb = 11: {}",
        report.metrics.success_rate()
    );
}

/// Fig. 11(a)'s ordering at the slot level: random > passive > nothing.
#[test]
fn baseline_ordering_matches_paper() {
    let params = EnvParams::default();
    let mut rng = StdRng::seed_from_u64(3);
    let mut none = NoDefense::new(&params, &mut rng);
    let mut psv = PassiveFh::new(&params, &mut rng);
    let mut rnd = RandomFh::new(&params, &mut rng);
    let st_none = evaluate(&params, &mut none, 8_000, &mut rng)
        .metrics
        .success_rate();
    let st_psv = evaluate(&params, &mut psv, 8_000, &mut rng)
        .metrics
        .success_rate();
    let st_rnd = evaluate(&params, &mut rnd, 8_000, &mut rng)
        .metrics
        .success_rate();
    assert!(
        st_rnd > st_psv && st_psv > st_none,
        "{st_rnd} > {st_psv} > {st_none}"
    );
    // The paper's field numbers put passive near 37.6% and random near
    // 54.1% of clean goodput; our slot-level equivalents should be in
    // the same neighbourhoods.
    assert!((0.25..0.50).contains(&st_psv), "passive ST {st_psv}");
    assert!((0.35..0.60).contains(&st_rnd), "random ST {st_rnd}");
}

/// Theorem III.4 over a parameter grid: the optimal policy has the
/// threshold structure ("once hopping is preferred at some safe state
/// `n`, it stays preferred for every larger `n`") on *every*
/// `(L_J, L_H, ⌈K/m⌉)` combination of the grid, not just the paper's
/// default point, and the threshold always lands inside `1..=⌈K/m⌉`.
#[test]
fn threshold_structure_holds_across_the_parameter_grid() {
    for &l_j in &[60.0, 100.0, 300.0] {
        for &l_h in &[20.0, 50.0, 80.0] {
            for &sweep_cycle in &[3usize, 4, 6] {
                let params = AntijamParams {
                    l_j,
                    l_h,
                    sweep_cycle,
                    ..AntijamParams::default()
                };
                let (mdp, q, threshold) = solve_threshold(params);
                assert!(
                    check_threshold_structure(&mdp, &q),
                    "Thm III.4 violated at L_J={l_j}, L_H={l_h}, cycle={sweep_cycle}"
                );
                assert!(
                    (1..=sweep_cycle).contains(&threshold),
                    "threshold {threshold} outside 1..={sweep_cycle} \
                     at L_J={l_j}, L_H={l_h}"
                );
            }
        }
    }
}

/// Theorem III.5's three movement directions: the hop threshold is
/// non-increasing in `L_J` (worse jamming → hop sooner), non-decreasing
/// in `L_H` (pricier hops → hop later), and non-decreasing in the sweep
/// cycle `⌈K/m⌉` (a slower jammer → a fresh channel stays safe longer).
#[test]
fn threshold_moves_in_the_directions_of_theorem_iii5() {
    let base = AntijamParams::default();

    let vs_lj = thresholds_vs_lj(&base, &[20.0, 60.0, 100.0, 400.0, 1000.0]);
    assert!(
        vs_lj.windows(2).all(|w| w[0] >= w[1]),
        "threshold must not rise with L_J: {vs_lj:?}"
    );

    let vs_lh = thresholds_vs_lh(&base, &[5.0, 20.0, 50.0, 120.0]);
    assert!(
        vs_lh.windows(2).all(|w| w[0] <= w[1]),
        "threshold must not fall with L_H: {vs_lh:?}"
    );
    assert!(
        vs_lh[0] < vs_lh[3],
        "threshold must actually move with L_H: {vs_lh:?}"
    );

    let vs_cycle = thresholds_vs_sweep_cycle(&base, &[2, 4, 8]);
    assert!(
        vs_cycle.windows(2).all(|w| w[0] <= w[1]),
        "threshold must not fall with the sweep cycle: {vs_cycle:?}"
    );
}

/// Theorem III.5: the hop threshold falls as L_J rises.
#[test]
fn threshold_falls_with_lj() {
    let base = AntijamParams {
        jammer_mode: ctjam::mdp::antijam::JammerMode::RandomPower,
        ..AntijamParams::default()
    };
    let ts = thresholds_vs_lj(&base, &[20.0, 100.0, 1000.0]);
    assert!(ts[0] >= ts[1] && ts[1] >= ts[2], "{ts:?}");
    assert!(ts[0] > ts[2], "threshold must actually move: {ts:?}");
}

/// §III.B: the optimal policy is a threshold policy on every instance we
/// care about, and the privileged oracle beats the passive baseline.
#[test]
fn oracle_plays_threshold_policy_and_beats_passive() {
    let params = EnvParams::default();
    let (mdp, q, threshold) = solve_threshold(ctjam::core::kernel::mdp_params_of(&params));
    assert!(ctjam::mdp::analysis::check_threshold_structure(&mdp, &q));
    assert!((1..=mdp.sweep_cycle()).contains(&threshold));

    let mut rng = StdRng::seed_from_u64(4);
    let mut oracle = MdpOracle::new(&params, &mut rng);
    let mut passive = PassiveFh::new(&params, &mut rng);
    let st_oracle = evaluate(&params, &mut oracle, 8_000, &mut rng)
        .metrics
        .success_rate();
    let st_passive = evaluate(&params, &mut passive, 8_000, &mut rng)
        .metrics
        .success_rate();
    assert!(
        st_oracle > st_passive,
        "oracle {st_oracle} vs passive {st_passive}"
    );
}

/// §II.C: the random-power ("hidden") jammer is less damaging to a static
/// victim than the max-power jammer, but harder to out-power.
#[test]
fn jammer_modes_differ_as_described() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut max_params = EnvParams::default();
    max_params.adversary.mode = JammerMode::MaxPower;
    let mut rnd_params = EnvParams::default();
    rnd_params.adversary.mode = JammerMode::RandomPower;

    // A mid-power static defender survives some duels only in random mode.
    let mut static_mid = NoDefense::new(&max_params, &mut rng);
    let st_max = evaluate(&max_params, &mut static_mid, 4_000, &mut rng)
        .metrics
        .success_rate();
    let mut static_mid = NoDefense::new(&rnd_params, &mut rng);
    let st_rnd = evaluate(&rnd_params, &mut static_mid, 4_000, &mut rng)
        .metrics
        .success_rate();
    // NoDefense uses the minimum power level (6 < 11), so both collapse —
    // but the TJ share differs only when power can tie. Use the success
    // rates as a smoke check that both modes pin a static victim.
    assert!(st_max < 0.2 && st_rnd < 0.2, "{st_max} {st_rnd}");
}
