//! End-to-end integration: train → serialize → deploy → defend.

use ctjam::core::defender::{DqnDefender, NoDefense, PassiveFh};
use ctjam::core::env::EnvParams;
use ctjam::core::field::{FieldConfig, FieldExperiment};
use ctjam::core::runner::RunBuilder;
use ctjam::nn::serialize::{deployed_kb, from_bytes, to_bytes};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn trained_dqn_beats_passive_baseline() {
    let mut rng = StdRng::seed_from_u64(1);
    let params = EnvParams::default();
    let mut defense = DqnDefender::small_for_tests(&params, &mut rng);
    RunBuilder::new(&params).train(&mut defense, 6_000, &mut rng);
    defense.set_training(false);
    let rl = RunBuilder::new(&params).evaluate(&mut defense, 4_000, &mut rng);

    let mut passive = PassiveFh::new(&params, &mut rng);
    let psv = RunBuilder::new(&params).evaluate(&mut passive, 4_000, &mut rng);

    assert!(
        rl.metrics.success_rate() > psv.metrics.success_rate() + 0.05,
        "RL {:.3} vs passive {:.3}",
        rl.metrics.success_rate(),
        psv.metrics.success_rate()
    );
}

#[test]
fn trained_network_survives_deployment_roundtrip() {
    // The paper's workflow: train offline, serialize the matrices
    // (~42.7 KB of f32), load them onto the hub.
    let mut rng = StdRng::seed_from_u64(2);
    let params = EnvParams::default();
    let mut defense = DqnDefender::small_for_tests(&params, &mut rng);
    RunBuilder::new(&params).train(&mut defense, 3_000, &mut rng);
    defense.set_training(false);

    let blob = to_bytes(defense.agent().network());
    let restored = from_bytes(&blob).expect("weight blob must parse");
    assert_eq!(restored.shape(), defense.agent().network().shape());
    assert!(
        deployed_kb(&restored) < 60.0,
        "deployed network should stay in the paper's tens-of-KB class"
    );

    // The redeployed network must make (approximately) the same
    // decisions: compare greedy actions over a batch of observations.
    let mut redeployed = DqnDefender::small_for_tests(&params, &mut rng);
    redeployed.agent_mut().load_network(&restored);
    redeployed.set_training(false);
    let obs_len = defense.agent().config().input_size();
    let mut agree = 0;
    let total = 200;
    for i in 0..total {
        let obs: Vec<f64> = (0..obs_len)
            .map(|j| ((i * 31 + j * 7) % 10) as f64 / 10.0)
            .collect();
        if defense.agent().act_greedy(&obs) == redeployed.agent().act_greedy(&obs) {
            agree += 1;
        }
    }
    assert!(
        agree >= total * 95 / 100,
        "only {agree}/{total} greedy decisions survived the f32 roundtrip"
    );
}

#[test]
fn field_experiment_defense_recovers_goodput() {
    let mut rng = StdRng::seed_from_u64(3);
    let config = FieldConfig::default();

    // Undefended floor.
    let mut undefended = FieldExperiment::new(
        config.clone(),
        NoDefense::new(&config.env, &mut rng),
        &mut rng,
    );
    let floor = undefended.run(40, &mut rng);

    // Small trained DQN deployed into the field.
    let mut defense = DqnDefender::small_for_tests(&config.env, &mut rng);
    RunBuilder::new(&config.env).train(&mut defense, 6_000, &mut rng);
    defense.set_training(false);
    let mut defended = FieldExperiment::new(config.clone(), defense, &mut rng);
    let report = defended.run(40, &mut rng);

    assert!(
        report.packets_per_slot() > 1.5 * floor.packets_per_slot(),
        "defense {:.0} pkts/slot vs floor {:.0}",
        report.packets_per_slot(),
        floor.packets_per_slot()
    );
}
