//! Closing the loop: the stationary analysis of the MDP chain must agree
//! with what the kernel simulator actually produces — math vs Monte
//! Carlo over the same model.

use ctjam::core::defender::{Defender, MdpOracle};
use ctjam::core::env::EnvParams;
use ctjam::core::kernel::{mdp_params_of, KernelEnv};
use ctjam::core::runner::RunBuilder;
use ctjam::mdp::antijam::AntijamMdp;
use ctjam::mdp::solve::value_iteration::value_iteration;
use ctjam::mdp::stationary::analyze_policy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the exact MDP policy in the kernel environment and compares the
/// measured ST/AH against the stationary-distribution prediction.
#[test]
fn kernel_simulation_matches_stationary_prediction() {
    let params = EnvParams::default();
    let mdp = AntijamMdp::new(mdp_params_of(&params));
    let solution = value_iteration(mdp.tabular(), 0.9, 1e-10, 100_000);
    let predicted = analyze_policy(&mdp, &solution.policy);

    let mut rng = StdRng::seed_from_u64(7);
    let mut env = KernelEnv::new(params.clone(), &mut rng);
    let mut oracle = MdpOracle::new(&params, &mut rng);
    let slots = 60_000;
    let report = RunBuilder::new(&params).run_in(&mut env, &mut oracle, slots, &mut rng);

    let st = report.metrics.success_rate();
    let ah = report.metrics.fh_adoption_rate();
    assert!(
        (st - predicted.success_rate).abs() < 0.02,
        "simulated ST {st} vs analytic {}",
        predicted.success_rate
    );
    assert!(
        (ah - predicted.fh_adoption_rate).abs() < 0.02,
        "simulated AH {ah} vs analytic {}",
        predicted.fh_adoption_rate
    );
    assert!(
        (report.mean_reward() - predicted.mean_reward).abs() < 1.5,
        "simulated mean reward {} vs analytic {}",
        report.mean_reward(),
        predicted.mean_reward
    );
}

/// The analytic chain also predicts the always-hop strategy played by a
/// dumb defender in the kernel env.
#[test]
fn always_hop_matches_analytic_nine_elevenths() {
    struct AlwaysHop {
        num_channels: usize,
    }
    impl Defender for AlwaysHop {
        fn name(&self) -> &str {
            "always hop"
        }
        fn decide(&mut self, rng: &mut dyn rand::RngCore) -> ctjam::core::env::Decision {
            use rand::Rng as _;
            // Hop by a random nonzero offset each slot.
            ctjam::core::env::Decision {
                channel: rng.gen_range(0..self.num_channels),
                power_level: 0,
            }
        }
        fn feedback(
            &mut self,
            _result: &ctjam::core::env::SlotResult,
            _rng: &mut dyn rand::RngCore,
        ) {
        }
    }

    let params = EnvParams::default();
    let mut rng = StdRng::seed_from_u64(11);
    let mut env = KernelEnv::new(params.clone(), &mut rng);
    let mut defender = AlwaysHop { num_channels: 16 };
    let report = RunBuilder::new(&params).run_in(&mut env, &mut defender, 60_000, &mut rng);
    // Hand calculation (and `stationary` unit test): ST = 9/11 ≈ 0.818.
    // A uniformly random channel stays put 1/16 of the time, so the
    // realized rate sits slightly below the pure always-hop bound.
    let st = report.metrics.success_rate();
    assert!(
        (0.74..=0.84).contains(&st),
        "always-hop ST {st} out of the predicted band"
    );
}
