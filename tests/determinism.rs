//! Cross-thread determinism and deterministic replay.
//!
//! Sweep results must be a pure function of `(points, budget, base_seed)`:
//! every point derives its own `StdRng` from [`point_seed`], so neither
//! the worker-thread count nor scheduling order may change a single bit
//! of the output. The replay subsystem leans on exactly this property —
//! a captured [`EpisodeRecord`] re-runs one point in isolation and must
//! land on identical [`Metrics`].

use ctjam_core::env::EnvParams;
use ctjam_core::env::EnvParams as Params;
use ctjam_core::runner::{
    capture_sweep, point_seed, replay, replay_kernel, RunBuilder, SweepBudget,
};

/// [`RunBuilder`]-driven kernel sweep with an explicit thread count.
fn sweep_kernel_with_threads(
    points: &[Params],
    budget: SweepBudget,
    base_seed: u64,
    threads: usize,
) -> Vec<ctjam_core::metrics::Metrics> {
    RunBuilder::new(&points[0])
        .kernel(true)
        .budget(budget)
        .seed(base_seed)
        .threads(threads)
        .sweep(points, |_, _| {})
}

/// [`RunBuilder`]-driven concrete-environment sweep with an explicit
/// thread count.
fn sweep_with_threads(
    points: &[Params],
    budget: SweepBudget,
    base_seed: u64,
    threads: usize,
) -> Vec<ctjam_core::metrics::Metrics> {
    RunBuilder::new(&points[0])
        .budget(budget)
        .seed(base_seed)
        .threads(threads)
        .sweep(points, |_, _| {})
}

/// Small but non-trivial sweep: three points that differ in the loss
/// landscape so any cross-point state leakage would show up as a
/// mismatch somewhere.
fn test_points() -> Vec<EnvParams> {
    [50.0, 100.0, 200.0]
        .iter()
        .map(|&l_j| EnvParams {
            l_j,
            ..EnvParams::default()
        })
        .collect()
}

/// Budget small enough for a test, large enough that the DQN actually
/// trains (replay buffer fills, epsilon decays, target net syncs).
fn test_budget() -> SweepBudget {
    SweepBudget {
        train_slots: 300,
        eval_slots: 400,
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(2)
        .max(2)
}

#[test]
fn kernel_sweep_is_thread_count_invariant() {
    let points = test_points();
    let budget = test_budget();
    let serial = sweep_kernel_with_threads(&points, budget, 0xD5EA_D5EA, 1);
    let parallel = sweep_kernel_with_threads(&points, budget, 0xD5EA_D5EA, available_threads());
    assert_eq!(
        serial, parallel,
        "kernel sweep metrics changed with the worker-thread count"
    );
}

#[test]
fn concrete_sweep_is_thread_count_invariant() {
    let points = test_points();
    let budget = SweepBudget {
        train_slots: 150,
        eval_slots: 200,
    };
    let serial = sweep_with_threads(&points, budget, 7, 1);
    let parallel = sweep_with_threads(&points, budget, 7, available_threads());
    assert_eq!(
        serial, parallel,
        "concrete-env sweep metrics changed with the worker-thread count"
    );
}

#[test]
fn captured_kernel_sweep_replays_bit_exactly() {
    let points = test_points();
    let budget = test_budget();
    let base_seed = 0xC7A1;

    let metrics = sweep_kernel_with_threads(&points, budget, base_seed, available_threads());
    let trace = capture_sweep("determinism_test", &points, budget, base_seed);
    assert_eq!(trace.episodes.len(), points.len());

    for (record, (params, original)) in trace.episodes.iter().zip(points.iter().zip(&metrics)) {
        let replayed = replay_kernel(params, record);
        assert_eq!(
            replayed.metrics, *original,
            "replay of {} diverged from the live sweep",
            record.label
        );
    }
}

#[test]
fn captured_concrete_sweep_replays_bit_exactly() {
    let points = test_points();
    let budget = SweepBudget {
        train_slots: 150,
        eval_slots: 200,
    };
    let base_seed = 42;

    let metrics = sweep_with_threads(&points, budget, base_seed, available_threads());
    let trace = capture_sweep("determinism_test_concrete", &points, budget, base_seed);

    for (record, (params, original)) in trace.episodes.iter().zip(points.iter().zip(&metrics)) {
        let replayed = replay(params, record);
        assert_eq!(
            replayed.metrics, *original,
            "replay of {} diverged from the live sweep",
            record.label
        );
    }
}

#[test]
fn point_seeds_are_stable_and_distinct() {
    // Index 0 always reuses the base seed so single-point runs keep
    // their historical results.
    assert_eq!(point_seed(0xABCD, 0), 0xABCD);
    // Seeds must stay distinct across any realistic sweep length;
    // a collision would silently duplicate a data point.
    let seeds: std::collections::HashSet<u64> = (0..1024).map(|i| point_seed(0xABCD, i)).collect();
    assert_eq!(seeds.len(), 1024);
}

#[test]
fn capture_is_a_pure_function_of_its_inputs() {
    let points = test_points();
    let budget = test_budget();
    let a = capture_sweep("twice", &points, budget, 99)
        .to_json()
        .to_string_pretty();
    let b = capture_sweep("twice", &points, budget, 99)
        .to_json()
        .to_string_pretty();
    assert_eq!(a, b, "capture_sweep must be deterministic");
}

/// The batched minibatch kernels must reproduce, bit for bit, the
/// metrics the per-sample training loop produced before they existed.
/// The golden strings below were captured on the pre-batching tree
/// (per-sample `train_step`, `ReplayBuffer::sample`) with these exact
/// seeds; any accumulation-order drift in the batched path shows up
/// here as a counter mismatch long before it corrupts a paper figure.
#[test]
fn batched_training_reproduces_pre_batching_golden_metrics() {
    use ctjam_core::defender::DqnDefender;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let params = EnvParams::default();

    let mut rng = StdRng::seed_from_u64(0xBA7C4ED);
    let mut defender = DqnDefender::small_for_tests(&params, &mut rng);
    let report = RunBuilder::new(&params).train(&mut defender, 6_000, &mut rng);
    assert_eq!(
        format!("{:?}", report.metrics),
        "Metrics { slots: 6000, successes: 3714, fh_adopted: 4840, \
         fh_successes: 3337, pc_adopted: 4645, pc_successes: 2918, \
         jammed: 2286, jammed_survived: 0, power_level_sum: 18822 }",
        "small_for_tests training drifted from the pre-batching baseline"
    );
    assert_eq!(report.total_reward, -525_422.0);

    let mut rng = StdRng::seed_from_u64(0x0D15EA5E);
    let mut defender = DqnDefender::paper_default(&params, &mut rng);
    let report = RunBuilder::new(&params).train(&mut defender, 2_000, &mut rng);
    assert_eq!(
        format!("{:?}", report.metrics),
        "Metrics { slots: 2000, successes: 1352, fh_adopted: 1747, \
         fh_successes: 1249, pc_adopted: 1746, pc_successes: 1180, \
         jammed: 648, jammed_survived: 0, power_level_sum: 8318 }",
        "paper_default training drifted from the pre-batching baseline"
    );
    assert_eq!(report.total_reward, -172_468.0);
}

/// The fleet campaign engine's headline contract: a [`CampaignSpec`] is a
/// pure function of its contents, independent of how many worker threads
/// execute it or which shard steals which episode. Every episode derives
/// its RNG stream from `(base_seed, point index, replicate seed)` via
/// chained SplitMix64, results are keyed by episode index, and telemetry
/// reduction uses the mergeable `ShardSink` — so 1, 2, and 8 workers must
/// produce identical per-episode goodput vectors, identical outcome
/// records, and byte-identical merged-telemetry JSON, for every base
/// seed. On this container the 2- and 8-worker runs are oversubscribed
/// (1 hardware thread), which is exactly the hostile-scheduling regime
/// the contract must survive.
#[test]
fn fleet_campaign_is_thread_count_invariant() {
    use ctjam_core::defender::DqnDefender;
    use ctjam_dqn::policy::GreedyPolicy;
    use ctjam_fleet::{CampaignPolicy, CampaignSpec, Fleet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    let points: Vec<EnvParams> = [50.0, 200.0]
        .iter()
        .map(|&l_j| EnvParams {
            l_j,
            ..EnvParams::default()
        })
        .collect();

    for base_seed in [0xF1EE_7001_u64, 0xF1EE_7002, 0xF1EE_7003] {
        let mut rng = StdRng::seed_from_u64(base_seed);
        let defender = DqnDefender::small_for_tests(&points[0], &mut rng);
        let policy = Arc::new(GreedyPolicy::from_agent(defender.agent()));
        let spec = CampaignSpec {
            name: format!("determinism_{base_seed:#x}"),
            points: points.clone(),
            seeds: vec![1, 2, 3],
            policy: CampaignPolicy::SharedGreedy(policy),
            slots: 300,
            kernel: false,
            base_seed,
            faults: None,
        };

        let reference = Fleet::new().threads(1).run(&spec);
        let ref_goodput: Vec<u64> = reference
            .goodput_vector()
            .iter()
            .map(|g| g.to_bits())
            .collect();
        let ref_telemetry = reference.telemetry.to_json().to_string_compact();
        assert_eq!(reference.outcomes.len(), spec.episodes());

        for threads in [2usize, 8] {
            let run = Fleet::new().threads(threads).run(&spec);
            let goodput: Vec<u64> = run.goodput_vector().iter().map(|g| g.to_bits()).collect();
            assert_eq!(
                ref_goodput, goodput,
                "per-episode goodput changed between 1 and {threads} workers \
                 (base_seed {base_seed:#x})"
            );
            assert_eq!(
                reference.outcomes, run.outcomes,
                "episode outcomes changed between 1 and {threads} workers \
                 (base_seed {base_seed:#x})"
            );
            assert_eq!(
                reference.metrics, run.metrics,
                "merged campaign metrics changed between 1 and {threads} workers \
                 (base_seed {base_seed:#x})"
            );
            assert_eq!(
                ref_telemetry,
                run.telemetry.to_json().to_string_compact(),
                "merged telemetry JSON changed between 1 and {threads} workers \
                 (base_seed {base_seed:#x})"
            );
        }
    }
}

/// A zero-budget energy jammer must be indistinguishable from no
/// adversary at all — not just outcome-equal but RNG-stream-equal: the
/// zero-capacity config builds the null adversary outright, constructing
/// no inner jammer and drawing nothing, so the two runs walk identical
/// trajectories and leave the caller's RNG in the identical state.
#[test]
fn zero_budget_energy_jammer_is_the_no_jammer() {
    use ctjam_core::adversary::AdversaryConfig;
    use ctjam_core::defender::RandomFh;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let none = EnvParams {
        adversary: AdversaryConfig::none(),
        ..EnvParams::default()
    };
    let drained = EnvParams {
        adversary: AdversaryConfig::reactive(4.0).energy_budget(0.0, 3.0),
        ..EnvParams::default()
    };

    let mut r1 = StdRng::seed_from_u64(0x0E06_B067);
    let mut d1 = RandomFh::new(&none, &mut r1);
    let a = RunBuilder::new(&none).run(&mut d1, 1_500, &mut r1);

    let mut r2 = StdRng::seed_from_u64(0x0E06_B067);
    let mut d2 = RandomFh::new(&drained, &mut r2);
    let b = RunBuilder::new(&drained).run(&mut d2, 1_500, &mut r2);

    assert_eq!(a, b, "a drained energy jammer must act like no jammer");
    assert_eq!(a.metrics.jam_rate(), 0.0);
    assert_eq!(
        r1.gen::<u64>(),
        r2.gen::<u64>(),
        "the RNG streams must stay aligned past the run"
    );
}

/// The adversary zoo rides through the fleet engine unchanged: a
/// campaign whose grid spans every zoo member (including the decoy-baiting
/// defender wrapper, whose extra RNG draws must stay inside its own
/// episode streams) produces bit-identical goodput at 1, 2 and 8 workers.
#[test]
fn adversary_zoo_campaign_is_thread_count_invariant() {
    use ctjam_core::adaptive::PredictorKind;
    use ctjam_core::adversary::AdversaryConfig;
    use ctjam_fleet::{CampaignPolicy, CampaignSpec, Fleet};

    let zoo = [
        AdversaryConfig::none(),
        AdversaryConfig::sweep(),
        AdversaryConfig::reactive(4.0),
        AdversaryConfig::pursuit(),
        AdversaryConfig::reactive(4.0).energy_budget(30.0, 2.0),
        AdversaryConfig::adaptive(PredictorKind::Markov),
        AdversaryConfig::dqn(),
    ];
    let points: Vec<EnvParams> = zoo
        .iter()
        .map(|adversary| EnvParams {
            adversary: adversary.clone(),
            ..EnvParams::default()
        })
        .collect();
    let spec = CampaignSpec {
        name: "zoo_determinism".into(),
        points,
        seeds: vec![5, 6],
        policy: CampaignPolicy::DecoyRandomFh(0.5),
        slots: 200,
        kernel: false,
        base_seed: 0x05A1_AD00,
        faults: None,
    };

    let reference = Fleet::new().threads(1).run(&spec);
    let ref_goodput: Vec<u64> = reference
        .goodput_vector()
        .iter()
        .map(|g| g.to_bits())
        .collect();
    assert_eq!(reference.outcomes.len(), spec.episodes());

    for threads in [2usize, 8] {
        let run = Fleet::new().threads(threads).run(&spec);
        let goodput: Vec<u64> = run.goodput_vector().iter().map(|g| g.to_bits()).collect();
        assert_eq!(
            ref_goodput, goodput,
            "zoo goodput changed between 1 and {threads} workers"
        );
        assert_eq!(
            reference.outcomes, run.outcomes,
            "zoo outcomes changed between 1 and {threads} workers"
        );
    }
}

/// Save → load → resume must be invisible to the determinism contract:
/// a training run interrupted by a checkpoint round-trip walks the exact
/// same trajectory as one that never stopped. The checkpoint captures
/// the full defender (weights, optimizer moments, replay ring,
/// observation window, pending transition); the RNG stays with the
/// caller, exactly like the rest of the runner API.
#[test]
fn checkpoint_resume_is_bit_exact_with_uninterrupted_training() {
    use ctjam_core::defender::DqnDefender;
    use ctjam_core::env::CompetitionEnv;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let params = EnvParams::default();
    let (head_slots, tail_slots) = (900, 700);

    // Uninterrupted: one defender, one env, two windows.
    let mut rng = StdRng::seed_from_u64(0x5AFE_C0DE);
    let mut defender = DqnDefender::small_for_tests(&params, &mut rng);
    let mut env = CompetitionEnv::new(params.clone(), &mut rng);
    let head = RunBuilder::new(&params).run_in(&mut env, &mut defender, head_slots, &mut rng);
    let tail = RunBuilder::new(&params).run_in(&mut env, &mut defender, tail_slots, &mut rng);

    // Interrupted at the window boundary by a full checkpoint
    // round-trip through disk.
    let mut rng2 = StdRng::seed_from_u64(0x5AFE_C0DE);
    let mut d2 = DqnDefender::small_for_tests(&params, &mut rng2);
    let mut env2 = CompetitionEnv::new(params.clone(), &mut rng2);
    let head2 = RunBuilder::new(&params).run_in(&mut env2, &mut d2, head_slots, &mut rng2);
    assert_eq!(head, head2, "identical seeds must agree before the save");

    let path = std::env::temp_dir().join("ctjam_determinism_resume.ckpt");
    d2.save_checkpoint(&path).expect("checkpoint save");
    drop(d2);
    let mut resumed = DqnDefender::load_checkpoint(&path).expect("checkpoint load");
    std::fs::remove_file(&path).ok();

    let tail2 = RunBuilder::new(&params).run_in(&mut env2, &mut resumed, tail_slots, &mut rng2);
    assert_eq!(
        tail, tail2,
        "checkpoint round-trip changed the training trajectory"
    );
    assert_eq!(
        format!("{:?}", resumed.agent().network().flatten_params()),
        format!("{:?}", defender.agent().network().flatten_params()),
        "resumed weights diverged bit-wise from the uninterrupted run"
    );
}

/// The scenario DSL is a *compiler*, not a second engine: a campaign
/// scenario file must produce bit-identical results to hand-built
/// [`CampaignSpec`]s run straight through the fleet — at every worker
/// count. This pins the whole chain (parse → compile → run) to the
/// fleet's partition-invariance contract, so `campaign` runs of the
/// checked-in files are interchangeable with hand-coded experiments.
#[test]
fn scenario_campaign_matches_hand_coded_specs_at_every_worker_count() {
    use ctjam_core::adversary::AdversaryConfig;
    use ctjam_fleet::{CampaignPolicy, CampaignSpec, Fleet};
    use ctjam_scenario::run::{run_campaign, CampaignOptions};
    use ctjam_scenario::{Scenario, ScenarioKind};

    let text = r#"{
        "schema": "ctjam-scenario/v1",
        "name": "determinism_campaign",
        "kind": "campaign",
        "base_seed": 99,
        "slots": 80,
        "seeds": [5, 6],
        "adversaries": ["sweep", "pursuit"],
        "policies": ["random-fh", "no-defense"]
    }"#;
    let scenario = Scenario::parse_str(text).expect("inline scenario parses");
    let ScenarioKind::Campaign(campaign) = &scenario.kind else {
        panic!("wrong scenario kind")
    };

    // The hand-coded twin of what the DSL should compile to.
    let points: Vec<EnvParams> = [AdversaryConfig::sweep(), AdversaryConfig::pursuit()]
        .into_iter()
        .map(|adversary| EnvParams {
            adversary,
            ..EnvParams::default()
        })
        .collect();
    let hand_policies: [(&str, CampaignPolicy); 2] = [
        ("random-fh", CampaignPolicy::RandomFh),
        ("no-defense", CampaignPolicy::NoDefense),
    ];

    for threads in [1usize, 2, 8] {
        let runs = run_campaign(
            &scenario.name,
            campaign,
            scenario.fingerprint(false),
            &CampaignOptions {
                threads: Some(threads),
                ..CampaignOptions::default()
            },
        )
        .expect("scenario campaign runs");
        assert_eq!(runs.len(), hand_policies.len());
        for (run, (label, policy)) in runs.iter().zip(&hand_policies) {
            let spec = CampaignSpec {
                name: format!("determinism_campaign::{label}"),
                points: points.clone(),
                seeds: vec![5, 6],
                policy: policy.clone(),
                slots: 80,
                kernel: false,
                base_seed: 99,
                faults: None,
            };
            let hand = Fleet::new().threads(threads).run(&spec);
            let hand_bits: Vec<u64> = hand.goodput_vector().iter().map(|g| g.to_bits()).collect();
            let dsl_bits: Vec<u64> = run
                .result
                .goodput_vector()
                .iter()
                .map(|g| g.to_bits())
                .collect();
            assert_eq!(
                hand_bits, dsl_bits,
                "{label}@{threads} workers: scenario goodput diverged from hand-coded spec"
            );
            assert_eq!(
                hand.outcomes, run.result.outcomes,
                "{label}@{threads} workers: outcomes diverged"
            );
            assert_eq!(
                hand.telemetry.to_json().to_string_compact(),
                run.result.telemetry.to_json().to_string_compact(),
                "{label}@{threads} workers: telemetry diverged"
            );
        }
    }
}
