//! Cross-layer consistency: the PHY's emulation results must justify the
//! channel layer's interference assumptions.

use ctjam::channel::interference::InterferenceKind;
use ctjam::phy::emulation::{frequency_shift, EmulationConfig, Emulator};
use ctjam::phy::metrics::chip_error_rate;
use ctjam::phy::zigbee::chips::ChipTable;
use ctjam::phy::zigbee::frame::{classify_rx, symbols_to_bytes, RxOutcome};
use ctjam::phy::zigbee::oqpsk::OqpskModulator;
use ctjam::phy::Complex64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The channel layer assumes EmuBee "defeats the processing gain" — i.e.
/// is chip-faithful. Verify at the PHY: the emulated waveform's chips
/// match the designed chips essentially everywhere.
#[test]
fn emubee_is_chip_faithful_as_channel_layer_assumes() {
    assert!(InterferenceKind::EmuBee.defeats_processing_gain());
    let modulator = OqpskModulator::with_oversampling(10);
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..5 {
        let symbols: Vec<u8> = (0..8).map(|_| rng.gen_range(0..16)).collect();
        let designed = modulator.modulate_symbols(&symbols);
        let emulated =
            Emulator::new(EmulationConfig::default()).emulate(&frequency_shift(&designed, 16));
        let victim_view = frequency_shift(emulated.emulated(), -16);
        let cer = chip_error_rate(&modulator, &designed, &victim_view);
        assert!(
            cer < 0.05,
            "EmuBee chip error rate {cer} breaks the channel model"
        );
    }
}

/// The channel layer assumes plain Wi-Fi OFDM is noise-like — i.e. NOT
/// chip-faithful. Verify: random OFDM-looking samples decode as chips
/// with ~50% disagreement against any PN sequence.
#[test]
fn plain_wifi_is_noise_like_as_channel_layer_assumes() {
    assert!(!InterferenceKind::WifiOfdm.defeats_processing_gain());
    let modulator = OqpskModulator::with_oversampling(10);
    let table = ChipTable::new();
    let mut rng = StdRng::seed_from_u64(2);
    // Gaussian-ish wideband samples (what an OFDM burst looks like to the
    // despreader).
    let noise: Vec<Complex64> = (0..32 * 10 * 8)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let chips = modulator.chips_from_waveform(&noise);
    // Against every PN sequence the Hamming distance of a random block
    // should hover near 16/32; the best match still stays far from 0.
    let mut total_best = 0u32;
    let mut blocks = 0u32;
    for block in chips.chunks(32).filter(|b| b.len() == 32) {
        let (_, d) = table.best_match(block);
        total_best += d;
        blocks += 1;
    }
    let mean_best = f64::from(total_best) / f64::from(blocks);
    assert!(
        mean_best > 6.0,
        "random noise matched a PN sequence too well ({mean_best} mean chip distance)"
    );
}

/// Stealthiness, cross-checked between layers: the channel layer flags
/// only EmuBee as stealthy; the PHY layer shows why — its bursts decode
/// but never frame.
#[test]
fn stealthiness_is_consistent_across_layers() {
    assert!(InterferenceKind::EmuBee.is_stealthy());
    assert!(!InterferenceKind::ZigBee.is_stealthy());

    let modulator = OqpskModulator::with_oversampling(10);
    // Preamble-only burst (the paper's example of wasted decoding).
    let symbols = vec![0u8; 8];
    let designed = modulator.modulate_symbols(&symbols);
    let emulated =
        Emulator::new(EmulationConfig::default()).emulate(&frequency_shift(&designed, 16));
    let victim_view = frequency_shift(emulated.emulated(), -16);
    let decoded = modulator.demodulate(&victim_view);
    let bytes = symbols_to_bytes(&decoded);
    match classify_rx(&bytes) {
        RxOutcome::Stealthy(_) => {}
        RxOutcome::Frame(f) => panic!("preamble-only burst parsed as a frame: {f:?}"),
    }
}
