//! The arms race: what happens *after* the paper.
//!
//! Act 1 — the paper's scenario: a sweeping EmuBee jammer vs the trained
//! DQN defense (the defense wins, ~75% ST).
//!
//! Act 2 — the jammer upgrades to a DeepJam-class traffic predictor
//! (related work [14]): it senses which 4-channel block the victim uses
//! each slot, trains an RNN on the pattern, and jams the predicted block.
//! The DQN's near-deterministic policy gets *learned* and collapses.
//!
//! Act 3 — the defender hardens: deployment-time Boltzmann sampling
//! randomizes among near-optimal hops, pinning any predictor near chance
//! without giving up sweep-jammer performance.
//!
//! ```text
//! cargo run --release --example arms_race
//! ```

use ctjam::core::adaptive::{AdaptiveEnv, PredictorKind};
use ctjam::core::defender::DqnDefender;
use ctjam::core::env::EnvParams;
use ctjam::core::runner::RunBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let params = EnvParams::default();
    let mut rng = StdRng::seed_from_u64(2022);
    let eval_slots = 8_000;

    println!("== Act 1: the paper's fight ==");
    println!("training the DQN against the sweeping EmuBee jammer...");
    let mut defense = DqnDefender::paper_default(&params, &mut rng);
    RunBuilder::new(&params).train(&mut defense, 12_000, &mut rng);
    defense.set_training(false);
    let act1 = RunBuilder::new(&params).evaluate(&mut defense, eval_slots, &mut rng);
    println!(
        "vs the sweep jammer: ST = {:.1}%  (the paper's ~78% regime)\n",
        100.0 * act1.metrics.success_rate()
    );

    println!("== Act 2: the jammer learns ==");
    let mut env = AdaptiveEnv::new(params.clone(), PredictorKind::Rnn, &mut rng);
    let act2 = RunBuilder::new(&params).run_in(&mut env, &mut defense, eval_slots, &mut rng);
    println!(
        "vs an RNN traffic predictor: ST = {:.1}%, jammer hit rate = {:.1}% (chance is 25%)",
        100.0 * act2.metrics.success_rate(),
        100.0 * env.jammer().hit_rate()
    );
    println!("the deterministic hop pattern was learned — the defense fell below the passive baseline.\n");

    println!("== Act 3: the defender randomizes ==");
    let mut hardened = defense.clone();
    hardened.set_temperature(Some(8.0));
    let mut env = AdaptiveEnv::new(params.clone(), PredictorKind::Rnn, &mut rng);
    let act3 = RunBuilder::new(&params).run_in(&mut env, &mut hardened, eval_slots, &mut rng);
    println!(
        "softmax (t = 8) vs the same predictor: ST = {:.1}%, jammer hit rate = {:.1}%",
        100.0 * act3.metrics.success_rate(),
        100.0 * env.jammer().hit_rate()
    );
    let sweep_check = RunBuilder::new(&params).evaluate(&mut hardened, eval_slots, &mut rng);
    println!(
        "and it still handles the original sweep jammer: ST = {:.1}%",
        100.0 * sweep_check.metrics.success_rate()
    );

    println!("\nmoral: against an adaptive adversary, *policy entropy* is part of the defense.");
    assert!(act3.metrics.success_rate() > act2.metrics.success_rate() + 0.2);
    Ok(())
}
