//! The attacker's perspective: forging ZigBee with a Wi-Fi radio.
//!
//! Walks through the EmuBee pipeline end to end:
//!
//! 1. design a ZigBee waveform (a frame the victim would decode),
//! 2. run the inverse-Wi-Fi-PHY emulation with the Eq. (2) optimal
//!    64-QAM scaling,
//! 3. show the victim's radio decodes the chips — but the frame check
//!    rejects the burst, so nothing attributable is ever logged
//!    (the stealthiness property),
//! 4. compare the jamming reach of EmuBee against conventional ZigBee
//!    and Wi-Fi jammers.
//!
//! ```text
//! cargo run --release --example emubee_attack
//! ```

use ctjam::channel::link::{JammerKind, JammingScenario};
use ctjam::phy::emulation::{frequency_shift, EmulationConfig, Emulator};
use ctjam::phy::metrics::{chip_error_rate, waveform_evm};
use ctjam::phy::zigbee::frame::{classify_rx, symbols_to_bytes, PhyFrame, RxOutcome};
use ctjam::phy::zigbee::oqpsk::OqpskModulator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    println!("== Step 1: design a jamming waveform ==");
    // A *valid-looking chip stream* that deliberately violates the frame
    // format: the preamble is present but the SFD never arrives, so the
    // victim burns its decode window for nothing.
    let decoy: Vec<u8> = vec![0x0; 8] // preamble nibbles (4 bytes of 0x00)
        .into_iter()
        .chain([0x3, 0x1, 0x9, 0x5, 0x9, 0x9, 0x5, 0x5]) // junk, never 0x7A
        .collect();
    let modulator = OqpskModulator::with_oversampling(10);
    let designed = modulator.modulate_symbols(&decoy);
    println!(
        "designed {} baseband samples ({} chips)",
        designed.len(),
        decoy.len() * 32
    );

    println!("\n== Step 2: emulate it through the Wi-Fi OFDM front end ==");
    // Place the victim's 2 MHz channel at +5 MHz inside the 20 MHz band.
    let target = frequency_shift(&designed, 16);
    let emulator = Emulator::new(EmulationConfig::default());
    let naive = Emulator::new(EmulationConfig {
        optimize_alpha: false,
        ..EmulationConfig::default()
    });
    let report = emulator.emulate(&target);
    let naive_report = naive.emulate(&target);
    println!(
        "emulation EVM: optimized alpha {:.4} vs fixed alpha {:.4} ({:.1}% better)",
        report.evm(),
        naive_report.evm(),
        100.0 * (1.0 - report.evm() / naive_report.evm())
    );

    println!("\n== Step 3: what the victim's radio sees ==");
    let victim_view = frequency_shift(report.emulated(), -16);
    let cer = chip_error_rate(&modulator, &designed, &victim_view);
    let evm = waveform_evm(&designed, &victim_view);
    println!("victim chip error rate vs designed: {cer:.4} (EVM {evm:.4})");
    let symbols = modulator.demodulate(&victim_view);
    let bytes = symbols_to_bytes(&symbols);
    match classify_rx(&bytes) {
        RxOutcome::Frame(f) => println!("UNEXPECTED: victim recovered a frame: {f:?}"),
        RxOutcome::Stealthy(reason) => {
            println!("victim radio locked on, decoded chips, then dropped the burst: {reason}");
            println!("=> no jammer signature reaches the victim's logs (stealthy)");
        }
    }

    // Contrast with a legitimate frame passing the same path.
    let frame = PhyFrame::new(b"temperature=23.4C".to_vec())?;
    let legit_wave = modulator.modulate_symbols(&frame.to_symbols());
    let legit_emulated = frequency_shift(
        emulator
            .emulate(&frequency_shift(&legit_wave, 16))
            .emulated(),
        -16,
    );
    let legit_bytes = symbols_to_bytes(&modulator.demodulate(&legit_emulated));
    match classify_rx(&legit_bytes) {
        RxOutcome::Frame(f) => println!(
            "sanity: a *compliant* emulated frame still parses (psdu {} bytes) — EmuBee can spoof too",
            f.psdu().len()
        ),
        RxOutcome::Stealthy(e) => println!("sanity check failed: {e}"),
    }

    println!("\n== Step 4: jamming reach (Fig. 2(b) mechanics) ==");
    let scenario = JammingScenario::default();
    let mut rng = StdRng::seed_from_u64(1);
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "dist (m)", "EmuBee PER", "ZigBee PER", "WiFi PER"
    );
    for d in [2.0, 6.0, 10.0, 14.0] {
        let e = scenario.evaluate_faded(JammerKind::EmuBee, d, 2_000, &mut rng);
        let z = scenario.evaluate_faded(JammerKind::ZigBee, d, 2_000, &mut rng);
        let w = scenario.evaluate_faded(JammerKind::WifiOfdm, d, 2_000, &mut rng);
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>11.1}%",
            d,
            100.0 * e.per,
            100.0 * z.per,
            100.0 * w.per
        );
    }
    println!("\nEmuBee keeps jamming where conventional jammers have long given up.");
    Ok(())
}
