//! The closed serving loop: train → publish → hot-swap → measure.
//!
//! A trainer keeps improving the DQN defense against a *shifting*
//! adversary mix (sweep → reactive → pursuit → sweep) and atomically
//! publishes a checkpoint after every round. A multi-tenant
//! [`PolicyServer`] (two sharded batch workers) serves two tenants:
//!
//! * the **online** tenant (default) — watched, hot-swapping each
//!   published checkpoint in;
//! * a **frozen** tenant — the untrained seed policy, never reloaded,
//!   the control group.
//!
//! Both tenants are driven through the *wire*: a `ServedDefender`
//! implements the [`Defender`] trait by encoding its observation
//! window, asking the server for the greedy action, and decoding the
//! hop/power pair — the same egocentric action semantics as the
//! in-process `DqnDefender`. Each client keeps ONE connection open for
//! the whole run, across every hot swap: the swap dropping a
//! connection would abort the example. Round by round, the
//! client-observed goodput of the online tenant pulls away from the
//! frozen control while the frozen tenant's answers never change —
//! tenant isolation, observed from the client side.
//!
//! ```text
//! cargo run --release --example online_learning
//! ```

use ctjam::core::adversary::AdversaryConfig;
use ctjam::core::defender::{Defender, DqnDefender};
use ctjam::core::env::{Decision, EnvParams, Outcome, SlotResult};
use ctjam::core::runner::RunBuilder;
use ctjam::dqn::checkpoint;
use ctjam::dqn::config::DqnConfig;
use ctjam::dqn::encode::{ObservationEncoder, SlotOutcome, SlotRecord};
use ctjam::dqn::policy::GreedyPolicy;
use ctjam::serve::client::PolicyClient;
use ctjam::serve::server::{PolicyServer, ServerConfig};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::error::Error;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Tenant id of the frozen control policy (the default tenant, 0, is
/// the online one).
const FROZEN_TENANT: u32 = 1;

/// A [`Defender`] whose brain lives on the other side of a TCP socket.
///
/// Mirrors the deployed (non-training) `DqnDefender` slot loop: encode
/// the observation window, pick an action, decode it egocentrically
/// (output `a` = "hop `a` channels up, at power `a % PL`") — except the
/// action comes from `PolicyClient::act` instead of a local forward
/// pass. It draws nothing from the RNG; the served policy is greedy.
struct ServedDefender {
    client: PolicyClient,
    config: DqnConfig,
    encoder: ObservationEncoder,
    current_channel: usize,
    pending_delta: usize,
    obs: Vec<f64>,
}

impl ServedDefender {
    fn connect(addr: SocketAddr, tenant: u32, config: DqnConfig) -> Result<Self, Box<dyn Error>> {
        let encoder = ObservationEncoder::new(
            config.history_len,
            config.num_channels,
            config.num_power_levels,
        );
        Ok(ServedDefender {
            client: PolicyClient::connect_tenant(addr, tenant)?,
            config,
            encoder,
            current_channel: 0,
            pending_delta: 0,
            obs: Vec::new(),
        })
    }
}

impl Defender for ServedDefender {
    fn name(&self) -> &str {
        "served DQN (wire)"
    }

    fn decide(&mut self, _rng: &mut dyn RngCore) -> Decision {
        self.encoder.encode_into(&mut self.obs);
        // A swap dropping the connection (or any refusal) surfaces
        // here; the expect is the example's zero-drop assertion.
        let action = self.client.act(&self.obs).expect("served action") as usize;
        let (delta, power_level) = self.config.decode_action(action);
        self.pending_delta = delta;
        Decision {
            channel: (self.current_channel + delta) % self.config.num_channels,
            power_level,
        }
    }

    fn feedback(&mut self, result: &SlotResult, _rng: &mut dyn RngCore) {
        let outcome = match result.outcome {
            Outcome::Clean => SlotOutcome::Success,
            Outcome::JammedSurvived => SlotOutcome::SuccessUnderJamming,
            Outcome::Jammed => SlotOutcome::Failure,
        };
        self.encoder.push(SlotRecord {
            outcome,
            channel: self.pending_delta,
            power_level: result.decision.power_level,
        });
        self.current_channel = result.decision.channel;
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(2026);
    let params = EnvParams::default();
    let mut defense = DqnDefender::small_for_tests(&params, &mut rng);
    let config = defense.agent().config().clone();

    // Publish the untrained seed policy: the online tenant starts from
    // it, and the frozen control keeps it forever.
    let ckpt =
        std::env::temp_dir().join(format!("ctjam_online_learning_{}.ckpt", std::process::id()));
    checkpoint::save_agent(defense.agent(), &ckpt)?;

    let mut server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(defense.agent()),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )?;
    server.add_tenant(FROZEN_TENANT, GreedyPolicy::from_agent(defense.agent()))?;
    server.watch_checkpoint(ckpt.clone());
    let addr = server.local_addr();
    println!(
        "serving on {addr} ({} workers, tenants {:?}), watching {}",
        server.worker_count(),
        server.tenant_ids(),
        ckpt.display()
    );

    // One connection per tenant, held open across every hot swap.
    let mut online = ServedDefender::connect(addr, 0, config.clone())?;
    let mut frozen = ServedDefender::connect(addr, FROZEN_TENANT, config.clone())?;

    // Probes for confirming a published checkpoint went live.
    let probes: Vec<Vec<f64>> = {
        let mut prng = StdRng::seed_from_u64(7);
        (0..32)
            .map(|_| {
                (0..config.input_size())
                    .map(|_| (prng.next_u32() as f64 / u32::MAX as f64) * 2.0 - 1.0)
                    .collect()
            })
            .collect()
    };

    let mix: [(&str, AdversaryConfig); 4] = [
        ("sweep", AdversaryConfig::sweep()),
        ("reactive", AdversaryConfig::reactive(8.0)),
        ("pursuit", AdversaryConfig::pursuit()),
        ("sweep", AdversaryConfig::sweep()),
    ];
    let train_slots = 3_000;
    let eval_slots = 1_500;

    println!(
        "\n{:>2}  {:>8}  {:>14}  {:>14}",
        "rd", "jammer", "online reward", "frozen reward"
    );
    let mut first_online = f64::NAN;
    let mut last_online = f64::NAN;
    let mut last_frozen = f64::NAN;
    for (round, (label, adversary)) in mix.iter().enumerate() {
        // Train against this round's adversary, publish atomically
        // (tempfile + rename inside `save_agent`), and wait for the
        // watcher to hot-swap it in — confirmed over the wire.
        RunBuilder::new(&params).adversary(adversary.clone()).train(
            &mut defense,
            train_slots,
            &mut rng,
        );
        checkpoint::save_agent(defense.agent(), &ckpt)?;
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let live = probes.iter().all(|o| {
                online.client.act(o).expect("probe act") as usize == defense.agent().act_greedy(o)
            });
            if live {
                break;
            }
            assert!(Instant::now() < deadline, "hot swap never landed");
            std::thread::sleep(Duration::from_millis(25));
        }

        // Same eval seed for both tenants: identical environment
        // randomness, only the served policies differ.
        let mut eval_rng = StdRng::seed_from_u64(9_000 + round as u64);
        let report = RunBuilder::new(&params)
            .adversary(adversary.clone())
            .evaluate(&mut online, eval_slots, &mut eval_rng);
        let mut eval_rng = StdRng::seed_from_u64(9_000 + round as u64);
        let control = RunBuilder::new(&params)
            .adversary(adversary.clone())
            .evaluate(&mut frozen, eval_slots, &mut eval_rng);
        println!(
            "{:>2}  {:>8}  {:>14.2}  {:>14.2}",
            round,
            label,
            report.mean_reward(),
            control.mean_reward()
        );
        if round == 0 {
            first_online = report.mean_reward();
        }
        last_online = report.mean_reward();
        last_frozen = control.mean_reward();
    }

    // The closed loop's point: the hot-swapped tenant improves (higher
    // mean reward = less loss to jamming/hopping), the frozen control
    // doesn't — all observed through connections that never reconnected.
    assert!(
        last_online > last_frozen,
        "online tenant ({last_online:.2}) should beat the frozen control ({last_frozen:.2})"
    );
    println!(
        "\nonline tenant improved {first_online:.2} → {last_online:.2} mean reward across swaps; \
         frozen control ended at {last_frozen:.2}"
    );

    let metrics = server.shutdown();
    let tenants = metrics.get("tenants").expect("tenant metrics");
    for id in [0, FROZEN_TENANT] {
        let counters = tenants
            .get(&id.to_string())
            .and_then(|t| t.get("counters"))
            .expect("tenant counters");
        println!("tenant {id} counters:\n{}", counters.to_string_pretty());
    }
    std::fs::remove_file(&ckpt).ok();
    Ok(())
}
