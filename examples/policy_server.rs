//! Serve a trained anti-jamming policy over TCP, then hot-reload it.
//!
//! Trains the DQN defense briefly, saves its agent as a checkpoint, and
//! serves it with the micro-batching [`PolicyServer`]. Concurrent
//! [`PolicyClient`]s query it — every served action is bit-exact with
//! the in-process `DqnAgent::act_greedy` on the same observation. The
//! defense then trains further and atomically rewrites the checkpoint,
//! and the server's watcher hot-swaps the new policy in without
//! dropping a single connection.
//!
//! ```text
//! cargo run --release --example policy_server
//! ```

use ctjam::core::defender::DqnDefender;
use ctjam::core::env::EnvParams;
use ctjam::core::runner::RunBuilder;
use ctjam::dqn::checkpoint;
use ctjam::dqn::policy::GreedyPolicy;
use ctjam::serve::client::PolicyClient;
use ctjam::serve::server::{PolicyServer, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::thread;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(2026);
    let params = EnvParams::default();

    println!("training the DQN defense (6 000 slots)...");
    let mut defense = DqnDefender::small_for_tests(&params, &mut rng);
    RunBuilder::new(&params).train(&mut defense, 6_000, &mut rng);
    defense.set_training(false);

    // Atomic write (tempfile + rename), so the watcher below never
    // observes a half-written file.
    let ckpt = std::env::temp_dir().join(format!(
        "ctjam_policy_server_example_{}.ckpt",
        std::process::id()
    ));
    checkpoint::save_agent(defense.agent(), &ckpt)?;

    let mut server = PolicyServer::bind(
        "127.0.0.1:0",
        GreedyPolicy::from_agent(defense.agent()),
        ServerConfig::default(),
    )?;
    server.watch_checkpoint(ckpt.clone());
    let addr = server.local_addr();
    println!("serving on {addr}, watching {}", ckpt.display());

    let input = defense.agent().config().input_size();
    let probes: Vec<Vec<f64>> = (0..32)
        .map(|_| (0..input).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();

    // Several concurrent clients keep the batcher busy enough to
    // coalesce requests into multi-row forward passes.
    let oracle: Vec<usize> = probes
        .iter()
        .map(|o| defense.agent().act_greedy(o))
        .collect();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let probes = probes.clone();
            let oracle = oracle.clone();
            thread::spawn(move || {
                let mut client = PolicyClient::connect(addr).expect("connect");
                client.ping().expect("ping");
                for (obs, &want) in probes.iter().zip(&oracle) {
                    let action = client.act(obs).expect("act");
                    assert_eq!(action as usize, want, "served action diverged");
                }
                probes.len()
            })
        })
        .collect();
    let served: usize = workers.into_iter().map(|w| w.join().expect("client")).sum();
    println!(
        "{served} actions served across 4 connections, all bit-exact \
         (mean batch occupancy {:.2})",
        server.mean_batch_occupancy()
    );

    println!("training 4 000 more slots and hot-swapping the checkpoint...");
    defense.set_training(true);
    RunBuilder::new(&params).train(&mut defense, 4_000, &mut rng);
    defense.set_training(false);
    checkpoint::save_agent(defense.agent(), &ckpt)?;
    let changed = probes
        .iter()
        .zip(&oracle)
        .filter(|(o, &was)| defense.agent().act_greedy(o) != was)
        .count();

    // The same connection keeps working while the watcher (default
    // 25 ms poll) validates and swaps the new policy in.
    let mut client = PolicyClient::connect(addr)?;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let swapped = probes
            .iter()
            .all(|obs| client.act(obs).expect("act") as usize == defense.agent().act_greedy(obs));
        if swapped {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watcher never swapped the new checkpoint in"
        );
        thread::sleep(Duration::from_millis(25));
    }
    println!(
        "hot reload live: retrained policy serving ({changed}/{} probe actions changed)",
        probes.len()
    );

    let metrics = server.shutdown();
    let counters = metrics.get("counters").expect("metrics counters");
    println!("final server counters:\n{}", counters.to_string_pretty());
    std::fs::remove_file(&ckpt).ok();
    Ok(())
}
