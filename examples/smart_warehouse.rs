//! Smart-warehouse scenario: the paper's motivating deployment.
//!
//! A dense heterogeneous IoT floor — a ZigBee hub with sensor nodes —
//! shares 2.4 GHz spectrum with Wi-Fi equipment; one Wi-Fi device turns
//! hostile and runs the EmuBee sweep jammer. The warehouse operator
//! deploys the trained DQN defense and watches goodput recover.
//!
//! ```text
//! cargo run --release --example smart_warehouse
//! ```

use ctjam::core::defender::{DqnDefender, NoDefense, PassiveFh};
use ctjam::core::field::{FieldConfig, FieldExperiment};
use ctjam::core::runner::RunBuilder;
use ctjam::net::negotiation::mean_negotiation_s;
use ctjam::net::timing::TimingModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let slots = 200;
    let base = FieldConfig {
        num_peripherals: 6, // a denser floor than the paper's 3-node cell
        ..FieldConfig::default()
    };

    println!("== Phase 0: normal operation (no jammer) ==");
    let quiet = FieldConfig {
        jammer_enabled: false,
        ..base.clone()
    };
    let mut exp = FieldExperiment::new(
        quiet.clone(),
        NoDefense::new(&quiet.env, &mut rng),
        &mut rng,
    );
    let healthy = exp.run(slots, &mut rng);
    println!(
        "goodput {:.0} pkts/slot, slot utilization {:.1}%",
        healthy.packets_per_slot(),
        100.0 * healthy.goodput.utilization()
    );

    println!("\n== Phase 1: the EmuBee jammer appears ==");
    let mut exp = FieldExperiment::new(base.clone(), NoDefense::new(&base.env, &mut rng), &mut rng);
    let attacked = exp.run(slots, &mut rng);
    println!(
        "goodput collapses to {:.0} pkts/slot ({:.1}% of normal) — the static network is pinned",
        attacked.packets_per_slot(),
        100.0 * attacked.packets_per_slot() / healthy.packets_per_slot()
    );

    println!("\n== Phase 2: ops enables the firmware's passive channel hopping ==");
    let mut exp = FieldExperiment::new(base.clone(), PassiveFh::new(&base.env, &mut rng), &mut rng);
    let passive = exp.run(slots, &mut rng);
    println!(
        "goodput {:.0} pkts/slot ({:.1}% of normal) — better, but the stealthy jammer is detected late",
        passive.packets_per_slot(),
        100.0 * passive.packets_per_slot() / healthy.packets_per_slot()
    );

    println!("\n== Phase 3: deploy the trained DQN defense on the hub ==");
    let mut defense = DqnDefender::paper_default(&base.env, &mut rng);
    RunBuilder::new(&base.env).train(&mut defense, 12_000, &mut rng);
    defense.set_training(false);
    println!(
        "trained network: {} parameters, {:.1} KB deployed (paper: 10 664 / 42.7 KB)",
        defense.agent().network().param_count(),
        ctjam::nn::serialize::deployed_kb(defense.agent().network())
    );
    let mut exp = FieldExperiment::new(base.clone(), defense, &mut rng);
    let defended = exp.run(slots, &mut rng);
    println!(
        "goodput {:.0} pkts/slot ({:.1}% of normal) — {:.1}x the passive scheme",
        defended.packets_per_slot(),
        100.0 * defended.packets_per_slot() / healthy.packets_per_slot(),
        defended.packets_per_slot() / passive.packets_per_slot()
    );

    println!("\n== Capacity planning: how big can the floor grow? ==");
    // Fig. 9(b) guidance: FH negotiation scales with node count and must
    // fit inside the slot.
    let timing = TimingModel::default();
    println!("{:<8} {:>22}", "nodes", "mean negotiation (s)");
    for nodes in [3usize, 6, 10, 16, 24] {
        let mean = mean_negotiation_s(&timing, nodes, 300, &mut rng);
        println!("{:<8} {:>22.3}", nodes, mean);
    }
    println!("\nrule of thumb: keep negotiation below ~10% of the Tx slot when sizing the cell");

    assert!(defended.packets_per_slot() > passive.packets_per_slot());
    assert!(passive.packets_per_slot() > attacked.packets_per_slot());
    Ok(())
}
