//! The defender's playbook: what the MDP says you should do.
//!
//! Solves the paper's anti-jamming MDP exactly and prints the optimal
//! policy as an operator-readable playbook — when to stay, when to hop,
//! which power to burn — and how the hop threshold `n*` moves as the
//! stakes (`L_J`), the hop cost (`L_H`), and the jammer's sweep speed
//! change (Theorems III.4–III.5).
//!
//! ```text
//! cargo run --release --example mdp_playbook
//! ```

use ctjam::mdp::analysis::{solve_threshold, thresholds_vs_lh, thresholds_vs_lj};
use ctjam::mdp::antijam::{Action, AntijamParams, JammerMode, State};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let params = AntijamParams {
        jammer_mode: JammerMode::RandomPower,
        ..AntijamParams::default()
    };
    let (mdp, q, threshold) = solve_threshold(params.clone());

    println!(
        "== The optimal playbook (sweep cycle 4, L_H = 50, L_J = 100, hidden-mode jammer) ==\n"
    );
    let states: Vec<State> = (1..=mdp.num_safe_states())
        .map(State::Safe)
        .chain([State::JammedUnsuccessfully, State::Jammed])
        .collect();
    for state in states {
        let s = mdp.state_index(state);
        let (best_action, best_q) = (0..mdp.tabular().num_actions())
            .map(|a| (a, q[s][a]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite Q"))
            .expect("nonempty action set");
        let Action { hop, power } = mdp.action_of(best_action);
        println!(
            "state {:>3}: {} with power level {} (L_p = {:>4.1})   [Q* = {:>8.2}]",
            state.to_string(),
            if hop { "HOP " } else { "STAY" },
            power,
            mdp.params().tx_powers[power],
            best_q,
        );
    }
    println!("\n=> threshold policy with n* = {threshold} (Theorem III.4)");

    println!("\n== How the threshold moves (Theorem III.5) ==\n");
    let lj = [20.0, 50.0, 100.0, 300.0, 1000.0];
    let t_lj = thresholds_vs_lj(&params, &lj);
    println!("raise the pain of being jammed and you hop sooner:");
    for (x, t) in lj.iter().zip(&t_lj) {
        println!("  L_J = {x:>6}: n* = {t}");
    }

    let lh = [0.0, 25.0, 50.0, 150.0, 400.0];
    let t_lh = thresholds_vs_lh(&params, &lh);
    println!("make hopping expensive and you cling to the channel:");
    for (x, t) in lh.iter().zip(&t_lh) {
        println!("  L_H = {x:>6}: n* = {t}");
    }

    println!("\n== Why you cannot just ship this table (§III.C) ==");
    println!("the table is indexed by the *true* state n — but a real Tx cannot observe");
    println!("how long the jammer has been sweeping. That observability gap is exactly");
    println!("why the paper trains a DQN on the (outcome, channel, power) history instead.");
    Ok(())
}
