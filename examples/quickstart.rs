//! Quickstart: defend a ZigBee network against a cross-technology jammer.
//!
//! Trains the paper's DQN defense against the sweeping EmuBee jammer,
//! then compares its success rate of transmission (ST) with the passive,
//! random, no-defense, and MDP-oracle references.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ctjam::core::defender::{Defender, DqnDefender, MdpOracle, NoDefense, PassiveFh, RandomFh};
use ctjam::core::env::EnvParams;
use ctjam::core::runner::RunBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    // The paper's simulation setting: sweep cycle 4, ten Tx power levels
    // L^T in [6, 15], ten Jx levels in [11, 20], L_H = 50, L_J = 100.
    let params = EnvParams::default();

    println!("training the DQN defense (12 000 slots)...");
    let mut defense = DqnDefender::paper_default(&params, &mut rng);
    RunBuilder::new(&params).train(&mut defense, 12_000, &mut rng);
    defense.set_training(false);

    let eval_slots = 20_000;
    println!("evaluating every scheme for {eval_slots} slots...\n");
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "scheme", "ST", "AH", "SH", "AP", "SP"
    );

    let report = |name: &str, defender: &mut dyn Defender, rng: &mut StdRng| {
        let rep = RunBuilder::new(&params).evaluate(defender, eval_slots, rng);
        let m = rep.metrics;
        println!(
            "{:<14} {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}%",
            name,
            100.0 * m.success_rate(),
            100.0 * m.fh_adoption_rate(),
            100.0 * m.fh_success_rate(),
            100.0 * m.pc_adoption_rate(),
            100.0 * m.pc_success_rate(),
        );
        m.success_rate()
    };

    let mut none = NoDefense::new(&params, &mut rng);
    let mut passive = PassiveFh::new(&params, &mut rng);
    let mut random = RandomFh::new(&params, &mut rng);
    let mut oracle = MdpOracle::new(&params, &mut rng);

    let st_none = report("no defense", &mut none, &mut rng);
    let st_psv = report("passive FH", &mut passive, &mut rng);
    let st_rnd = report("random FH", &mut random, &mut rng);
    let st_orc = report("MDP oracle", &mut oracle, &mut rng);
    let st_rl = report("RL FH (DQN)", &mut defense, &mut rng);

    println!();
    println!("paper anchors: RL ~78% ST; passive ~37.6% and random ~54.1% of the clean goodput");
    assert!(st_rl > st_rnd && st_rnd > st_psv && st_psv > st_none);
    let _ = st_orc;
    Ok(())
}
