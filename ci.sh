#!/bin/bash
# CI gate: formatting, lints, tier-1 tests, and manifest archiving.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q (tier-1 gate) =="
cargo test -q

# Chaos smoke: the quick fault-injection matrix (seeds x fault mixes,
# zero-rate bit-exactness, checkpoint resume). Also part of tier-1
# above; the labelled stage keeps its runtime visible and gives the
# extended sweep a documented home:
#   CTJAM_CHAOS_SLOTS=2000 cargo test --test chaos -- --ignored
echo "== cargo test -q --test chaos (chaos smoke) =="
cargo test -q --test chaos

echo "== cargo doc --no-deps (rustdoc warnings are errors) =="
# Scoped to the suite's own crates: the vendored shims (rand, proptest,
# criterion, bytes) predate today's rustdoc lints and are not ours to
# re-document.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p ctjam -p ctjam-phy -p ctjam-channel -p ctjam-net -p ctjam-mdp \
  -p ctjam-nn -p ctjam-dqn -p ctjam-core -p ctjam-bench \
  -p ctjam-telemetry -p ctjam-fault

# Criterion smoke mode: each bench target runs one iteration per
# benchmark, catching bit-rot in bench code without paying for a full
# measurement run.
echo "== cargo bench -- --test (bench smoke) =="
cargo bench -p ctjam-bench --benches -- --test

# Archive any run manifests produced by figure binaries so CI artifacts
# keep the provenance (seed, config hash, git describe) of every table.
if compgen -G "results/*.manifest.json" > /dev/null; then
  stamp="$(date -u +%Y%m%dT%H%M%SZ)"
  mkdir -p results/manifests
  for m in results/*.manifest.json; do
    cp "$m" "results/manifests/${stamp}.$(basename "$m")"
  done
  echo "== archived $(ls results/*.manifest.json | wc -l) manifest(s) to results/manifests/ =="
fi

echo "CI_OK"
