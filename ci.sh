#!/bin/bash
# CI gate: formatting, lints, tier-1 tests, and manifest archiving.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q (tier-1 gate) =="
cargo test -q

# Archive any run manifests produced by figure binaries so CI artifacts
# keep the provenance (seed, config hash, git describe) of every table.
if compgen -G "results/*.manifest.json" > /dev/null; then
  stamp="$(date -u +%Y%m%dT%H%M%SZ)"
  mkdir -p results/manifests
  for m in results/*.manifest.json; do
    cp "$m" "results/manifests/${stamp}.$(basename "$m")"
  done
  echo "== archived $(ls results/*.manifest.json | wc -l) manifest(s) to results/manifests/ =="
fi

echo "CI_OK"
