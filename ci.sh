#!/bin/bash
# CI gate: formatting, lints, tier-1 tests, and manifest archiving.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings -D deprecated =="
# -D deprecated keeps workspace code off the 0.3.0 EnvParams jammer
# shims (`with_jammer` / `jammer()`), scheduled for removal in 0.4.0.
cargo clippy --workspace --all-targets -- -D warnings -D deprecated

echo "== cargo test -q (tier-1 gate) =="
cargo test -q

# Chaos smoke: the quick fault-injection matrix (seeds x fault mixes,
# zero-rate bit-exactness, checkpoint resume). Also part of tier-1
# above; the labelled stage keeps its runtime visible and gives the
# extended sweep a documented home:
#   CTJAM_CHAOS_SLOTS=2000 cargo test --test chaos -- --ignored
echo "== cargo test -q --test chaos (chaos smoke) =="
cargo test -q --test chaos

# Kernel-soundness stage: the AVX2+FMA microkernels in ctjam-nn are the
# only unsafe code in the workspace, gated by the differential harness
# (tests/simd_differential.rs) and the forced-scalar fallback test. Run
# that suite under Miri when the toolchain has it; otherwise fall back
# to re-running it in release with debug/overflow assertions enabled —
# not a UB detector, but the configuration most likely to surface
# out-of-bounds arithmetic in the unsafe tile loops without Miri.
# (Note: under Miri `is_x86_feature_detected!` reports no AVX2, so the
# differential tests gate themselves off and Miri primarily checks the
# harness + scalar oracle; the fallback run covers the SIMD tiles on
# real hardware.)
echo "== nn kernel suite: Miri (or debug-assertions fallback) =="
if cargo miri --version >/dev/null 2>&1; then
  cargo miri test -p ctjam-nn --test simd_differential --test force_scalar
elif cargo +nightly miri --version >/dev/null 2>&1; then
  cargo +nightly miri test -p ctjam-nn --test simd_differential --test force_scalar
else
  echo "  (cargo-miri not installed; release + debug-assertions fallback)"
  RUSTFLAGS="-C target-cpu=native -C debug-assertions=on -C overflow-checks=on" \
    cargo test --release -q -p ctjam-nn --test simd_differential --test force_scalar
fi

echo "== cargo doc --no-deps (rustdoc warnings are errors) =="
# Scoped to the suite's own crates: the vendored shims (rand, proptest,
# criterion, bytes) predate today's rustdoc lints and are not ours to
# re-document.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p ctjam -p ctjam-phy -p ctjam-channel -p ctjam-net -p ctjam-mdp \
  -p ctjam-nn -p ctjam-dqn -p ctjam-core -p ctjam-bench \
  -p ctjam-telemetry -p ctjam-fault -p ctjam-fleet -p ctjam-scenario \
  -p ctjam-serve

# Criterion smoke mode: each bench target runs one iteration per
# benchmark, catching bit-rot in bench code without paying for a full
# measurement run.
echo "== cargo bench -- --test (bench smoke) =="
cargo bench -p ctjam-bench --benches -- --test

# Perf-manifest smoke: the perf_report binary must run (quick mode) and
# emit well-formed BENCH_slotloop.json / BENCH_dqn.json at the repo
# root, each carrying provenance (git describe, seed, config hash,
# target-cpu features) and at least one measurement. The full-size run
# (plain `cargo run --release -p ctjam-bench --bin perf_report`) is what
# EXPERIMENTS.md's "Performance trajectory" numbers come from.
echo "== perf_report quick run (BENCH_*.json smoke) =="
CTJAM_BENCH_QUICK=1 cargo run --release -q -p ctjam-bench --bin perf_report

# Serve smoke: spawn the standalone policy_server binary on an
# ephemeral loopback port and drive it with the serve_bench load
# harness in quick mode. The harness respawns the binary per mode —
# single-worker, 2- and 4-worker sharding, multi-tenant (v1 clients on
# the default tenant concurrent with v2 tenant-addressed clients), and
# the queue-delay SLO — so this exercises the whole serving stack end
# to end: wire protocol both versions, sharded micro-batchers, tenant
# registry, admission control, reply path, drain. Every served f64
# action is asserted bit-exact against the in-process agent. The
# full-size run (plain `cargo run --release -p ctjam-bench --bin
# serve_bench`) is what EXPERIMENTS.md's "Policy serving" numbers come
# from.
echo "== serve_bench quick run vs standalone policy_server (serve smoke) =="
cargo build --release -q -p ctjam-serve --bin policy_server
CTJAM_BENCH_QUICK=1 CTJAM_SERVE_BIN=target/release/policy_server \
  cargo run --release -q -p ctjam-bench --bin serve_bench

# Fleet smoke: run the sharded campaign engine's throughput recorder in
# quick mode. The binary itself asserts bit-exact goodput vectors and
# merged telemetry across every thread count it measures, so this stage
# doubles as a determinism check under real scheduling, and it must emit
# a well-formed BENCH_fleet.json. The full-size run (plain `cargo run
# --release -p ctjam-bench --bin fleet_bench`) is what EXPERIMENTS.md's
# "Fleet campaign engine" numbers come from.
echo "== fleet_bench quick run (fleet smoke) =="
CTJAM_BENCH_QUICK=1 cargo run --release -q -p ctjam-bench --bin fleet_bench

# League smoke: run the self-play league + adversary cross-table in
# quick mode. The binary asserts the cross-table's goodput vector is
# bit-exact across 1/2/8 fleet workers before recording any row; this
# stage additionally checks the emitted manifest is well-formed
# (schema, >=5 adversaries x >=3 defenders, rectangular rows, the
# worker pin recorded). The full-size run (plain `cargo run --release
# -p ctjam-bench --bin league`) is what EXPERIMENTS.md's league
# cross-table numbers come from.
echo "== league quick run (league smoke) =="
CTJAM_BENCH_QUICK=1 cargo run --release -q -p ctjam-bench --bin league
python3 - results/league_crosstable.json <<'PYEOF'
import json, sys
path = sys.argv[1]
with open(path) as fh:
    m = json.load(fh)
for key in ("schema", "name", "seed", "git", "config_hash",
            "created_unix_s", "defenders", "adversaries", "rows",
            "workers_checked", "bit_exact_workers", "self_play"):
    assert key in m, f"{path}: missing key {key!r}"
assert m["schema"] == "ctjam-league/v1", f"{path}: unexpected schema {m['schema']!r}"
assert len(m["adversaries"]) >= 5, f"{path}: cross-table needs >=5 adversaries"
assert len(m["defenders"]) >= 3, f"{path}: cross-table needs >=3 defenders"
assert len(m["rows"]) == len(m["defenders"]), f"{path}: one row per defender"
for row in m["rows"]:
    assert row["defender"] in m["defenders"], f"{path}: unknown defender {row['defender']!r}"
    assert len(row["goodput"]) == len(m["adversaries"]), f"{path}: ragged row"
    assert all(0.0 <= g <= 1.0 for g in row["goodput"]), f"{path}: goodput out of [0,1]"
assert m["workers_checked"] == [1, 2, 8], f"{path}: worker pin not 1/2/8"
assert m["bit_exact_workers"] is True, f"{path}: worker bit-exactness not recorded"
print(f"  {path}: ok ({len(m['defenders'])} defenders x {len(m['adversaries'])} adversaries)")
PYEOF

# Campaign smoke: run the checked-in scenarios/ directory through the
# campaign engine twice in quick mode — at 2 workers and at 1 worker —
# and require the two HTML reports to be byte-identical (the report is
# a pure function of the scenario files; worker count must not move a
# byte). Then validate the report's well-formedness (balanced tags,
# non-empty SVG plots) and every per-scenario manifest's provenance
# keys. The full-size run (plain `cargo run --release -p ctjam-bench
# --bin campaign`) regenerates the fig02/fig06-08/fig10 numbers from
# the same files the figure bins read.
echo "== campaign quick run x2 (campaign smoke, byte-deterministic report) =="
rm -rf results/campaign_smoke results/campaign_smoke2
cargo build --release -q -p ctjam-bench --bin campaign
CTJAM_BENCH_QUICK=1 target/release/campaign --out results/campaign_smoke --threads 2
CTJAM_BENCH_QUICK=1 target/release/campaign --out results/campaign_smoke2 --threads 1
cmp results/campaign_smoke/report.html results/campaign_smoke2/report.html \
  || { echo "FAIL: campaign report.html is not byte-deterministic across worker counts"; exit 1; }
python3 - results/campaign_smoke <<'PYEOF'
import glob, json, os, re, sys
out = sys.argv[1]
report = os.path.join(out, "report.html")
with open(report, encoding="utf-8") as fh:
    html = fh.read()
assert html.startswith("<!DOCTYPE html>"), f"{report}: missing doctype"
for tag in ("html", "head", "body", "table", "tr", "th", "td", "svg",
            "figure", "figcaption", "polyline", "text", "rect", "line",
            "h1", "h2", "p"):
    opens = len(re.findall(rf"<{tag}[\s>]", html))
    closes = html.count(f"</{tag}>")
    assert opens == closes, f"{report}: unbalanced <{tag}> ({opens} vs {closes})"
svgs = re.findall(r"<svg.*?</svg>", html, re.S)
assert len(svgs) >= 4, f"{report}: expected >=4 SVG plots, found {len(svgs)}"
for svg in svgs:
    assert re.search(r"<(polyline|rect)[^>]*\S", svg), f"{report}: empty SVG plot"
assert "<script" not in html.lower(), f"{report}: must be static (no scripts)"
manifests = sorted(glob.glob(os.path.join(out, "*.manifest.json")))
assert len(manifests) >= 4, f"{out}: expected >=4 scenario manifests"
kinds = set()
for path in manifests:
    with open(path) as fh:
        m = json.load(fh)
    for key in ("name", "seed", "git", "config_hash", "created_unix_s",
                "scenario_fingerprint", "scenario_path", "scenario_kind",
                "quick_mode"):
        assert key in m, f"{path}: missing key {key!r}"
    assert re.fullmatch(r"[0-9a-f]{16}", m["scenario_fingerprint"]), \
        f"{path}: malformed fingerprint {m['scenario_fingerprint']!r}"
    assert m["scenario_kind"] in ("link_sweep", "sweep", "field", "campaign"), \
        f"{path}: unknown kind {m['scenario_kind']!r}"
    assert m["quick_mode"] == "true", f"{path}: quick run must record quick_mode"
    kinds.add(m["scenario_kind"])
assert kinds == {"link_sweep", "sweep", "field", "campaign"}, \
    f"{out}: scenario corpus must cover all four kinds, got {sorted(kinds)}"
ckpts = glob.glob(os.path.join(out, "*.progress.ckpt"))
assert ckpts, f"{out}: campaign scenario left no progress checkpoint"
print(f"  {out}: ok ({len(manifests)} manifests, {len(svgs)} SVG plots, "
      f"{len(ckpts)} checkpoint(s))")
PYEOF

for f in BENCH_slotloop.json BENCH_dqn.json BENCH_serve.json BENCH_fleet.json; do
  test -s "$f" || { echo "FAIL: $f missing or empty"; exit 1; }
  python3 - "$f" <<'PYEOF'
import json, sys
path = sys.argv[1]
with open(path) as fh:
    m = json.load(fh)
for key in ("schema", "name", "seed", "git", "config_hash",
            "target_cpu_features", "created_unix_s"):
    assert key in m, f"{path}: missing provenance key {key!r}"
assert m["schema"] == "ctjam-bench/v1", f"{path}: unexpected schema {m['schema']!r}"
measurements = [k for k in m if k.endswith(("_ns", "_us", "_s", "_ns_per_slot",
                                            "_ns_per_point", "_x"))]
assert measurements, f"{path}: no measurement keys"
if path == "BENCH_dqn.json":
    # Kernel-backend fields from this repo's SIMD/int8 serving work:
    # either real SIMD timings or an honest skip note, never silence.
    assert "forward_batch32_scalar_ns" in m, f"{path}: missing scalar forward timing"
    has_simd = "train_step_batch32_simd_us" in m and "simd_train_speedup_x" in m
    assert has_simd or "simd_note" in m, \
        f"{path}: needs SIMD timings or an explicit simd_note"
    for key in ("forward_batch32_int8_ns", "int8_greedy_agreement"):
        assert key in m, f"{path}: missing int8 field {key!r}"
    assert 0.0 <= m["int8_greedy_agreement"] <= 1.0, f"{path}: agreement out of [0,1]"
if path == "BENCH_serve.json":
    for key in ("int8_active", "int8_throughput_req_per_s", "int8_wire_agreement"):
        assert key in m, f"{path}: missing int8 field {key!r}"
    assert m["int8_wire_agreement"] >= 0.995, \
        f"{path}: int8 wire agreement {m['int8_wire_agreement']} below the gate"
    # Sharded / multi-tenant / SLO measurements (PR 9). A 1-thread
    # container must say so explicitly rather than let a flat worker
    # sweep read as a sharding defect.
    for key in ("workers_2_throughput_req_per_s", "workers_4_throughput_req_per_s",
                "workers_2_latency_p99_us", "workers_4_latency_p99_us",
                "multi_tenant_throughput_req_per_s", "multi_tenant_latency_p99_us",
                "slo_max_queue_delay_us", "slo_throughput_req_per_s",
                "slo_shed_count", "slo_shed_rate"):
        assert key in m, f"{path}: missing serving field {key!r}"
    assert 0.0 <= m["slo_shed_rate"] <= 1.0, f"{path}: shed rate out of [0,1]"
    if m["threads_available"] == 1:
        assert "worker_scaling_note" in m, \
            f"{path}: 1-thread runs must carry worker_scaling_note"
print(f"  {path}: ok ({len(measurements)} measurements)")
PYEOF
done

# A committed BENCH manifest must come from a clean tree: its `git`
# field is the only link between the numbers and the code that produced
# them, and `<sha>-dirty` severs it. (perf_report warns and records
# `dirty_tree: true` at generation time; this is the backstop that
# keeps such manifests from landing.) Only committed copies are
# checked — the working tree is legitimately dirty mid-development.
echo "== committed BENCH manifests carry a clean git describe =="
for f in $(git ls-files 'BENCH_*.json'); do
  if git show "HEAD:$f" 2>/dev/null | grep -q '"git": *"[^"]*-dirty"'; then
    echo "FAIL: committed $f was generated from a dirty tree (git field ends in -dirty);"
    echo "      regenerate it from a clean checkout and amend the commit"
    exit 1
  fi
done

# Archive any run manifests produced by figure binaries so CI artifacts
# keep the provenance (seed, config hash, git describe) of every table.
if compgen -G "results/*.manifest.json" > /dev/null; then
  stamp="$(date -u +%Y%m%dT%H%M%SZ)"
  mkdir -p results/manifests
  for m in results/*.manifest.json; do
    cp "$m" "results/manifests/${stamp}.$(basename "$m")"
  done
  echo "== archived $(ls results/*.manifest.json | wc -l) manifest(s) to results/manifests/ =="
fi

echo "CI_OK"
