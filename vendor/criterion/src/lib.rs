//! Offline stand-in for the subset of the `criterion` API used by the
//! CTJam benches.
//!
//! Each benchmark warms up briefly, then times a fixed-duration batch
//! and prints the mean wall-clock time per iteration. No statistics,
//! plots, or baselines — just enough to keep `cargo bench` useful for
//! relative comparisons in an offline environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARM_UP: Duration = Duration::from_millis(120);
const MEASURE: Duration = Duration::from_millis(400);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(name, &mut f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_named(&id.0, &mut |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// A named group; benchmark ids are prefixed with the group name.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_named(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the closure; call [`Bencher::iter`] with the code to time.
#[derive(Debug)]
pub struct Bencher {
    mean_ns: Option<f64>,
    iters: u64,
}

/// Whether `--test` was passed (cargo bench `-- --test` smoke mode):
/// run every benchmark body exactly once to prove it still works,
/// without paying for warm-up or measurement.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if smoke_mode() {
            black_box(f());
            self.mean_ns = None;
            self.iters = 1;
            return;
        }
        // Warm-up doubles as calibration for the batch size.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < WARM_UP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARM_UP.as_nanos() as f64 / warm_iters.max(1) as f64;
        let iters = ((MEASURE.as_nanos() as f64 / per_iter) as u64).clamp(1, u64::MAX);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = Some(elapsed.as_nanos() as f64 / iters as f64);
        self.iters = iters;
    }
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher {
        mean_ns: None,
        iters: 0,
    };
    f(&mut bencher);
    match bencher.mean_ns {
        Some(ns) => println!(
            "{name:<48} time: [{} /iter, {} iters]",
            human(ns),
            bencher.iters
        ),
        None if bencher.iters == 1 => println!("{name:<48} ok (smoke)"),
        None => println!("{name:<48} (no measurement: Bencher::iter never called)"),
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
        assert!(human(2e9).ends_with('s'));
    }
}
