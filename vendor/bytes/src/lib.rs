//! Offline stand-in for the subset of the `bytes` API used by the
//! CTJam workspace (the weight-blob serializer in `ctjam-nn`).
//!
//! [`Bytes`]/[`BytesMut`] are plain `Vec<u8>` wrappers — no refcounting
//! or zero-copy splitting — with the [`Buf`]/[`BufMut`] cursor methods
//! the serializer needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer (`Vec`-backed).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read-cursor operations over a byte source.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Skips `count` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` bytes remain.
    fn advance(&mut self, count: usize);

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, count: usize) {
        *self = &self[count..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write-cursor operations over a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, value: f32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, value: f64) {
        self.put_slice(&value.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"CTJN");
        buf.put_u32_le(7);
        buf.put_f32_le(1.5);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 12);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(&cursor.chunk()[..4], b"CTJN");
        cursor.advance(4);
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn wide_accessors_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(0xDEAD_BEEF_CAFE_F00D);
        buf.put_f64_le(-2.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u64_le(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(cursor.get_f64_le(), -2.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn over_advance_panics() {
        let mut cursor: &[u8] = b"ab";
        cursor.advance(3);
    }
}
