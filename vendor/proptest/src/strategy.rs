//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// Generates values of an output type from a random source.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Uniform over `{true, false}` (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Uniform over a type's whole domain (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// The [`any`] strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical "whole domain" distribution.
pub trait Arbitrary {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mantissa: f64 = rng.gen_range(-1.0..1.0);
        let exponent: i32 = rng.gen_range(-60i32..60);
        mantissa * (exponent as f64).exp2()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Lengths acceptable to [`vec`].
    pub trait SizeRange {
        /// Draws one length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}
