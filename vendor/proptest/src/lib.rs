//! Offline stand-in for the subset of the `proptest` API used by the
//! CTJam workspace.
//!
//! Provides [`Strategy`], range/tuple/collection strategies, [`any`],
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros and
//! [`ProptestConfig`]. Each test runs `cases` randomized inputs drawn
//! from a per-test deterministic RNG (seeded from the test name), so
//! failures reproduce exactly. Unlike upstream proptest there is **no
//! shrinking**: a failing case panics immediately and the case index is
//! reported by a drop guard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Strategy};

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this shim matches it.
        ProptestConfig { cases: 256 }
    }
}

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::collection::vec;
    }

    /// Boolean strategies (`prop::bool::ANY`).
    pub mod bool {
        pub use crate::strategy::BoolAny;

        /// Uniform over `{true, false}`.
        pub const ANY: BoolAny = BoolAny;
    }
}

/// The usual import surface: strategies, config, and macros.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// item becomes a `#[test]` running `cases` randomized inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal item-by-item expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let __guard =
                    $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                { $body }
                drop(__guard);
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// `assert!` under a different name (upstream records instead of
/// panicking; the shim panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a different name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 0u8..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_maps_compose(p in pair().prop_map(|(a, b)| (a as u16) + (b as u16))) {
            prop_assert!(p < 20);
        }

        #[test]
        fn bool_any_is_a_bool(b in prop::bool::ANY, _x in any::<u64>()) {
            prop_assert!(usize::from(b) <= 1);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("some_test");
        let mut b = crate::test_runner::TestRng::for_test("some_test");
        let s = 0usize..1000;
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }
}
