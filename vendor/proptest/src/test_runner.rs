//! The randomized-case driver behind [`crate::proptest!`].

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies: a deterministic generator seeded from
/// the test's name, so every run draws the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the generator for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Reports which case was executing when a test body panicked (the
/// shim's substitute for proptest's failure persistence).
pub struct CaseGuard {
    name: &'static str,
    case: u32,
}

impl CaseGuard {
    /// Arms the guard for one case.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard { name, case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: test `{}` failed at case {} (cases are \
                 deterministic per test name; rerun to reproduce)",
                self.name, self.case
            );
        }
    }
}
