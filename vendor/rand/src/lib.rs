//! Offline stand-in for the subset of the `rand` 0.8 API used by the
//! CTJam workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the same trait surface ([`Rng`], [`RngCore`],
//! [`SeedableRng`]) and the [`rngs::StdRng`] / [`rngs::mock::StepRng`]
//! generators as path dependencies. The generator is xoshiro256++ seeded
//! via SplitMix64 — deterministic, portable, and of ample statistical
//! quality for the suite's simulations. Streams are **not** bit-identical
//! to upstream `rand`'s ChaCha12-based `StdRng`; all in-repo tests seed
//! explicitly and assert distributional properties, so only
//! self-consistency matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// A low-level source of randomness (object-safe, mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a standard-distributed type (uniform over the
    /// full integer domain, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A seedable generator (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = sm.next().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire); the
/// residual bias is `O(span / 2^64)` — immaterial here.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// SplitMix64 — the canonical seed-expansion PRNG.
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut histogram = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            histogram[rng.gen_range(0usize..8)] += 1;
        }
        for &count in &histogram {
            let frac = count as f64 / n as f64;
            assert!((frac - 0.125).abs() < 0.01, "bin fraction {frac}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.02, "gen_bool(0.3) hit rate {frac}");
    }

    #[test]
    fn dyn_rng_core_supports_high_level_sampling() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = dynamic.gen_range(0usize..4);
        assert!(v < 4);
        let _: u64 = dynamic.gen();
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
