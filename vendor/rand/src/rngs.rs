//! Concrete generators: [`StdRng`] and [`mock::StepRng`].

use crate::{RngCore, SeedableRng, SplitMix64};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not stream-compatible with upstream `rand`'s ChaCha12 `StdRng`, but
/// deterministic, portable across platforms, and statistically strong
/// for simulation workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point of xoshiro; re-expand.
            let mut sm = SplitMix64(0x853C_49E6_748F_EA9B);
            for word in &mut s {
                *word = sm.next();
            }
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Mock generators for tests.
pub mod mock {
    use crate::RngCore;

    /// A generator returning an arithmetic sequence (mirrors
    /// `rand::rngs::mock::StepRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// Starts the sequence at `initial`, advancing by `increment`.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                value: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.value;
            self.value = self.value.wrapping_add(self.increment);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = mock::StepRng::new(1, 1);
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u64(), 2);
    }
}
